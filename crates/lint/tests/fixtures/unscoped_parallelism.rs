// Fixture: `unscoped-parallelism`. Shared-state primitives outside the
// sanctioned seams (core::experiment, qn::matfree) fire at every mention.

use std::sync::Mutex; // line 4: the import alone is a violation

pub fn wild() -> u32 {
    let h = std::thread::spawn(|| 7); // line 7: `thread` fires
    h.join().unwrap_or(7)
}

pub fn sanctioned() -> u32 {
    // burstcap-lint: allow(unscoped-parallelism) — fixture: audited seam extension
    let m = Mutex::new(3);
    m.into_inner().unwrap_or(3)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = std::thread::spawn(|| 1).join();
    }
}
