// Fixture: suppression-marker scope. A justified marker reaches past
// attribute lines to the item below; above a multiline statement it covers
// only the line directly below, so mid-statement hits need the marker
// directly above the reporting line.

fn helper(v: Option<u32>) -> u32 {
    // burstcap-lint: allow(panic-in-lib) — fixture: callers uphold Some
    v.expect("fixture invariant")
}

// burstcap-lint: allow(panic-reachable-api) — fixture: the marker skips the attributes below
#[inline]
#[must_use]
pub fn attributed(v: Option<u32>) -> u32 {
    helper(v)
}

#[inline]
pub fn unprotected(v: Option<u32>) -> u32 {
    helper(v) // flagged at line 19: no marker reaches this item
}

pub fn multiline_covered(v: f64) -> f64 {
    v
        // burstcap-lint: allow(silent-clamp) — fixture: directly above the reported line
        .clamp(0.0, 1.0)
}

pub fn multiline_missed(v: f64) -> f64 {
    // burstcap-lint: allow(silent-clamp) — fixture: covers the statement head only
    v
        .clamp(0.0, 1.0) // line 32: still fires — the marker stopped at line 31
}
