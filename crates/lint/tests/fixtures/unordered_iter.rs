// Fixture: `unordered-iter`. Hash collections fire in deterministic-output
// crates; BTree replacements and suppressed/test uses don't.
use std::collections::BTreeMap;
use std::collections::HashMap; // line 4: the live violation

pub fn ordered() -> BTreeMap<u64, f64> {
    BTreeMap::new()
}

pub fn suppressed() -> usize {
    // burstcap-lint: allow(unordered-iter) — fixture: keyed access only, never iterated
    let m: HashMap<u64, f64> = HashMap::new();
    m.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn exempt_in_test_region() {
        let _ = HashSet::<u32>::new();
    }
}
