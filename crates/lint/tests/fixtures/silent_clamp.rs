// Fixture: `silent-clamp`. Probability/rate clamps fire without a marker.

pub fn hit_min(u: f64) -> f64 {
    u.min(1.0) // line 4: the live violation
}

pub fn hit_max(g: f64) -> f64 {
    g.max(0.0) // line 8: second live violation
}

pub fn hit_clamp(p: f64) -> f64 {
    p.clamp(0.0, 1.0) // line 12: third live violation
}

pub fn unrelated_min_is_exempt(x: f64) -> f64 {
    x.min(0.75) // not a probability-range clamp
}

pub fn suppressed(u: f64) -> f64 {
    // burstcap-lint: allow(silent-clamp) — fixture: roundoff guard on a proven bound
    u.min(1.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        assert_eq!(super::hit_min(2.0).min(1.0), 1.0);
    }
}
