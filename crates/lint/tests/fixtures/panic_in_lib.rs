// Fixture: `panic-in-lib`. Panicking shortcuts fire in library code only.

pub fn hit(v: Option<u32>) -> u32 {
    v.unwrap() // line 4: the live violation
}

pub fn hit_macro() {
    panic!("fixture"); // line 8: second live violation
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // burstcap-lint: allow(panic-in-lib) — fixture: invariant documented here
    v.expect("fixture invariant")
}

pub fn typed(v: Option<u32>) -> Result<u32, &'static str> {
    v.ok_or("missing")
}

pub fn invariant_branch(x: u32) -> u32 {
    match x {
        0 => 1,
        // `unreachable!` is deliberately permitted: it documents a branch
        // the type system cannot close.
        _ => unreachable!("fixture: callers pass zero"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = super::typed(Some(3)).unwrap();
    }
}
