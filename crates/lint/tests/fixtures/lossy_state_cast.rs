// Fixture: `lossy-state-cast`. Integer casts fire crate-wide in qn; index
// arithmetic fires only in state-indexing regions (Indexer impls, rank fns).

pub struct FixtureIndexer {
    cum: Vec<usize>,
    n: usize,
}

impl FixtureIndexer {
    pub fn rank_of(&self, occ: &[usize]) -> usize {
        self.cum[occ[0] * self.n + occ[1]] // line 11: index arithmetic in an Indexer impl
    }

    pub fn suppressed(&self, occ: &[usize]) -> usize {
        // burstcap-lint: allow(lossy-state-cast) — fixture: operands bounded by construction
        self.cum[occ[0] * self.n + occ[1]]
    }
}

pub fn cast_hit(x: u64) -> usize {
    x as usize // line 21: lossy cast, anywhere in crate qn
}

pub fn cast_suppressed(x: u64) -> usize {
    // burstcap-lint: allow(lossy-state-cast) — fixture: value bounded above by caller
    x as usize
}

pub fn dense_kernel_is_not_state_arith(a: &[f64], m: usize) -> f64 {
    // Outside Indexer impls / rank fns, index arithmetic is allocation-bounded.
    a[1 * m + 0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = (u64::MAX) as usize;
    }
}
