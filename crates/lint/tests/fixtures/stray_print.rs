// Fixture: `stray-print`. Console macros in library code bypass the
// observability layer; only binary targets own stdout.

pub fn narrates(x: u64) -> u64 {
    println!("solving {x}"); // line 5: println! fires
    eprintln!("warning");    // line 6: eprintln! fires
    dbg!(x)                  // line 7: dbg! fires
}

pub fn justified(x: u64) -> u64 {
    // burstcap-lint: allow(stray-print) — fixture: sanctioned narration
    println!("solving {x}");
    x
}

pub fn silent(x: u64) -> String {
    format!("solving {x}") // returning the text is the clean idiom
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        println!("tests may narrate");
    }
}
