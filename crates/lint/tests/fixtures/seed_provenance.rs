// Fixture: `seed-provenance`. A fn feeding its own parameter into an RNG
// constructor obligates every caller to derive the seed; the rule fires at
// the call site where an underived seed actually enters the stream.

use burstcap_seeds as seeds;
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn make_rng(seed: u64) -> SmallRng {
    // burstcap-lint: allow(raw-rng) — fixture: derivation is the caller's contract
    SmallRng::seed_from_u64(seed)
}

pub fn forwards(seed: u64) -> SmallRng {
    make_rng(seed) // forwards its own parameter: obligation propagates, no hit
}

pub fn derived(master: u64) -> SmallRng {
    make_rng(seeds::derive(master, seeds::SERVICE_STREAM, 0))
}

pub fn raw() -> SmallRng {
    make_rng(42) // line 23: the underived entry — the live violation
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = super::make_rng(7);
    }
}
