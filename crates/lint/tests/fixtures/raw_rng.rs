// Fixture: `raw-rng`. Underived seeding fires; routed and suppressed don't.
use burstcap_seeds as seeds;
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn hit(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed) // line 7: the live violation
}

pub fn routed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seeds::derive(seed, seeds::SERVICE_STREAM, 0))
}

pub fn suppressed(seed: u64) -> SmallRng {
    // burstcap-lint: allow(raw-rng) — fixture: justified suppression
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = super::hit(7);
        use rand::SeedableRng;
        let _ = rand::rngs::SmallRng::seed_from_u64(7);
    }
}
