// Fixture: `panic-reachable-api`. A pub entry point that can transitively
// reach a panic site must document it under `# Panics` or justify.

fn helper(v: Option<u32>) -> u32 {
    // burstcap-lint: allow(panic-in-lib) — fixture: callers uphold Some
    v.expect("fixture invariant")
}

pub fn undocumented(v: Option<u32>) -> u32 {
    helper(v) // the entry point is flagged at its `pub fn` line (9)
}

/// Documented entry point.
///
/// # Panics
///
/// Panics when `v` is `None`.
pub fn documented(v: Option<u32>) -> u32 {
    helper(v)
}

// burstcap-lint: allow(panic-reachable-api) — fixture: justified at the entry point
pub fn waved_through(v: Option<u32>) -> u32 {
    helper(v)
}

pub fn safe(v: u32) -> u32 {
    v.saturating_add(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        assert_eq!(super::undocumented(Some(3)), 3);
    }
}
