// Fixture: `swallowed-result`. Discarding a workspace `Result` in lib
// code fires; discarding infallible values or propagating doesn't.

pub fn fallible() -> Result<u32, String> {
    Ok(3)
}

pub fn infallible() -> u32 {
    3
}

pub fn swallows() {
    let _ = fallible(); // line 13: `let _ =` discard fires
    fallible().ok(); // line 14: statement-level `.ok()` fires
    let _ = infallible(); // infallible callee: clean
    // burstcap-lint: allow(swallowed-result) — fixture: best-effort by design
    let _ = fallible();
}

pub fn handles() -> Result<u32, String> {
    fallible()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = super::fallible();
    }
}
