// Fixture: `wallclock`. One live hit, one suppressed, one test-exempt.
use std::time::Instant;

pub fn hit() -> f64 {
    let t0 = Instant::now(); // line 5: the live violation
    t0.elapsed().as_secs_f64()
}

pub fn suppressed() -> f64 {
    // burstcap-lint: allow(wallclock) — fixture: justified suppression
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn system_time_hit() {
    let _ = std::time::SystemTime::now(); // line 16: second live violation
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = std::time::Instant::now();
    }
}
