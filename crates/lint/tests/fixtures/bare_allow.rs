// Fixture: `bare-allow`. Markers with no justification suppress nothing and
// are themselves violations; so are markers naming unknown rules.

pub fn bare_marker(v: Option<u32>) -> u32 {
    // burstcap-lint: allow(panic-in-lib)
    v.expect("not actually suppressed") // line 6: panic-in-lib still fires
}

pub fn unknown_rule() -> f64 {
    // burstcap-lint: allow(panicky-lib) — misspelled rule name
    1.0
}
