// Fixture: `float-eq`. Exact comparison against a non-zero float literal
// fires; structural-zero tests and suppressed sentinels don't.

pub fn hit(p: f64) -> bool {
    p == 0.5 // line 5: the live violation
}

pub fn zero_is_exempt(x: f64) -> bool {
    x == 0.0 // structural zero: well-defined, not flagged
}

pub fn suppressed(p: f64) -> bool {
    // burstcap-lint: allow(float-eq) — fixture: exact boundary sentinel
    p == 1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        assert!(super::hit(0.5) == true);
        let x = 2.5;
        assert!(x == 2.5);
    }
}
