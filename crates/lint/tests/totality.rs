//! Workspace-totality gate: the recursive-descent parser must accept every
//! non-vendored `.rs` file in the tree with zero recoverable errors — the
//! call graph silently loses edges for anything the parser skips, so
//! "parses everything" is a correctness precondition for the semantic
//! rules, not a nicety. The per-crate item/function counts are pinned so a
//! parser regression that silently drops items (without reporting an
//! error) still trips the gate.

use std::collections::BTreeMap;
use std::path::Path;

use burstcap_lint::parser::{count_items_and_fns, parse};
use burstcap_lint::{lexer, read_workspace_sources};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn every_workspace_file_parses_without_errors() {
    let sources = read_workspace_sources(&workspace_root()).expect("workspace tree is readable");
    assert!(
        sources.len() > 50,
        "suspiciously few files ({}) — wrong root?",
        sources.len()
    );
    let mut failures = Vec::new();
    for (path, src) in &sources {
        let parsed = parse(&lexer::lex(src));
        for e in &parsed.errors {
            failures.push(format!("{path}:{}: {}", e.line, e.message));
        }
    }
    assert!(
        failures.is_empty(),
        "parser must accept every workspace file:\n{}",
        failures.join("\n")
    );
}

#[test]
fn per_crate_item_and_fn_counts_match_snapshot() {
    let sources = read_workspace_sources(&workspace_root()).expect("workspace tree is readable");
    let mut counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (path, src) in &sources {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("root")
            .to_owned();
        let parsed = parse(&lexer::lex(src));
        let (items, fns) = count_items_and_fns(&parsed.items);
        let entry = counts.entry(crate_name).or_insert((0, 0));
        entry.0 += items;
        entry.1 += fns;
    }
    let got: Vec<String> = counts
        .iter()
        .map(|(k, (i, f))| format!("{k}: {i} items, {f} fns"))
        .collect();
    // Snapshot of the parsed surface. A drift here is fine when code was
    // actually added or removed — re-pin the counts. A drift with no
    // corresponding source change means the parser started dropping items.
    let expected = vec![
        "bench: 270 items, 98 fns",
        "core: 130 items, 121 fns",
        "lint: 240 items, 162 fns",
        "map: 209 items, 176 fns",
        "obs: 65 items, 49 fns",
        "online: 128 items, 88 fns",
        "qn: 232 items, 222 fns",
        "root: 150 items, 44 fns",
        "seeds: 20 items, 6 fns",
        "sim: 146 items, 122 fns",
        "stats: 267 items, 212 fns",
        "tpcw: 146 items, 107 fns",
    ];
    assert_eq!(got, expected, "per-crate parse snapshot drifted");
}
