//! The dogfood gate: the workspace that ships burstcap-lint must itself be
//! lint-clean. This is the same check CI runs as a blocking step; having it
//! in `cargo test -q` means a violation cannot land even when CI is
//! skipped locally. The companion tests pin the justified-panic-site count
//! (every new `expect` needs a deliberate decision, not just a marker) and
//! the analysis wall-clock budget (the fixpoint must stay cheap enough to
//! run on every commit).

use std::path::Path;

use burstcap_lint::{callgraph, lint_workspace, model, read_workspace_sources};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root).expect("workspace tree is readable");
    assert!(
        report.files_checked > 50,
        "suspiciously few files checked ({}) — wrong root?",
        report.files_checked
    );
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{}:{}: {}: {}", v.path, v.line, v.col, v.rule, v.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace must stay lint-clean; violations:\n{}",
        rendered.join("\n")
    );
}

/// The PR-9 audit walked every justified panic site through the call
/// graph: all 42 are reachable from some pub entry point and each guards a
/// validated-input or gated-state invariant, so none could be deleted.
/// This pin forces the same audit on any change to the set — a new
/// justified `expect` (or a removal) must update this count deliberately.
#[test]
fn justified_panic_site_count_is_audited() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let sources = read_workspace_sources(&root).expect("workspace tree is readable");
    let m = model::build(&sources);
    let justified: Vec<String> = m
        .panic_sites
        .iter()
        .filter(|s| s.justified && s.in_lib)
        .map(|s| format!("{}:{}", s.path, s.line))
        .collect();
    assert_eq!(
        justified.len(),
        42,
        "justified panic-site count drifted; re-run the reachability audit \
         (`burstcap-lint report`) and re-pin. Sites:\n{}",
        justified.join("\n")
    );
}

/// The semantic analysis (parse + model + call-graph fixpoint over the
/// whole workspace) must stay cheap enough to gate every commit. The
/// budget is ~40x the measured debug-build wall time, so it only trips on
/// a complexity regression (e.g. the fixpoint going quadratic), not on a
/// slow machine.
#[test]
fn workspace_analysis_fits_the_wall_clock_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let sources = read_workspace_sources(&root).expect("workspace tree is readable");
    let started = std::time::Instant::now();
    let m = model::build(&sources);
    let g = callgraph::build(&m);
    let elapsed = started.elapsed();
    assert!(!g.reach.is_empty());
    assert!(
        elapsed.as_secs_f64() < 30.0,
        "workspace model + call graph took {:.2}s — fixpoint complexity regression?",
        elapsed.as_secs_f64()
    );
}
