//! The dogfood gate: the workspace that ships burstcap-lint must itself be
//! lint-clean. This is the same check CI runs as a blocking step; having it
//! in `cargo test -q` means a violation cannot land even when CI is
//! skipped locally.

use std::path::Path;

use burstcap_lint::lint_workspace;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root).expect("workspace tree is readable");
    assert!(
        report.files_checked > 50,
        "suspiciously few files checked ({}) — wrong root?",
        report.files_checked
    );
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{}:{}: {}: {}", v.path, v.line, v.col, v.rule, v.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace must stay lint-clean; violations:\n{}",
        rendered.join("\n")
    );
}
