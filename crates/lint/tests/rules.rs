//! Per-rule fixture tests: each fixture carries a positive hit, a justified
//! suppression, and a test-context exemption; the assertions pin exactly
//! which lines survive.
//!
//! Fixtures live under `tests/fixtures/` (a directory `lint_workspace`
//! never descends into, since they contain deliberate violations) and are
//! linted through `lint_source` with a synthetic workspace-relative path
//! that selects the context under test.

use burstcap_lint::lint_source;

fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn wallclock_fixture() {
    let src = include_str!("fixtures/wallclock.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    assert_eq!(got, vec![("wallclock", 5), ("wallclock", 16)]);
}

#[test]
fn wallclock_is_silent_in_the_bench_timing_seam_context() {
    // The real seam file carries allow-file(wallclock); replicate that here.
    let src = "// burstcap-lint: allow-file(wallclock) — the timing seam\n\
               use std::time::Instant;\n\
               pub fn now_ms() -> f64 { Instant::now().elapsed().as_secs_f64() * 1e3 }\n";
    assert!(rules_at("crates/bench/src/timing.rs", src).is_empty());
}

#[test]
fn raw_rng_fixture() {
    let src = include_str!("fixtures/raw_rng.rs");
    let got = rules_at("crates/sim/src/fixture.rs", src);
    assert_eq!(got, vec![("raw-rng", 7)]);
}

#[test]
fn unordered_iter_fixture() {
    let src = include_str!("fixtures/unordered_iter.rs");
    // In a deterministic-output crate the bare HashMap import fires.
    let got = rules_at("crates/stats/src/fixture.rs", src);
    assert_eq!(got, vec![("unordered-iter", 4)]);
    // In crates outside the deterministic-output set the rule is off.
    assert!(rules_at("crates/map/src/fixture.rs", src).is_empty());
}

#[test]
fn lossy_state_cast_fixture() {
    let src = include_str!("fixtures/lossy_state_cast.rs");
    let got = rules_at("crates/qn/src/fixture.rs", src);
    assert_eq!(
        got,
        vec![
            ("lossy-state-cast", 11), // `*` in the Indexer impl index
            ("lossy-state-cast", 11), // `+` in the same expression
            ("lossy-state-cast", 21), // `as usize`
        ]
    );
    // The rule is scoped to crate qn.
    assert!(rules_at("crates/stats/src/fixture.rs", src).is_empty());
}

#[test]
fn panic_in_lib_fixture() {
    let src = include_str!("fixtures/panic_in_lib.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    assert_eq!(got, vec![("panic-in-lib", 4), ("panic-in-lib", 8)]);
    // Binaries, benches, and examples are exempt from the panic rules.
    assert!(rules_at("crates/core/src/bin/tool.rs", src).is_empty());
    assert!(rules_at("crates/bench/src/fixture.rs", src).is_empty());
    assert!(rules_at("examples/fixture.rs", src).is_empty());
}

#[test]
fn float_eq_fixture() {
    let src = include_str!("fixtures/float_eq.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    assert_eq!(got, vec![("float-eq", 5)]);
}

#[test]
fn silent_clamp_fixture() {
    let src = include_str!("fixtures/silent_clamp.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    assert_eq!(
        got,
        vec![
            ("silent-clamp", 4),
            ("silent-clamp", 8),
            ("silent-clamp", 12),
        ]
    );
}

#[test]
fn bare_allow_fixture() {
    let src = include_str!("fixtures/bare_allow.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    // The unjustified marker is a violation AND fails to suppress the
    // panic-in-lib hit below it; the unknown rule name is also reported.
    assert_eq!(
        got,
        vec![("bare-allow", 5), ("panic-in-lib", 6), ("bare-allow", 10),]
    );
}

#[test]
fn test_files_are_fully_exempt() {
    for fixture in [
        include_str!("fixtures/wallclock.rs"),
        include_str!("fixtures/panic_in_lib.rs"),
        include_str!("fixtures/silent_clamp.rs"),
    ] {
        assert!(rules_at("crates/core/tests/fixture.rs", fixture).is_empty());
    }
}
