//! Per-rule fixture tests: each fixture carries a positive hit, a justified
//! suppression, and a test-context exemption; the assertions pin exactly
//! which lines survive.
//!
//! Fixtures live under `tests/fixtures/` (a directory `lint_workspace`
//! never descends into, since they contain deliberate violations) and are
//! linted through `lint_source` with a synthetic workspace-relative path
//! that selects the context under test.

use burstcap_lint::lint_source;

fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn wallclock_fixture() {
    let src = include_str!("fixtures/wallclock.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    assert_eq!(got, vec![("wallclock", 5), ("wallclock", 16)]);
}

#[test]
fn wallclock_is_silent_in_the_bench_timing_seam_context() {
    // The real seam file carries allow-file(wallclock); replicate that here.
    let src = "// burstcap-lint: allow-file(wallclock) — the timing seam\n\
               use std::time::Instant;\n\
               pub fn now_ms() -> f64 { Instant::now().elapsed().as_secs_f64() * 1e3 }\n";
    assert!(rules_at("crates/bench/src/timing.rs", src).is_empty());
}

#[test]
fn raw_rng_fixture() {
    let src = include_str!("fixtures/raw_rng.rs");
    let got = rules_at("crates/sim/src/fixture.rs", src);
    assert_eq!(got, vec![("raw-rng", 7)]);
}

#[test]
fn unordered_iter_fixture() {
    let src = include_str!("fixtures/unordered_iter.rs");
    // In a deterministic-output crate the bare HashMap import fires.
    let got = rules_at("crates/stats/src/fixture.rs", src);
    assert_eq!(got, vec![("unordered-iter", 4)]);
    // In crates outside the deterministic-output set the rule is off.
    assert!(rules_at("crates/map/src/fixture.rs", src).is_empty());
}

#[test]
fn lossy_state_cast_fixture() {
    let src = include_str!("fixtures/lossy_state_cast.rs");
    let got = rules_at("crates/qn/src/fixture.rs", src);
    assert_eq!(
        got,
        vec![
            ("lossy-state-cast", 11), // `*` in the Indexer impl index
            ("lossy-state-cast", 11), // `+` in the same expression
            ("lossy-state-cast", 21), // `as usize`
        ]
    );
    // The rule is scoped to crate qn.
    assert!(rules_at("crates/stats/src/fixture.rs", src).is_empty());
}

#[test]
fn panic_in_lib_fixture() {
    let src = include_str!("fixtures/panic_in_lib.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    // The lexical hits at 4 and 8, plus the call-graph rule at each pub
    // entry point that can reach a panic site without a `# Panics` doc
    // section — including `suppressed` (line 11), whose justified allow
    // silences the lexical rule but still leaves the panic reachable.
    // `invariant_branch` (line 20) stays clean: `unreachable!` is not a
    // panic site.
    assert_eq!(
        got,
        vec![
            ("panic-reachable-api", 3),
            ("panic-in-lib", 4),
            ("panic-reachable-api", 7),
            ("panic-in-lib", 8),
            ("panic-reachable-api", 11),
        ]
    );
    // Binaries, benches, and examples are exempt from the panic rules.
    assert!(rules_at("crates/core/src/bin/tool.rs", src).is_empty());
    assert!(rules_at("crates/bench/src/fixture.rs", src).is_empty());
    assert!(rules_at("examples/fixture.rs", src).is_empty());
}

#[test]
fn float_eq_fixture() {
    let src = include_str!("fixtures/float_eq.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    assert_eq!(got, vec![("float-eq", 5)]);
}

#[test]
fn silent_clamp_fixture() {
    let src = include_str!("fixtures/silent_clamp.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    assert_eq!(
        got,
        vec![
            ("silent-clamp", 4),
            ("silent-clamp", 8),
            ("silent-clamp", 12),
        ]
    );
}

#[test]
fn stray_print_fixture() {
    let src = include_str!("fixtures/stray_print.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    assert_eq!(
        got,
        vec![("stray-print", 5), ("stray-print", 6), ("stray-print", 7),]
    );
    // The bench *lib* is library code for this rule; bench bins, other
    // bins, and examples own stdout and are exempt.
    assert_eq!(rules_at("crates/bench/src/fixture.rs", src).len(), 3);
    assert!(rules_at("crates/bench/src/bin/tool.rs", src).is_empty());
    assert!(rules_at("crates/core/src/bin/tool.rs", src).is_empty());
    assert!(rules_at("examples/fixture.rs", src).is_empty());
}

#[test]
fn bare_allow_fixture() {
    let src = include_str!("fixtures/bare_allow.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    // The unjustified marker is a violation AND fails to suppress the
    // panic-in-lib hit below it; the unknown rule name is also reported.
    // Because the panic site stays unjustified and undocumented, the
    // call-graph rule fires on the enclosing pub fn as well.
    assert_eq!(
        got,
        vec![
            ("panic-reachable-api", 4),
            ("bare-allow", 5),
            ("panic-in-lib", 6),
            ("bare-allow", 10),
        ]
    );
}

#[test]
fn panic_reachable_fixture() {
    let src = include_str!("fixtures/panic_reachable.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    // Only the undocumented entry point fires; the `# Panics` section and
    // the justified allow discharge the other two, and the helper's own
    // justified panic site produces no lexical hit.
    assert_eq!(got, vec![("panic-reachable-api", 9)]);
    // The rule is scoped to library code.
    assert!(rules_at("crates/core/src/bin/tool.rs", src).is_empty());
}

#[test]
fn unscoped_parallelism_fixture() {
    let src = include_str!("fixtures/unscoped_parallelism.rs");
    let got = rules_at("crates/stats/src/fixture.rs", src);
    assert_eq!(
        got,
        vec![("unscoped-parallelism", 4), ("unscoped-parallelism", 7)]
    );
    // The same tokens inside the sanctioned seams are clean.
    assert!(rules_at("crates/core/src/experiment.rs", src).is_empty());
    assert!(rules_at("crates/qn/src/matfree.rs", src).is_empty());
}

#[test]
fn swallowed_result_fixture() {
    let src = include_str!("fixtures/swallowed_result.rs");
    let got = rules_at("crates/online/src/fixture.rs", src);
    assert_eq!(
        got,
        vec![("swallowed-result", 13), ("swallowed-result", 14)]
    );
}

#[test]
fn seed_provenance_fixture() {
    let src = include_str!("fixtures/seed_provenance.rs");
    let got = rules_at("crates/sim/src/fixture.rs", src);
    // `forwards` propagates the obligation and `derived` discharges it;
    // only `raw` injects a literal seed.
    assert_eq!(got, vec![("seed-provenance", 23)]);
}

#[test]
fn marker_scope_fixture() {
    let src = include_str!("fixtures/marker_scope.rs");
    let got = rules_at("crates/core/src/fixture.rs", src);
    // `attributed` is covered by the marker above its attribute lines;
    // `unprotected` is not. A marker directly above a mid-statement line
    // covers it, but a marker above the statement head does not reach a
    // hit two lines down.
    assert_eq!(got, vec![("panic-reachable-api", 19), ("silent-clamp", 32)]);
}

#[test]
fn test_files_are_fully_exempt() {
    for fixture in [
        include_str!("fixtures/wallclock.rs"),
        include_str!("fixtures/panic_in_lib.rs"),
        include_str!("fixtures/silent_clamp.rs"),
    ] {
        assert!(rules_at("crates/core/tests/fixture.rs", fixture).is_empty());
    }
}
