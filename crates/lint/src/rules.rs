//! The invariant rules: each is a named, individually-suppressible check
//! over the token stream of one file.
//!
//! Every rule exists because a shipped bug class violated the workspace's
//! determinism-and-exactness contract silently (see ARCHITECTURE.md,
//! "Static analysis"): seed collisions (PR 3), silent `I`-clamping (PR 4),
//! rank overflow (PR 6). Rules are lexical by design — they over-approximate
//! and rely on justified `// burstcap-lint: allow(<rule>) — why` markers
//! where the idiom is intentional; clippy owns the type-aware complements
//! (see the ownership table in ARCHITECTURE.md).

use crate::context::{in_test_region, FileContext, FileKind, TestRegion};
use crate::lexer::{float_is_zero, TokKind, Token};

/// One reported rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name (matches the `allow(...)` marker vocabulary).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the hit.
    pub message: String,
}

/// Static description of a rule, for `burstcap-lint rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name as used in allow markers.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
}

/// All rules, in reporting order. `bare-allow` is checked by the engine
/// (it guards the suppression mechanism itself and cannot be suppressed).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wallclock",
        summary: "no Instant::now / SystemTime outside the bench timing seam",
        scope: "all non-test code",
    },
    RuleInfo {
        name: "raw-rng",
        summary: "RNG construction must route the seed through seeds::derive",
        scope: "all non-test code",
    },
    RuleInfo {
        name: "unordered-iter",
        summary: "no HashMap/HashSet in deterministic-output crates",
        scope: "crates qn, stats, online, bench, obs (non-test)",
    },
    RuleInfo {
        name: "stray-print",
        summary: "no println!/eprintln!/print!/eprint!/dbg! outside binary targets; return the text or trace it",
        scope: "library code, including the bench crate's lib (non-test)",
    },
    RuleInfo {
        name: "lossy-state-cast",
        summary: "no lossy integer `as` casts (crate-wide) or unchecked index arithmetic in state-indexing code (Indexer impls, rank fns)",
        scope: "crate qn (non-test)",
    },
    RuleInfo {
        name: "panic-in-lib",
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in library code",
        scope: "library crates (non-test)",
    },
    RuleInfo {
        name: "float-eq",
        summary: "no ==/!= against non-zero float literals",
        scope: "all non-test code",
    },
    RuleInfo {
        name: "silent-clamp",
        summary: "no .min(1.0)/.max(0.0)/.clamp(float, ..) without a recorded diagnostic",
        scope: "all non-test code",
    },
    RuleInfo {
        name: "panic-reachable-api",
        summary: "pub lib fns that can transitively reach a panic site must document it under `# Panics`",
        scope: "library crates (non-test), via the workspace call graph",
    },
    RuleInfo {
        name: "unscoped-parallelism",
        summary: "std::thread/Atomic*/Mutex/RwLock only inside core::experiment, qn::matfree, and obs::recorder",
        scope: "all non-test code",
    },
    RuleInfo {
        name: "swallowed-result",
        summary: "no `let _ =` or statement-level `.ok()` discard of a workspace Result",
        scope: "library crates (non-test)",
    },
    RuleInfo {
        name: "seed-provenance",
        summary: "a seed parameter fed raw to an RNG constructor must be derived by every caller (dataflow raw-rng)",
        scope: "all non-test code, via the workspace call graph",
    },
    RuleInfo {
        name: "bare-allow",
        summary: "every allow marker must carry a written justification",
        scope: "everywhere (not suppressible)",
    },
];

/// Crates whose outputs are asserted bit-identical across runs in CI, so
/// unordered iteration anywhere near them is a determinism hazard.
const DETERMINISTIC_OUTPUT_CRATES: &[&str] = &["qn", "stats", "online", "bench", "obs"];

/// Integer target types of a lossy `as` cast.
const INT_CAST_TARGETS: &[&str] = &[
    "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8",
];

/// Run every rule over one file's token stream.
#[must_use]
pub fn check_all(
    path: &str,
    ctx: &FileContext,
    tokens: &[Token],
    regions: &[TestRegion],
) -> Vec<Violation> {
    if ctx.kind == FileKind::Test {
        return Vec::new();
    }
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut v = Vec::new();
    let live = |t: &Token| !in_test_region(regions, t.line);

    wallclock(path, &code, &live, &mut v);
    raw_rng(path, &code, &live, &mut v);
    if ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| DETERMINISTIC_OUTPUT_CRATES.contains(&c))
    {
        unordered_iter(path, &code, &live, &mut v);
    }
    if ctx.crate_name.as_deref() == Some("qn") {
        lossy_state_cast(path, &code, &live, &mut v);
    }
    if ctx.kind == FileKind::Lib {
        panic_in_lib(path, &code, &live, &mut v);
    }
    // Bench *bins* narrate to stdout by design; the bench lib (timing,
    // scenarios, report writers) is library code and must stay silent.
    if ctx.kind == FileKind::Lib
        || (ctx.kind == FileKind::Bench
            && !path.contains("/src/bin/")
            && !path.contains("/benches/"))
    {
        stray_print(path, &code, &live, &mut v);
    }
    float_eq(path, &code, &live, &mut v);
    silent_clamp(path, &code, &live, &mut v);
    v
}

fn report(v: &mut Vec<Violation>, rule: &'static str, path: &str, tok: &Token, message: String) {
    v.push(Violation {
        rule,
        path: path.to_owned(),
        line: tok.line,
        col: tok.col,
        message,
    });
}

/// `wallclock`: wall-clock reads make runs non-reproducible; they are
/// confined to `burstcap_bench::timing` (which carries a file-scoped allow).
fn wallclock(path: &str, code: &[&Token], live: &dyn Fn(&Token) -> bool, v: &mut Vec<Violation>) {
    for (i, tok) in code.iter().enumerate() {
        if !live(tok) {
            continue;
        }
        let instant_now = tok.is_ident("Instant")
            && code.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && code.get(i + 2).is_some_and(|t| t.is_ident("now"));
        if instant_now || tok.is_ident("SystemTime") {
            report(
                v,
                "wallclock",
                path,
                tok,
                "wall-clock read outside the bench timing seam; use burstcap_bench::timing"
                    .to_owned(),
            );
        }
    }
}

/// `raw-rng`: seeding a generator from an underived integer recreates the
/// PR-3 cross-simulator stream collision; the seed argument must pass
/// through `seeds::derive`.
fn raw_rng(path: &str, code: &[&Token], live: &dyn Fn(&Token) -> bool, v: &mut Vec<Violation>) {
    const CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_seed", "from_entropy", "from_os_rng"];
    for (i, tok) in code.iter().enumerate() {
        if !live(tok) || tok.kind != TokKind::Ident {
            continue;
        }
        if !CONSTRUCTORS.contains(&tok.text.as_str()) {
            continue;
        }
        // Skip definitions (`fn seed_from_u64(...)` in a trait impl).
        if i > 0 && code[i - 1].is_ident("fn") {
            continue;
        }
        if !code.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        // Scan the argument list for a `derive` call.
        let mut depth = 0usize;
        let mut derived = false;
        for t in &code[i + 1..] {
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("derive") {
                derived = true;
            }
        }
        if !derived {
            report(
                v,
                "raw-rng",
                path,
                tok,
                format!(
                    "`{}` seeded without seeds::derive — raw seeds collide across components",
                    tok.text
                ),
            );
        }
    }
}

/// `unordered-iter`: hash iteration order is arbitrary; in crates whose
/// outputs CI diffs bit-for-bit, any map that can reach an output must be
/// ordered (`BTreeMap`/`BTreeSet`) or an index vector.
fn unordered_iter(
    path: &str,
    code: &[&Token],
    live: &dyn Fn(&Token) -> bool,
    v: &mut Vec<Violation>,
) {
    for tok in code {
        if live(tok) && (tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            report(
                v,
                "unordered-iter",
                path,
                tok,
                format!(
                    "{} in a deterministic-output crate; use BTreeMap/BTreeSet or an index vector",
                    tok.text
                ),
            );
        }
    }
}

/// `lossy-state-cast`: the PR-6 class — state-space ranks overflow
/// silently through `as` narrowing or wrapping index arithmetic. In the
/// state-indexing crate, integer `as` casts (anywhere) and `+`/`*` inside
/// index brackets (within state-indexing regions: `impl *Indexer*` blocks
/// and functions whose name contains `rank`) must be checked or
/// individually justified. Dense `m x m` kernel tiles (`a[i * m + j]` with
/// a handful of phases) are *not* state-sized — their products are bounded
/// by an allocation that happens first — so plain index arithmetic outside
/// those regions is left to the checked-arithmetic CI lane.
fn lossy_state_cast(
    path: &str,
    code: &[&Token],
    live: &dyn Fn(&Token) -> bool,
    v: &mut Vec<Violation>,
) {
    // (a) `as <integer type>` casts.
    for (i, tok) in code.iter().enumerate() {
        if !live(tok) || !tok.is_ident("as") {
            continue;
        }
        if let Some(target) = code.get(i + 1) {
            if INT_CAST_TARGETS.contains(&target.text.as_str()) {
                report(
                    v,
                    "lossy-state-cast",
                    path,
                    tok,
                    format!(
                        "`as {}` can truncate or wrap a state-space quantity; use try_from or justify",
                        target.text
                    ),
                );
            }
        }
    }
    // (b) unchecked `+`/`*` inside index brackets (`t[b * cols + d]`),
    // within state-indexing regions only.
    let regions = state_arith_regions(code);
    let in_state_region = |line: u32| regions.iter().any(|&(s, e)| (s..=e).contains(&line));
    let mut stack: Vec<bool> = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Punct {
            continue;
        }
        match tok.text.as_str() {
            "[" => {
                // An index position has an expression on its left (ident,
                // close-paren, or a previous index); `vec![` has `!` there
                // and an attribute has `#`, so neither is counted.
                let indexing = i > 0
                    && (code[i - 1].kind == TokKind::Ident
                        || code[i - 1].is_punct(")")
                        || code[i - 1].is_punct("]"));
                stack.push(indexing);
            }
            "]" => {
                stack.pop();
            }
            "*" | "+" => {
                if !stack.iter().any(|&b| b) || !live(tok) || !in_state_region(tok.line) {
                    continue;
                }
                // Binary position only: a deref `*x` or unary context has
                // an operator or opening delimiter on the left.
                let binary = i > 0 && {
                    let prev = code[i - 1];
                    matches!(prev.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                        || prev.is_punct(")")
                        || prev.is_punct("]")
                };
                if binary {
                    report(
                        v,
                        "lossy-state-cast",
                        path,
                        tok,
                        "unchecked arithmetic inside an index expression; hoist through checked_add/checked_mul or justify"
                            .to_owned(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Line ranges of state-indexing code: `impl` blocks whose subject type
/// name contains `Indexer`, and `fn` items whose name contains `rank`.
/// Only there does index arithmetic act on state-space-sized quantities
/// (a rank is bounded by the state count, not by a small phase count), so
/// only there can an unchecked `+`/`*` reproduce the PR-6 overflow.
fn state_arith_regions(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let tok = code[i];
        let is_impl_header = tok.is_ident("impl");
        let is_rank_fn = tok.is_ident("fn")
            && code.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("rank")
            });
        if is_impl_header || is_rank_fn {
            // Scan the item header up to the body `{` (or a `;` for a
            // braceless form), checking the impl subject for `Indexer`.
            let mut named = is_rank_fn;
            let mut j = i + 1;
            while j < code.len() && !code[j].is_punct("{") && !code[j].is_punct(";") {
                if is_impl_header
                    && code[j].kind == TokKind::Ident
                    && code[j].text.contains("Indexer")
                {
                    named = true;
                }
                j += 1;
            }
            if named && j < code.len() && code[j].is_punct("{") {
                let start = tok.line;
                let mut depth = 0usize;
                while j < code.len() {
                    if code[j].is_punct("{") {
                        depth += 1;
                    } else if code[j].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end = code.get(j).map_or(start, |t| t.line);
                out.push((start, end));
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// `panic-in-lib`: library code must surface failures as typed errors; a
/// panicking shortcut in a solver aborts a whole replication sweep.
/// (`unreachable!` with a message is permitted: it documents an invariant
/// on a branch the type system cannot close.)
fn panic_in_lib(
    path: &str,
    code: &[&Token],
    live: &dyn Fn(&Token) -> bool,
    v: &mut Vec<Violation>,
) {
    for (i, tok) in code.iter().enumerate() {
        if !live(tok) || tok.kind != TokKind::Ident {
            continue;
        }
        let method_call = matches!(tok.text.as_str(), "unwrap" | "expect")
            && i > 0
            && (code[i - 1].is_punct(".") || code[i - 1].is_punct("::"))
            && code.get(i + 1).is_some_and(|t| t.is_punct("("));
        let macro_call = matches!(tok.text.as_str(), "panic" | "todo" | "unimplemented")
            && code.get(i + 1).is_some_and(|t| t.is_punct("!"));
        if method_call || macro_call {
            report(
                v,
                "panic-in-lib",
                path,
                tok,
                format!(
                    "`{}` in library code; return a typed error or justify the invariant",
                    tok.text
                ),
            );
        }
    }
}

/// `stray-print`: ad-hoc console output in library code bypasses the
/// observability layer — it interleaves nondeterministically under
/// parallel execution, corrupts machine-read stdout (the bench JSON
/// contract), and cannot be captured or diffed. Library code returns its
/// text or records a trace event; only binary targets own stdout.
fn stray_print(path: &str, code: &[&Token], live: &dyn Fn(&Token) -> bool, v: &mut Vec<Violation>) {
    const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];
    for (i, tok) in code.iter().enumerate() {
        if !live(tok) || tok.kind != TokKind::Ident {
            continue;
        }
        if PRINT_MACROS.contains(&tok.text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            report(
                v,
                "stray-print",
                path,
                tok,
                format!(
                    "`{}!` in library code; return the text, record a trace event, or justify",
                    tok.text
                ),
            );
        }
    }
}

/// `float-eq`: exact float equality is almost never the intended predicate.
/// Comparisons against an exact-zero literal are exempt — testing a value
/// against structural zero (an empty accumulator, a sparsity hole) is
/// well-defined; the same exception clippy's `float_cmp` heritage carries.
fn float_eq(path: &str, code: &[&Token], live: &dyn Fn(&Token) -> bool, v: &mut Vec<Violation>) {
    for (i, tok) in code.iter().enumerate() {
        if !live(tok) || !(tok.is_punct("==") || tok.is_punct("!=")) {
            continue;
        }
        let nonzero_float = |t: Option<&&Token>| {
            t.is_some_and(|t| t.kind == TokKind::Float && !float_is_zero(&t.text))
        };
        if nonzero_float(code.get(i.wrapping_sub(1))) || nonzero_float(code.get(i + 1)) {
            report(
                v,
                "float-eq",
                path,
                tok,
                "exact comparison against a float literal; compare within a tolerance or justify"
                    .to_owned(),
            );
        }
    }
}

/// `silent-clamp`: the PR-4 class — clamping a rate or probability hides
/// an infeasible input instead of surfacing it. A clamp must come with a
/// recorded diagnostic (and a justification on the marker).
fn silent_clamp(
    path: &str,
    code: &[&Token],
    live: &dyn Fn(&Token) -> bool,
    v: &mut Vec<Violation>,
) {
    let float_value = |t: &Token| -> Option<f64> {
        if t.kind != TokKind::Float {
            return None;
        }
        let cleaned: String = t.text.chars().filter(|&c| c != '_').collect();
        cleaned
            .trim_end_matches("f64")
            .trim_end_matches("f32")
            .parse::<f64>()
            .ok()
    };
    for (i, tok) in code.iter().enumerate() {
        if !live(tok) || tok.kind != TokKind::Ident {
            continue;
        }
        if i == 0 || !code[i - 1].is_punct(".") || !code.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            continue;
        }
        let arg = code.get(i + 2);
        let closes = code.get(i + 3).is_some_and(|t| t.is_punct(")"));
        let hit = match tok.text.as_str() {
            "min" => closes && arg.and_then(|t| float_value(t)) == Some(1.0),
            "max" => closes && arg.and_then(|t| float_value(t)) == Some(0.0),
            "clamp" => arg.is_some_and(|t| t.kind == TokKind::Float),
            _ => false,
        };
        if hit {
            report(
                v,
                "silent-clamp",
                path,
                tok,
                format!(
                    "`.{}` clamps a rate/probability silently; surface the infeasibility or record a diagnostic and justify",
                    tok.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let ctx = FileContext::classify(path);
        let toks = lex(src);
        check_all(path, &ctx, &toks, &[])
    }

    #[test]
    fn index_arithmetic_flagged_only_in_state_regions() {
        // Dense-kernel indexing outside any Indexer impl / rank fn: clean.
        let kernel = "fn invert(a: &mut [f64], m: usize) { a[1 * m + 0] = 0.0; }\n";
        assert!(run("crates/qn/src/x.rs", kernel).is_empty());

        // The same shape inside an `impl ...Indexer` block: flagged.
        let indexer = "\
struct StateIndexer;
impl StateIndexer {
    fn comp_rank(&self, b: usize, d: usize) -> usize { self.cum[b * 4 + d] }
}
";
        let v = run("crates/qn/src/x.rs", indexer);
        assert!(v.iter().any(|v| v.rule == "lossy-state-cast"), "{v:?}");

        // And inside a free fn whose name contains `rank` — one report per
        // unchecked operator (`*` and `+`).
        let rank_fn = "fn unrank(r: usize, n: usize) -> usize { t[r * n + 1] }\n";
        let v = run("crates/qn/src/x.rs", rank_fn);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "lossy-state-cast"));

        // Outside crate qn the rule never runs.
        assert!(run("crates/map/src/x.rs", indexer).is_empty());
    }

    #[test]
    fn int_casts_flagged_crate_wide_in_qn() {
        let src = "fn f(x: u64) -> usize { x as usize }\n";
        let v = run("crates/qn/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lossy-state-cast");
        // `as f64` is not lossy state arithmetic.
        assert!(run("crates/qn/src/x.rs", "fn f(x: u64) -> f64 { x as f64 }\n").is_empty());
    }
}
