//! The four semantic rules, run over the workspace model
//! ([`crate::model`]) and call graph ([`crate::callgraph`]) instead of a
//! single file's token stream:
//!
//! - `panic-reachable-api` — every `pub` lib function that can
//!   transitively reach a panic site (justified ones included) must carry
//!   a `# Panics` doc section or a justified allow.
//! - `unscoped-parallelism` — `std::thread` / `Atomic*` / `Mutex` /
//!   `RwLock` and friends are confined to the three audited seams
//!   (`core::experiment`, `qn::matfree`, `obs::recorder`), keeping the
//!   bit-identical-per-worker-count property reviewable in three files.
//! - `swallowed-result` — `let _ =` bindings and statement-level `.ok()`
//!   calls that discard the `Result` of a workspace function in lib code.
//! - `seed-provenance` — the dataflow upgrade of `raw-rng`: a function
//!   that feeds one of its own parameters into an RNG constructor makes
//!   every caller responsible for deriving that seed; call sites that
//!   neither pass a `derive(..)` expression nor forward a parameter of
//!   their own are flagged.
//!
//! All four over-approximate (method calls resolve by name + arity across
//! the whole workspace) — the sound direction for reachability — and are
//! suppressed through the same justified-allow markers as the lexical
//! rules.

use crate::callgraph::{CallGraph, Resolver};
use crate::context::{in_test_region, FileKind};
use crate::lexer::{TokKind, Token};
use crate::model::WorkspaceModel;
use crate::parser::Visibility;
use crate::rules::Violation;

/// The three sanctioned parallelism seams, as (crate_dir, top module).
pub const PARALLEL_SEAMS: &[(&str, &str)] = &[
    ("core", "experiment"),
    ("qn", "matfree"),
    ("obs", "recorder"),
];

/// Identifier names that signal shared-state parallelism.
const PARALLEL_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "JoinHandle",
    "mpsc",
];

/// RNG constructor names (the same vocabulary as the lexical `raw-rng`).
const RNG_CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_seed", "from_entropy", "from_os_rng"];

/// Run the semantic rules; violations carry the owning file's path and
/// are suppressed by the engine exactly like lexical ones.
#[must_use]
pub fn check_semantic(model: &WorkspaceModel, graph: &CallGraph) -> Vec<Violation> {
    let mut v = Vec::new();
    panic_reachable_api(model, graph, &mut v);
    unscoped_parallelism(model, &mut v);
    swallowed_result(model, &mut v);
    seed_provenance(model, graph, &mut v);
    v
}

/// `panic-reachable-api`: interprocedural panic reachability for the
/// public API surface of lib files.
fn panic_reachable_api(model: &WorkspaceModel, graph: &CallGraph, v: &mut Vec<Violation>) {
    for (idx, f) in model.fns.iter().enumerate() {
        if f.in_test || f.vis != Visibility::Pub || f.has_panics_doc {
            continue;
        }
        if model.files[f.file].ctx.kind != FileKind::Lib {
            continue;
        }
        if !graph.reaches_panic(idx) {
            continue;
        }
        let mut refs: Vec<(&str, u32)> = graph
            .reachable_sites(idx)
            .into_iter()
            .map(|s| {
                (
                    model.panic_sites[s].path.as_str(),
                    model.panic_sites[s].line,
                )
            })
            .collect();
        refs.sort_unstable();
        let (ep, el) = refs[0];
        v.push(Violation {
            rule: "panic-reachable-api",
            path: model.files[f.file].rel_path.clone(),
            line: f.line,
            col: 1,
            message: format!(
                "pub fn `{}` can reach {} panic site(s), e.g. {ep}:{el}; document under `# Panics` or justify",
                f.qualified,
                refs.len()
            ),
        });
    }
}

/// `unscoped-parallelism`: parallelism vocabulary outside the seams.
fn unscoped_parallelism(model: &WorkspaceModel, v: &mut Vec<Violation>) {
    for file in &model.files {
        if file.ctx.kind == FileKind::Test {
            continue;
        }
        if PARALLEL_SEAMS
            .iter()
            .any(|&(c, m)| file.crate_dir == c && file.module.first().is_some_and(|s| s == m))
        {
            continue;
        }
        let code: Vec<&Token> = file
            .tokens
            .iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokKind::Ident || in_test_region(&file.regions, tok.line) {
                continue;
            }
            let text = tok.text.as_str();
            let hit = PARALLEL_TYPES.contains(&text)
                || text.starts_with("Atomic")
                || (text == "thread"
                    && (code.get(i + 1).is_some_and(|t| t.is_punct("::"))
                        || (i > 0 && code[i - 1].is_punct("::"))));
            if hit {
                v.push(Violation {
                    rule: "unscoped-parallelism",
                    path: file.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`{text}` outside the sanctioned parallelism seams (core::experiment, qn::matfree, obs::recorder)"
                    ),
                });
            }
        }
    }
}

/// `swallowed-result`: discarded workspace `Result`s in lib code.
fn swallowed_result(model: &WorkspaceModel, v: &mut Vec<Violation>) {
    let resolver = Resolver::new(model);
    for f in &model.fns {
        if f.in_test || model.files[f.file].ctx.kind != FileKind::Lib {
            continue;
        }
        let path = &model.files[f.file].rel_path;
        for d in &f.discards {
            let swallowed = d.calls.iter().find_map(|call_path| {
                resolver
                    .resolve_loose(model, f, call_path)
                    .into_iter()
                    .find(|&c| model.fns[c].returns_result)
            });
            if let Some(c) = swallowed {
                v.push(Violation {
                    rule: "swallowed-result",
                    path: path.clone(),
                    line: d.line,
                    col: d.col,
                    message: format!(
                        "`let _ =` discards the Result of `{}`; handle or propagate the error",
                        model.fns[c].qualified
                    ),
                });
            }
        }
        for call in &f.calls {
            if !call.is_ok_discard {
                continue;
            }
            let Some(recv) = &call.receiver_call else {
                continue;
            };
            let swallowed = resolver
                .resolve_loose(model, f, recv)
                .into_iter()
                .find(|&c| model.fns[c].returns_result);
            if let Some(c) = swallowed {
                v.push(Violation {
                    rule: "swallowed-result",
                    path: path.clone(),
                    line: call.line,
                    col: call.col,
                    message: format!(
                        "statement-level `.ok()` discards the Result of `{}`; handle or propagate the error",
                        model.fns[c].qualified
                    ),
                });
            }
        }
    }
}

/// `seed-provenance`: call-graph-aware seed hygiene. A function enters the
/// raw set when it feeds one of its own parameters into an RNG constructor
/// without `derive` in the argument expression; the raw set then grows to
/// a fixpoint through callers that merely forward their own parameters.
/// Finally, every call site into a raw-set function that neither contains
/// a `derive` call nor forwards a caller parameter is flagged — that is
/// where an underived seed actually enters the stream.
fn seed_provenance(model: &WorkspaceModel, graph: &CallGraph, v: &mut Vec<Violation>) {
    let forwards_param = |f: &crate::model::FnDef, args: &[String]| {
        args.iter()
            .any(|a| a != "self" && f.param_names.iter().any(|p| p == a))
    };
    let mut raw_set = vec![false; model.fns.len()];
    for (idx, f) in model.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        for call in &f.calls {
            let is_ctor = call
                .path
                .last()
                .is_some_and(|n| RNG_CONSTRUCTORS.contains(&n.as_str()));
            if is_ctor
                && !call.arg_idents.iter().any(|a| a == "derive")
                && forwards_param(f, &call.arg_idents)
            {
                raw_set[idx] = true;
            }
        }
    }
    loop {
        let mut changed = false;
        for (idx, f) in model.fns.iter().enumerate() {
            if f.in_test || raw_set[idx] {
                continue;
            }
            for (ci, call) in f.calls.iter().enumerate() {
                if !graph.call_targets[idx][ci].iter().any(|&t| raw_set[t]) {
                    continue;
                }
                if call.arg_idents.iter().any(|a| a == "derive") {
                    continue;
                }
                if forwards_param(f, &call.arg_idents) {
                    raw_set[idx] = true;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (idx, f) in model.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        for (ci, call) in f.calls.iter().enumerate() {
            let Some(&t) = graph.call_targets[idx][ci].iter().find(|&&t| raw_set[t]) else {
                continue;
            };
            if call.arg_idents.iter().any(|a| a == "derive") {
                continue;
            }
            if forwards_param(f, &call.arg_idents) {
                continue;
            }
            v.push(Violation {
                rule: "seed-provenance",
                path: model.files[f.file].rel_path.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "underived seed flows into `{}` (which feeds a raw seed parameter to an RNG); route it through seeds::derive",
                    model.fns[t].qualified
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, model};

    fn check(sources: &[(&str, &str)]) -> Vec<Violation> {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        let m = model::build(&owned);
        let g = callgraph::build(&m);
        check_semantic(&m, &g)
    }

    #[test]
    fn panic_reachability_requires_panics_doc() {
        let src = "\
pub fn undocumented(x: u64) -> u64 { helper(x) }
/// Documented.
///
/// # Panics
/// When x is zero.
pub fn documented(x: u64) -> u64 { helper(x) }
pub fn safe(x: u64) -> u64 { x }
fn helper(x: u64) -> u64 {
    // burstcap-lint: allow(panic-in-lib) — invariant
    x.checked_mul(2).unwrap()
}
";
        let v = check(&[("crates/qn/src/api.rs", src)]);
        let hits: Vec<(u32, &str)> = v
            .iter()
            .filter(|v| v.rule == "panic-reachable-api")
            .map(|v| (v.line, v.rule))
            .collect();
        assert_eq!(hits, vec![(1, "panic-reachable-api")], "{v:?}");
    }

    #[test]
    fn parallelism_confined_to_seams() {
        let src = "\
use std::sync::Mutex;
pub fn f() {
    let h = std::thread::spawn(|| 1);
}
";
        let v = check(&[("crates/stats/src/x.rs", src)]);
        let lines: Vec<u32> = v
            .iter()
            .filter(|v| v.rule == "unscoped-parallelism")
            .map(|v| v.line)
            .collect();
        assert_eq!(lines, vec![1, 3], "{v:?}");
        // Same tokens inside a seam: clean.
        let v = check(&[("crates/qn/src/matfree.rs", src)]);
        assert!(v.iter().all(|v| v.rule != "unscoped-parallelism"), "{v:?}");
        let v = check(&[("crates/core/src/experiment.rs", src)]);
        assert!(v.iter().all(|v| v.rule != "unscoped-parallelism"), "{v:?}");
    }

    #[test]
    fn swallowed_results_are_flagged() {
        let src = "\
pub fn fallible() -> Result<u64, String> { Ok(1) }
pub fn infallible() -> u64 { 1 }
pub fn caller() {
    let _ = fallible();
    let _ = infallible();
    fallible().ok();
}
";
        let v = check(&[("crates/online/src/x.rs", src)]);
        let hits: Vec<u32> = v
            .iter()
            .filter(|v| v.rule == "swallowed-result")
            .map(|v| v.line)
            .collect();
        assert_eq!(hits, vec![4, 6], "{v:?}");
    }

    #[test]
    fn seed_provenance_tracks_raw_parameters_through_callers() {
        let src = "\
pub fn make_rng(seed: u64) -> SmallRng {
    // burstcap-lint: allow(raw-rng) — seed derivation is the callers' contract
    SmallRng::seed_from_u64(seed)
}
pub fn forwards(seed: u64) -> SmallRng { make_rng(seed) }
pub fn derived() -> SmallRng { make_rng(seeds::derive(7, 1, 0)) }
pub fn raw() -> SmallRng { make_rng(42) }
";
        let v = check(&[("crates/sim/src/rng.rs", src)]);
        let hits: Vec<u32> = v
            .iter()
            .filter(|v| v.rule == "seed-provenance")
            .map(|v| v.line)
            .collect();
        // Only `raw` (line 7) injects an underived seed; `forwards`
        // propagates the obligation and `derived` discharges it.
        assert_eq!(hits, vec![7], "{v:?}");
    }
}
