//! A minimal Rust lexer: just enough structure for invariant linting.
//!
//! The token stream distinguishes everything the rules need to avoid false
//! positives from prose and literals — line and block comments (nested),
//! string / raw-string / byte-string / char literals, lifetimes vs chars,
//! raw identifiers, and numeric literals with float detection — and tags
//! every token with a 1-based `line:col` span. It does **not** attempt full
//! fidelity (no token trees, no keyword classes): rules match on short
//! token patterns and on bracket structure reconstructed downstream.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// Lifetime such as `'a` (without the quote).
    Lifetime,
    /// Integer literal (including hex/octal/binary forms).
    Int,
    /// Float literal (`1.0`, `1.`, `1e-9`, `2f64`, ...).
    Float,
    /// String, raw-string, or byte-string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Line or block comment (doc comments included), full text retained.
    Comment,
    /// Punctuation / operator; multi-char operators are fused (`==`, `::`).
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// The token text (comments keep their full text; strings keep quotes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Token {
    /// True for identifier tokens with exactly this text.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for punctuation tokens with exactly this text.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Multi-character operators fused into a single `Punct` token. Longest
/// match wins; anything absent here lexes as a single character.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn text_from(&self, start: usize) -> String {
        self.chars[start..self.pos].iter().collect()
    }
}

/// Lex `src` into a token stream. Never fails: unterminated literals simply
/// run to end-of-file (the compiler rejects those files anyway; the linter
/// only ever sees code that builds).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                while let Some(n) = cur.peek(0) {
                    if n == '\n' {
                        break;
                    }
                    cur.bump();
                }
                push(&mut out, TokKind::Comment, &cur, start, line, col);
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(&mut out, TokKind::Comment, &cur, start, line, col);
            }
            '"' => {
                lex_quoted_string(&mut cur);
                push(&mut out, TokKind::Str, &cur, start, line, col);
            }
            'r' | 'b' if starts_string_prefix(&cur) => {
                let kind = lex_prefixed_literal(&mut cur);
                push(&mut out, kind, &cur, start, line, col);
            }
            '\'' => {
                let kind = lex_quote(&mut cur);
                push(&mut out, kind, &cur, start, line, col);
            }
            _ if is_ident_start(c) => {
                // Raw identifiers (`r#fn`) reach here only when not a raw
                // string; `starts_string_prefix` already disambiguated.
                if c == 'r' && cur.peek(1) == Some('#') {
                    cur.bump();
                    cur.bump();
                }
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(&mut out, TokKind::Ident, &cur, start, line, col);
            }
            _ if c.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                push(&mut out, kind, &cur, start, line, col);
            }
            _ => {
                let mut matched = false;
                for op in MULTI_PUNCT {
                    if op
                        .chars()
                        .enumerate()
                        .all(|(k, oc)| cur.peek(k) == Some(oc))
                    {
                        for _ in 0..op.chars().count() {
                            cur.bump();
                        }
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    cur.bump();
                }
                push(&mut out, TokKind::Punct, &cur, start, line, col);
            }
        }
    }
    out
}

fn push(out: &mut Vec<Token>, kind: TokKind, cur: &Cursor, start: usize, line: u32, col: u32) {
    out.push(Token {
        kind,
        text: cur.text_from(start),
        line,
        col,
    });
}

/// Does the cursor sit on a string-literal prefix (`r"`, `r#"`, `b"`, `b'`,
/// `br"`, `br#"`) rather than an ordinary identifier starting with r/b?
fn starts_string_prefix(cur: &Cursor) -> bool {
    let c0 = cur.peek(0);
    let mut k = 1;
    if c0 == Some('b') && cur.peek(1) == Some('r') {
        k = 2;
    }
    if c0 == Some('b') && cur.peek(1) == Some('\'') {
        return true;
    }
    // Skip hashes of a raw string; `r#ident` (raw identifier) has an
    // ident-start char after the hash instead of a quote.
    let mut j = k;
    while cur.peek(j) == Some('#') {
        j += 1;
    }
    let raw = k != 1 || c0 == Some('r');
    match cur.peek(j) {
        Some('"') if raw || j == k => true,
        _ => c0 == Some('b') && cur.peek(1) == Some('"'),
    }
}

/// Lex a literal starting with `r`/`b` prefixes; cursor on the prefix.
fn lex_prefixed_literal(cur: &mut Cursor) -> TokKind {
    if cur.peek(0) == Some('b') && cur.peek(1) == Some('\'') {
        cur.bump(); // b
        lex_quote(cur);
        return TokKind::Char;
    }
    if cur.peek(0) == Some('b') {
        cur.bump();
    }
    if cur.peek(0) == Some('r') {
        cur.bump();
        let mut hashes = 0usize;
        while cur.peek(0) == Some('#') {
            cur.bump();
            hashes += 1;
        }
        cur.bump(); // opening quote
        loop {
            match cur.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek(0) == Some('#') {
                        cur.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
        TokKind::Str
    } else {
        lex_quoted_string(cur);
        TokKind::Str
    }
}

/// Lex a `"..."` string with escapes; cursor on the opening quote.
fn lex_quoted_string(cur: &mut Cursor) {
    cur.bump();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Lex a `'`-led token: either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor) -> TokKind {
    cur.bump(); // '
    match (cur.peek(0), cur.peek(1)) {
        (Some('\\'), _) => {
            cur.bump();
            cur.bump(); // escaped char (first char of the escape is enough)
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            TokKind::Char
        }
        (Some(c), Some('\'')) if c != '\'' => {
            cur.bump();
            cur.bump();
            TokKind::Char
        }
        (Some(c), _) if is_ident_start(c) => {
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokKind::Lifetime
        }
        _ => TokKind::Punct, // stray quote; compiler territory
    }
}

/// Lex a numeric literal; cursor on the first digit.
fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        cur.bump();
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
            cur.bump();
        }
        return TokKind::Int;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    if cur.peek(0) == Some('.') {
        // `1.0` and trailing `1.` are floats; `1..2` is a range and
        // `1.max(..)` a method call.
        let after = cur.peek(1);
        let part_of_float = match after {
            Some(c) if c.is_ascii_digit() => true,
            Some('.') => false,
            Some(c) if is_ident_start(c) => false,
            _ => true,
        };
        if part_of_float {
            float = true;
            cur.bump();
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                cur.bump();
            }
        }
    }
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (s1, s2) = (cur.peek(1), cur.peek(2));
        let exp = match s1 {
            Some(c) if c.is_ascii_digit() => true,
            Some('+' | '-') => s2.is_some_and(|c| c.is_ascii_digit()),
            _ => false,
        };
        if exp {
            float = true;
            cur.bump();
            if matches!(cur.peek(0), Some('+' | '-')) {
                cur.bump();
            }
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                cur.bump();
            }
        }
    }
    // Type suffix (`u32`, `f64`, ...): an `f` suffix forces float.
    if cur.peek(0).is_some_and(is_ident_start) {
        if cur.peek(0) == Some('f') {
            float = true;
        }
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

/// Is this float-literal text exactly zero (`0.0`, `0.`, `0e0`, `0_f64`)?
#[must_use]
pub fn float_is_zero(text: &str) -> bool {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('.');
    cleaned.parse::<f64>().map(|v| v == 0.0).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds("// Instant::now\nlet s = \"SystemTime\"; /* HashMap */");
        assert_eq!(toks[0], (TokKind::Comment, "// Instant::now".into()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "\"SystemTime\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Comment && t == "/* HashMap */"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "now"));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let a = r#"un"closed"# ; let r#fn = 1;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.starts_with("r#\"")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#fn"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn floats_ints_and_method_calls_on_ints() {
        let toks =
            kinds("let a = 1.0; let b = 1..2; let c = 1.max(0); let d = 1e-9; let e = 2f64;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.0", "1e-9", "2f64"]);
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn zero_floats_recognized() {
        for z in ["0.0", "0.", "0e0", "0.000", "0_f64", "0.0f32"] {
            assert!(float_is_zero(z), "{z}");
        }
        for nz in ["1.0", "0.5", "1e-9"] {
            assert!(!float_is_zero(nz), "{nz}");
        }
    }

    #[test]
    fn multi_char_punct_fused() {
        let toks = kinds("a == b != c :: d -> e");
        let ops: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "::", "->"]);
    }
}
