//! A lightweight recursive-descent parser over the [`crate::lexer`] token
//! stream: items, `impl` blocks, `fn` signatures and bodies, call and
//! method-call expressions, and `use` trees.
//!
//! This is deliberately **not** a full Rust grammar. Items are parsed
//! structurally (visibility, keyword, name, delimiter matching); function
//! bodies are scanned for the events the semantic rules need — call
//! expressions with their argument token sets, panic sites, `let _ =`
//! bindings, and `.ok()` discards — without building an expression tree.
//! Anything the parser cannot place is recorded as a [`ParseError`] and
//! skipped token-by-token; the workspace-totality test asserts the error
//! list stays empty for every real workspace file, so the parser cannot
//! silently rot as new syntax lands.

use crate::lexer::{TokKind, Token};

/// Visibility of an item, as far as the linter cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub` — part of the crate's public API surface.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — scoped, not public API.
    Scoped,
    /// No visibility qualifier.
    Private,
}

/// What kind of call expression a [`Call`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `path::to::fn(...)` — resolved through the symbol table by path.
    Path,
    /// `.method(...)` — resolved by method name across workspace impls.
    Method,
}

/// One call expression found in a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments (`["seeds", "derive"]`) or the bare method name.
    pub path: Vec<String>,
    /// Path call or method call.
    pub kind: CallKind,
    /// 1-based line of the called name.
    pub line: u32,
    /// 1-based column of the called name.
    pub col: u32,
    /// Identifier texts appearing anywhere in the argument list.
    pub arg_idents: Vec<String>,
    /// Number of top-level arguments (comma-split at delimiter depth 1).
    pub arg_count: usize,
    /// Whether the argument list contains a closure pipe (`|…|`), which
    /// makes the comma-based `arg_count` unreliable.
    pub args_have_closure: bool,
    /// True when the method call is `.ok()` with no arguments and the
    /// token after the closing paren is `;` (a statement-level discard).
    pub is_ok_discard: bool,
    /// For `.ok()`/method calls: the path of the call expression whose
    /// result is the receiver (`fit(x).ok()` records `fit`), when the
    /// receiver is syntactically a call.
    pub receiver_call: Option<Vec<String>>,
}

/// A statically-detected panic site (same vocabulary as `panic-in-lib`:
/// `.unwrap()` / `.expect()` method calls and `panic!` / `todo!` /
/// `unimplemented!` macros; `unreachable!` documents a closed branch and is
/// not counted).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// The panicking name (`unwrap`, `panic`, ...).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A `let _ = <expr>;` statement in a function body.
#[derive(Debug, Clone)]
pub struct Discard {
    /// 1-based line of the `let`.
    pub line: u32,
    /// 1-based column of the `let`.
    pub col: u32,
    /// Paths of all call expressions inside the discarded expression.
    pub calls: Vec<Vec<String>>,
}

/// One parameter of a function signature.
#[derive(Debug, Clone)]
pub struct Param {
    /// Identifiers bound by the parameter pattern (`mut seed` → `seed`).
    pub names: Vec<String>,
}

/// A parsed function (free fn, or method inside an `impl`/`trait` block).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Visibility qualifier.
    pub vis: Visibility,
    /// Parameters in order (the `self` receiver is recorded as a param
    /// named `self`).
    pub params: Vec<Param>,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// Whether the doc comment block carries a `# Panics` section.
    pub has_panics_doc: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body (or of the `;` for a bodyless declaration).
    pub end_line: u32,
    /// Whether the fn itself carried a `#[cfg(test)]`-style gate or
    /// `#[test]` marker.
    pub cfg_test: bool,
    /// Body events (`None` for trait method declarations without bodies).
    pub body: Option<FnBody>,
}

/// Events extracted from one function body.
#[derive(Debug, Clone, Default)]
pub struct FnBody {
    /// Call and method-call expressions, in source order.
    pub calls: Vec<Call>,
    /// Panic sites.
    pub panics: Vec<PanicSite>,
    /// `let _ = ...;` statements.
    pub discards: Vec<Discard>,
}

/// One `use` mapping: local name → full path segments.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// The name the import binds locally (last segment or rename).
    pub local: String,
    /// Full path segments as written (`["crate", "seeds", "derive"]`).
    pub path: Vec<String>,
}

/// A top-level or module-nested item.
#[derive(Debug, Clone)]
pub enum Item {
    /// A free function.
    Fn(FnItem),
    /// An `impl` block (inherent or trait) with its associated functions.
    Impl {
        /// Name of the implemented-on type (last path segment).
        self_ty: String,
        /// Trait name for `impl Trait for Type` blocks.
        trait_name: Option<String>,
        /// Associated functions.
        fns: Vec<FnItem>,
        /// 1-based line of the `impl` keyword.
        line: u32,
    },
    /// An inline module with its items (`mod x;` declarations are
    /// recorded with an empty item list).
    Mod {
        /// Module name.
        name: String,
        /// Items inside an inline `mod name { ... }` body.
        items: Vec<Item>,
        /// Whether the module body was inline.
        inline: bool,
        /// 1-based line of the `mod` keyword.
        line: u32,
        /// Whether the module carried a `#[cfg(test)]` gate.
        cfg_test: bool,
    },
    /// Flattened `use` imports.
    Use(Vec<UseImport>),
    /// A struct / enum / trait / const / static / type / macro item the
    /// call graph does not need beyond its existence.
    Other {
        /// Item keyword (`struct`, `enum`, ...).
        keyword: String,
        /// Item name when present.
        name: Option<String>,
        /// 1-based line.
        line: u32,
    },
}

/// A recoverable parse problem, recorded with its location.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// What the parser could not place.
    pub message: String,
}

/// Result of parsing one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Top-level items.
    pub items: Vec<Item>,
    /// Recoverable errors (empty for every file the compiler accepts, per
    /// the workspace-totality test).
    pub errors: Vec<ParseError>,
}

/// Parse a lexed file.
#[must_use]
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut p = Parser::new(tokens);
    let items = p.parse_items(true);
    ParsedFile {
        items,
        errors: p.errors,
    }
}

/// Count items and functions (recursively, including impl members) — the
/// totality snapshot numbers.
#[must_use]
pub fn count_items_and_fns(items: &[Item]) -> (usize, usize) {
    let mut n_items = 0;
    let mut n_fns = 0;
    for item in items {
        n_items += 1;
        match item {
            Item::Fn(_) => n_fns += 1,
            Item::Impl { fns, .. } => n_fns += fns.len(),
            Item::Mod { items, .. } => {
                let (i, f) = count_items_and_fns(items);
                n_items += i;
                n_fns += f;
            }
            _ => {}
        }
    }
    (n_items, n_fns)
}

struct Parser<'a> {
    /// Code tokens (comments removed).
    toks: Vec<&'a Token>,
    /// Doc-comment tokens by line, for `# Panics` attachment.
    docs: Vec<(u32, &'a str)>,
    pos: usize,
    errors: Vec<ParseError>,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        let toks: Vec<&Token> = tokens
            .iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let docs: Vec<(u32, &str)> = tokens
            .iter()
            .filter(|t| {
                t.kind == TokKind::Comment
                    && (t.text.starts_with("///") || t.text.starts_with("/**"))
            })
            .map(|t| (t.line, t.text.as_str()))
            .collect();
        Parser {
            toks,
            docs,
            pos: 0,
            errors: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos).copied();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(s))
    }

    fn error_at(&mut self, line: u32, message: String) {
        self.errors.push(ParseError { line, message });
    }

    /// Skip a balanced delimiter group; the cursor sits on the opener.
    /// Returns the line of the closing delimiter.
    fn skip_group(&mut self, open: &str, close: &str) -> u32 {
        let mut depth = 0usize;
        let mut last = self.peek(0).map_or(0, |t| t.line);
        while let Some(t) = self.bump() {
            last = t.line;
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        last
    }

    /// Skip an angle-bracketed generic group; the cursor sits on `<`.
    /// Handles fused `<<`/`>>` shift tokens inside nested generics.
    fn skip_generics(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.bump() {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                // `->` inside `Fn(...) -> T` bounds carries a `>` glyph but
                // does not close a generic group.
                _ => {}
            }
            if t.kind == TokKind::Punct && depth <= 0 && matches!(t.text.as_str(), ">" | ">>") {
                break;
            }
        }
    }

    /// Skip `#[...]` / `#![...]` attributes; report whether any attribute
    /// was a `cfg(test)`-style gate, and the derive-macro names seen.
    fn skip_attrs(&mut self) -> bool {
        let mut cfg_test = false;
        while self.at_punct("#") {
            let mut j = self.pos + 1;
            if self.toks.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if !self.toks.get(j).is_some_and(|t| t.is_punct("[")) {
                break;
            }
            // Inspect attribute tokens for `cfg` + `test`.
            let mut depth = 0usize;
            let mut has_cfg = false;
            let mut has_test = false;
            let mut len = 0usize;
            let mut k = j;
            while let Some(t) = self.toks.get(k) {
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if t.is_ident("cfg") {
                        has_cfg = true;
                    }
                    if t.is_ident("test") {
                        has_test = true;
                    }
                    len += 1;
                }
                k += 1;
            }
            if has_test && (has_cfg || len == 1) {
                cfg_test = true;
            }
            self.pos = k + 1;
        }
        cfg_test
    }

    /// Parse a visibility qualifier if present.
    fn parse_vis(&mut self) -> Visibility {
        if !self.at_ident("pub") {
            return Visibility::Private;
        }
        self.bump();
        if self.at_punct("(") {
            self.skip_group("(", ")");
            return Visibility::Scoped;
        }
        Visibility::Pub
    }

    /// Parse items until end-of-file (`top` true) or a closing `}`.
    fn parse_items(&mut self, top: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            let cfg_test = self.skip_attrs();
            let Some(tok) = self.peek(0) else {
                break;
            };
            if tok.is_punct("}") && !top {
                break;
            }
            let line = tok.line;
            let vis = self.parse_vis();
            // Item qualifiers that may precede the keyword.
            while self.at_ident("unsafe")
                || self.at_ident("async")
                || self.at_ident("extern")
                || (self.at_ident("const") && self.peek(1).is_some_and(|t| t.is_ident("fn")))
            {
                // `extern "C"` carries an ABI string.
                let was_extern = self.at_ident("extern");
                self.bump();
                if was_extern && self.peek(0).is_some_and(|t| t.kind == TokKind::Str) {
                    self.bump();
                }
            }
            let Some(kw) = self.peek(0) else {
                break;
            };
            match kw.text.as_str() {
                "fn" => {
                    let f = self.parse_fn(vis, cfg_test);
                    items.push(Item::Fn(f));
                }
                "impl" => items.push(self.parse_impl(line)),
                "mod" => items.push(self.parse_mod(line, cfg_test)),
                "use" => items.push(self.parse_use()),
                "struct" | "enum" | "union" | "trait" => {
                    items.push(self.parse_structural(cfg_test));
                }
                "const" | "static" | "type" => {
                    let keyword = kw.text.clone();
                    self.bump();
                    let name = self
                        .peek(0)
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone());
                    self.skip_to_semi();
                    items.push(Item::Other {
                        keyword,
                        name,
                        line,
                    });
                }
                "macro_rules" => {
                    self.bump(); // macro_rules
                    self.bump(); // !
                    let name = self
                        .peek(0)
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone());
                    self.bump();
                    if self.at_punct("{") {
                        self.skip_group("{", "}");
                    } else {
                        self.skip_to_semi();
                    }
                    items.push(Item::Other {
                        keyword: "macro_rules".to_owned(),
                        name,
                        line,
                    });
                }
                _ => {
                    // Item-position macro invocation (`criterion_group! {..}`,
                    // `thread_local! {..}`, `foo!(..);`): skip the delimited
                    // body wholesale — macro input is not item syntax.
                    if kw.kind == TokKind::Ident && self.peek(1).is_some_and(|t| t.is_punct("!")) {
                        let name = kw.text.clone();
                        self.bump(); // macro name
                        self.bump(); // !
                        match self.peek(0) {
                            Some(t) if t.is_punct("{") => {
                                self.skip_group("{", "}");
                            }
                            Some(t) if t.is_punct("(") => {
                                self.skip_group("(", ")");
                                self.skip_to_semi();
                            }
                            Some(t) if t.is_punct("[") => {
                                self.skip_group("[", "]");
                                self.skip_to_semi();
                            }
                            _ => self.skip_to_semi(),
                        }
                        items.push(Item::Other {
                            keyword: "macro".to_owned(),
                            name: Some(name),
                            line,
                        });
                        continue;
                    }
                    if top || !kw.is_punct("}") {
                        self.error_at(line, format!("unexpected token `{}`", kw.text));
                    }
                    self.bump();
                }
            }
        }
        items
    }

    /// Parse `struct`/`enum`/`union`/`trait`: name + delimited body. Trait
    /// bodies are parsed for associated fns (default bodies make calls).
    fn parse_structural(&mut self, _cfg_test: bool) -> Item {
        let kw = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        let line = self.peek(0).map_or(0, |t| t.line);
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        self.bump();
        if self.at_punct("<") {
            self.skip_generics();
        }
        if kw == "trait" {
            // Supertraits / where clause up to the body.
            while !self.at_punct("{") && self.peek(0).is_some() {
                self.bump();
            }
            let fns = self.parse_assoc_fns();
            return Item::Impl {
                self_ty: name.clone().unwrap_or_default(),
                trait_name: name.clone(),
                fns,
                line,
            };
        }
        // Struct/enum/union: tuple structs end with `;`, braced bodies are
        // skipped wholesale (field types make no calls).
        while let Some(t) = self.peek(0) {
            if t.is_punct(";") {
                self.bump();
                break;
            }
            if t.is_punct("{") {
                self.skip_group("{", "}");
                break;
            }
            if t.is_punct("(") {
                self.skip_group("(", ")");
                continue;
            }
            if t.is_punct("<") {
                self.skip_generics();
                continue;
            }
            self.bump();
        }
        Item::Other {
            keyword: kw,
            name,
            line,
        }
    }

    /// Parse an `impl` header and its associated functions.
    fn parse_impl(&mut self, line: u32) -> Item {
        self.bump(); // impl
        if self.at_punct("<") {
            self.skip_generics();
        }
        // Collect header tokens up to the body `{` (or `;` — never in real
        // code), splitting on a depth-0 `for`.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        while let Some(t) = self.peek(0) {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            if t.is_ident("for") {
                saw_for = true;
                self.bump();
                continue;
            }
            if t.is_ident("where") {
                // Skip the whole where clause up to `{`.
                while self.peek(0).is_some() && !self.at_punct("{") {
                    if self.at_punct("<") {
                        self.skip_generics();
                    } else {
                        self.bump();
                    }
                }
                break;
            }
            if t.is_punct("<") {
                self.skip_generics();
                continue;
            }
            if t.kind == TokKind::Ident {
                if saw_for {
                    after_for.push(t.text.clone());
                } else {
                    before_for.push(t.text.clone());
                }
            }
            self.bump();
        }
        let ty_tokens = if saw_for { &after_for } else { &before_for };
        let strip = ["dyn", "mut", "crate", "super", "self"];
        let self_ty = ty_tokens
            .iter()
            .rfind(|s| !strip.contains(&s.as_str()))
            .cloned()
            .unwrap_or_default();
        let trait_name = if saw_for {
            before_for
                .iter()
                .rfind(|s| !strip.contains(&s.as_str()))
                .cloned()
        } else {
            None
        };
        let fns = self.parse_assoc_fns();
        Item::Impl {
            self_ty,
            trait_name,
            fns,
            line,
        }
    }

    /// Parse the `{ ... }` body of an impl/trait: associated fns, consts,
    /// and types.
    fn parse_assoc_fns(&mut self) -> Vec<FnItem> {
        let mut fns = Vec::new();
        if !self.at_punct("{") {
            return fns;
        }
        self.bump(); // {
        loop {
            let cfg_test = self.skip_attrs();
            let Some(t) = self.peek(0) else {
                break;
            };
            if t.is_punct("}") {
                self.bump();
                break;
            }
            let line = t.line;
            let vis = self.parse_vis();
            while self.at_ident("unsafe")
                || self.at_ident("async")
                || self.at_ident("default")
                || (self.at_ident("const") && self.peek(1).is_some_and(|t| t.is_ident("fn")))
            {
                self.bump();
            }
            if self.at_ident("fn") {
                fns.push(self.parse_fn(vis, cfg_test));
            } else if self.at_ident("const") || self.at_ident("type") {
                self.bump();
                self.skip_to_semi();
            } else {
                self.error_at(line, format!("unexpected token `{}` in impl body", t.text));
                self.bump();
            }
        }
        fns
    }

    /// Parse `mod name;` or `mod name { items }`.
    fn parse_mod(&mut self, line: u32, cfg_test: bool) -> Item {
        self.bump(); // mod
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        self.bump();
        if self.at_punct(";") {
            self.bump();
            return Item::Mod {
                name,
                items: Vec::new(),
                inline: false,
                line,
                cfg_test,
            };
        }
        // Inline body.
        if self.at_punct("{") {
            self.bump();
            let items = self.parse_items(false);
            if self.at_punct("}") {
                self.bump();
            }
            return Item::Mod {
                name,
                items,
                inline: true,
                line,
                cfg_test,
            };
        }
        self.error_at(line, "malformed mod item".to_owned());
        Item::Mod {
            name,
            items: Vec::new(),
            inline: false,
            line,
            cfg_test,
        }
    }

    /// Parse a `use` item, flattening trees into (local, path) pairs.
    fn parse_use(&mut self) -> Item {
        self.bump(); // use
        let mut imports = Vec::new();
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(&mut prefix, &mut imports);
        if self.at_punct(";") {
            self.bump();
        }
        Item::Use(imports)
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<UseImport>) {
        let depth_at_entry = prefix.len();
        loop {
            let Some(t) = self.peek(0) else {
                return;
            };
            if t.kind == TokKind::Ident && t.text != "as" {
                prefix.push(t.text.clone());
                self.bump();
                if self.at_punct("::") {
                    self.bump();
                    continue;
                }
                // Terminal segment, maybe renamed. `{self, ...}` binds the
                // parent segment's own name.
                let mut path = prefix.clone();
                if path.last().is_some_and(|s| s == "self") {
                    path.pop();
                }
                let mut local = path.last().cloned().unwrap_or_default();
                if self.at_ident("as") {
                    self.bump();
                    if let Some(alias) = self.peek(0).filter(|t| t.kind == TokKind::Ident) {
                        local = alias.text.clone();
                        self.bump();
                    }
                }
                out.push(UseImport { local, path });
                prefix.truncate(depth_at_entry);
            } else if t.is_punct("{") {
                self.bump();
                loop {
                    self.parse_use_tree(prefix, out);
                    if self.at_punct(",") {
                        self.bump();
                        continue;
                    }
                    break;
                }
                if self.at_punct("}") {
                    self.bump();
                }
                prefix.truncate(depth_at_entry);
                return;
            } else if t.is_punct("*") {
                // Glob imports carry no local names the resolver can use.
                self.bump();
                prefix.truncate(depth_at_entry);
                return;
            } else {
                return;
            }
            // After a terminal segment: either `,`/`}`/`;` (caller's job).
            return;
        }
    }

    /// Parse a `fn` item from the `fn` keyword.
    fn parse_fn(&mut self, vis: Visibility, cfg_test: bool) -> FnItem {
        let fn_line = self.peek(0).map_or(0, |t| t.line);
        self.bump(); // fn
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        self.bump();
        if self.at_punct("<") {
            self.skip_generics();
        }
        // Parameter list.
        let mut params = Vec::new();
        if self.at_punct("(") {
            params = self.parse_params();
        }
        // Return type: scan to `{`, `;`, or `where` at depth 0.
        let mut returns_result = false;
        if self.at_punct("->") {
            self.bump();
            while let Some(t) = self.peek(0) {
                if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
                    break;
                }
                if t.is_punct("<") {
                    // Generic args of the return type may mention Result
                    // (`Option<Result<..>>` is not the fn's own contract,
                    // but treating it as Result-returning only
                    // over-approximates, which is the safe direction).
                    let start = self.pos;
                    self.skip_generics();
                    returns_result |= self.toks[start..self.pos]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text.contains("Result"));
                    continue;
                }
                if t.is_punct("(") {
                    let start = self.pos;
                    self.skip_group("(", ")");
                    returns_result |= self.toks[start..self.pos]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text.contains("Result"));
                    continue;
                }
                if t.is_punct("[") {
                    // Array types carry a `;` inside the brackets
                    // (`[[f64; 2]; 2]`) that must not end the scan.
                    self.skip_group("[", "]");
                    continue;
                }
                if t.kind == TokKind::Ident && t.text.contains("Result") {
                    returns_result = true;
                }
                self.bump();
            }
        }
        if self.at_ident("where") {
            while self.peek(0).is_some() && !self.at_punct("{") && !self.at_punct(";") {
                if self.at_punct("<") {
                    self.skip_generics();
                } else if self.at_punct("[") {
                    self.skip_group("[", "]");
                } else {
                    self.bump();
                }
            }
        }
        // Body or declaration.
        let (body, end_line) = if self.at_punct("{") {
            let start = self.pos;
            let end_line = self.skip_group("{", "}");
            let body = extract_body(&self.toks[start..self.pos]);
            (Some(body), end_line)
        } else {
            let end_line = self.peek(0).map_or(fn_line, |t| t.line);
            if self.at_punct(";") {
                self.bump();
            }
            (None, end_line)
        };
        let has_panics_doc = self.doc_block_has_panics(fn_line);
        FnItem {
            name,
            vis,
            params,
            returns_result,
            has_panics_doc,
            line: fn_line,
            end_line,
            cfg_test,
            body,
        }
    }

    /// Does the contiguous doc block above `fn_line` contain `# Panics`?
    /// Attributes between the docs and the `fn` are tolerated by walking
    /// upwards through doc lines from the first doc line at or above the
    /// item, allowing a gap of up to 4 attribute lines.
    fn doc_block_has_panics(&self, fn_line: u32) -> bool {
        // Find the nearest doc line above the fn within a small window
        // (attributes like #[must_use] sit between the docs and the fn).
        let mut top = None;
        for gap in 1..=5u32 {
            let line = fn_line.saturating_sub(gap);
            if self.docs.iter().any(|(l, _)| *l == line) {
                top = Some(line);
                break;
            }
        }
        let Some(mut line) = top else {
            return false;
        };
        // Walk the contiguous doc block upwards.
        while let Some((_, text)) = self.docs.iter().find(|(l, _)| *l == line) {
            if text.contains("# Panics") {
                return true;
            }
            if line == 1 {
                break;
            }
            line -= 1;
        }
        false
    }

    /// Parse the parenthesized parameter list; cursor on `(`.
    fn parse_params(&mut self) -> Vec<Param> {
        let start = self.pos;
        self.skip_group("(", ")");
        let toks = &self.toks[start + 1..self.pos.saturating_sub(1)];
        let mut params = Vec::new();
        // Split on commas at depth 0 (parens/brackets/braces/angles).
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut current: Vec<&Token> = Vec::new();
        let flush = |current: &mut Vec<&Token>, params: &mut Vec<Param>| {
            if current.is_empty() {
                return;
            }
            // Names: idents in the pattern before the top-level `:`.
            let mut names = Vec::new();
            for t in current.iter() {
                if t.is_punct(":") {
                    break;
                }
                if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref") {
                    names.push(t.text.clone());
                }
            }
            params.push(Param { names });
            current.clear();
        };
        for t in toks {
            match t.text.as_str() {
                "(" | "[" | "{" if t.kind == TokKind::Punct => depth += 1,
                ")" | "]" | "}" if t.kind == TokKind::Punct => depth -= 1,
                "<" if t.kind == TokKind::Punct => angle += 1,
                "<<" if t.kind == TokKind::Punct => angle += 2,
                ">" if t.kind == TokKind::Punct => angle -= 1,
                ">>" if t.kind == TokKind::Punct => angle -= 2,
                "," if t.kind == TokKind::Punct && depth == 0 && angle <= 0 => {
                    flush(&mut current, &mut params);
                    continue;
                }
                _ => {}
            }
            current.push(t);
        }
        flush(&mut current, &mut params);
        params
    }

    fn skip_to_semi(&mut self) {
        while let Some(t) = self.peek(0) {
            if t.is_punct(";") {
                self.bump();
                return;
            }
            if t.is_punct("{") {
                self.skip_group("{", "}");
                // `const X: Foo = Foo { .. };` — keep scanning for the `;`.
                continue;
            }
            if t.is_punct("(") {
                self.skip_group("(", ")");
                continue;
            }
            if t.is_punct("[") {
                self.skip_group("[", "]");
                continue;
            }
            self.bump();
        }
    }
}

/// Names whose `.method(` / `name!(` forms are panic sites.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Keywords that may be followed by `(` without being a call expression.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "in", "return", "loop", "move", "as", "let", "mut",
    "ref", "break", "continue", "unsafe", "await", "dyn", "impl", "fn", "where", "use", "pub",
    "crate", "super", "box",
];

/// Scan a function-body token range (including the outer braces) for the
/// events the semantic rules need. No expression tree is built: calls are
/// maximal `path::seg(` / `.name(` matches with argument-token capture.
fn extract_body(toks: &[&Token]) -> FnBody {
    let mut body = FnBody::default();
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        // `let _ = <expr>;` discard statements.
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("="))
        {
            let (calls, end) = calls_in_statement(toks, i + 3);
            body.discards.push(Discard {
                line: t.line,
                col: t.col,
                calls,
            });
            // Do not skip: the same range is rescanned below so the calls
            // also enter the call list (needed for graph edges).
            let _ = end;
            i += 3;
            continue;
        }
        if t.kind == TokKind::Ident {
            // Macro call?
            if toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
                if PANIC_MACROS.contains(&t.text.as_str()) {
                    body.panics.push(PanicSite {
                        what: t.text.clone(),
                        line: t.line,
                        col: t.col,
                    });
                }
                i += 2;
                continue;
            }
            // Path or method call: Ident [turbofish] `(`.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct("::"))
                && toks.get(j + 1).is_some_and(|n| n.is_punct("<"))
            {
                j = skip_angle(toks, j + 1);
            }
            if toks.get(j).is_some_and(|n| n.is_punct("(")) {
                let is_method = i > 0 && toks[i - 1].is_punct(".");
                let is_def = i > 0 && toks[i - 1].is_ident("fn");
                let is_keyword = NON_CALL_KEYWORDS.contains(&t.text.as_str());
                if !is_def && !is_keyword {
                    let path = if is_method {
                        vec![t.text.clone()]
                    } else {
                        collect_path_backwards(toks, i)
                    };
                    let (arg_idents, arg_count, args_have_closure, close) = scan_args(toks, j);
                    let is_ok_discard = is_method
                        && t.text == "ok"
                        && close == j + 1
                        && toks.get(close + 1).is_some_and(|n| n.is_punct(";"));
                    let receiver_call = if is_method {
                        receiver_call_path(toks, i - 1)
                    } else {
                        None
                    };
                    if is_method && PANIC_METHODS.contains(&t.text.as_str()) {
                        body.panics.push(PanicSite {
                            what: t.text.clone(),
                            line: t.line,
                            col: t.col,
                        });
                    } else {
                        body.calls.push(Call {
                            path,
                            kind: if is_method {
                                CallKind::Method
                            } else {
                                CallKind::Path
                            },
                            line: t.line,
                            col: t.col,
                            arg_idents,
                            arg_count,
                            args_have_closure,
                            is_ok_discard,
                            receiver_call,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    body
}

/// Skip from an opening `<` at `toks[at]` to just past its matching `>`.
fn skip_angle(toks: &[&Token], at: usize) -> usize {
    let mut depth = 0i64;
    let mut k = at;
    while let Some(t) = toks.get(k) {
        match t.text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        k += 1;
        if depth <= 0 && t.kind == TokKind::Punct && matches!(t.text.as_str(), ">" | ">>") {
            break;
        }
    }
    k
}

/// Collect the `::`-joined path ending at the ident `toks[end]`.
fn collect_path_backwards(toks: &[&Token], end: usize) -> Vec<String> {
    let mut segs = vec![toks[end].text.clone()];
    let mut k = end;
    while k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].kind == TokKind::Ident {
        segs.push(toks[k - 2].text.clone());
        k -= 2;
    }
    segs.reverse();
    segs
}

/// Scan a call's argument list from the opening paren at `toks[open]`;
/// returns (identifier texts inside, top-level argument count, whether a
/// closure pipe appears, index of the closing paren).
fn scan_args(toks: &[&Token], open: usize) -> (Vec<String>, usize, bool, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut inner = 0i64;
    let mut commas = 0usize;
    let mut nonempty = false;
    let mut has_closure = false;
    let mut k = open;
    while let Some(t) = toks.get(k) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Punct && matches!(t.text.as_str(), "[" | "{") {
            inner += 1;
        } else if t.kind == TokKind::Punct && matches!(t.text.as_str(), "]" | "}") {
            inner -= 1;
        } else if t.is_punct(",") && depth == 1 && inner == 0 {
            commas += 1;
        } else if t.is_punct("|") || t.is_punct("||") {
            has_closure = true;
        } else if t.kind == TokKind::Ident {
            idents.push(t.text.clone());
        }
        if depth > 0 && !(t.is_punct("(") && depth == 1) {
            nonempty = true;
        }
        k += 1;
    }
    let arg_count = if nonempty { commas + 1 } else { 0 };
    (idents, arg_count, has_closure, k)
}

/// For a method call whose `.` sits at `toks[dot]`: if the receiver is
/// syntactically a call (`foo(x).m()`, `a::b(x).m()`), return that call's
/// path.
fn receiver_call_path(toks: &[&Token], dot: usize) -> Option<Vec<String>> {
    if dot == 0 || !toks[dot - 1].is_punct(")") {
        return None;
    }
    // Walk back over the balanced paren group.
    let mut depth = 0usize;
    let mut k = dot - 1;
    loop {
        if toks[k].is_punct(")") {
            depth += 1;
        } else if toks[k].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    if k == 0 || toks[k - 1].kind != TokKind::Ident {
        return None;
    }
    Some(collect_path_backwards(toks, k - 1))
}

/// Collect call paths inside one statement starting at `toks[from]`,
/// scanning to the terminating `;` at delimiter depth 0. Returns the call
/// paths and the index just past the `;`.
fn calls_in_statement(toks: &[&Token], from: usize) -> (Vec<Vec<String>>, usize) {
    let mut depth = 0i64;
    let mut k = from;
    let mut calls = Vec::new();
    while let Some(t) = toks.get(k) {
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokKind::Punct => depth -= 1,
            ";" if t.kind == TokKind::Punct && depth == 0 => {
                k += 1;
                break;
            }
            _ => {}
        }
        if t.kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            if k > 0 && toks[k - 1].is_punct(".") {
                calls.push(vec![t.text.clone()]);
            } else if !(k > 0 && toks[k - 1].is_ident("fn")) {
                calls.push(collect_path_backwards(toks, k));
            }
        }
        k += 1;
    }
    (calls, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn parses_items_fns_and_impls() {
        let src = "\
/// Docs.
///
/// # Panics
/// When x is odd.
pub fn f(x: u64, mut seed: u64) -> Result<u64, String> { g(x); Ok(x) }

struct S { a: u64 }

impl S {
    pub fn new() -> Self { S { a: 0 } }
    fn helper(&self) -> u64 { self.a }
}

impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write!(f, \"\") }
}

mod inner {
    pub fn h() {}
}
";
        let file = parse_src(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        let (items, fns) = count_items_and_fns(&file.items);
        assert_eq!(items, 6, "{:?}", file.items);
        assert_eq!(fns, 5);
        let Item::Fn(f) = &file.items[0] else {
            panic!("first item is a fn");
        };
        assert_eq!(f.name, "f");
        assert_eq!(f.vis, Visibility::Pub);
        assert!(f.returns_result);
        assert!(f.has_panics_doc);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].names, vec!["seed"]);
        let Item::Impl {
            self_ty,
            trait_name,
            fns,
            ..
        } = &file.items[2]
        else {
            panic!("third item is an impl");
        };
        assert_eq!(self_ty, "S");
        assert!(trait_name.is_none());
        assert_eq!(fns[0].name, "new");
        assert_eq!(fns[0].vis, Visibility::Pub);
        let Item::Impl {
            self_ty,
            trait_name,
            ..
        } = &file.items[3]
        else {
            panic!("fourth item is a trait impl");
        };
        assert_eq!(self_ty, "S");
        assert_eq!(trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn body_events_calls_panics_discards() {
        let src = "\
fn f(seed: u64) {
    let rng = SmallRng::seed_from_u64(seeds::derive(seed, 1, 0));
    let _ = fallible();
    store(rng).ok();
    opt.unwrap();
    panic!(\"boom\");
}
";
        let file = parse_src(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        let Item::Fn(f) = &file.items[0] else {
            panic!()
        };
        let body = f.body.as_ref().expect("has body");
        let names: Vec<String> = body.calls.iter().map(|c| c.path.join("::")).collect();
        assert!(
            names.contains(&"SmallRng::seed_from_u64".to_owned()),
            "{names:?}"
        );
        assert!(names.contains(&"seeds::derive".to_owned()));
        assert!(names.contains(&"fallible".to_owned()));
        assert!(names.contains(&"ok".to_owned()));
        let seed_call = body
            .calls
            .iter()
            .find(|c| c.path.last().is_some_and(|s| s == "seed_from_u64"))
            .expect("found");
        assert!(seed_call.arg_idents.iter().any(|s| s == "derive"));
        assert!(seed_call.arg_idents.iter().any(|s| s == "seed"));
        let ok_call = body.calls.iter().find(|c| c.path == ["ok"]).expect("ok");
        assert!(ok_call.is_ok_discard);
        assert_eq!(
            ok_call.receiver_call.as_deref(),
            Some(&["store".to_owned()][..])
        );
        assert_eq!(body.panics.len(), 2);
        assert_eq!(body.panics[0].what, "unwrap");
        assert_eq!(body.panics[1].what, "panic");
        assert_eq!(body.discards.len(), 1);
        assert_eq!(body.discards[0].calls, vec![vec!["fallible".to_owned()]]);
    }

    #[test]
    fn use_trees_flatten_with_renames() {
        let src = "use std::collections::{BTreeMap, BTreeSet as Set};\nuse crate::seeds::derive;\n";
        let file = parse_src(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        let mut all = Vec::new();
        for item in &file.items {
            if let Item::Use(imports) = item {
                for i in imports {
                    all.push((i.local.clone(), i.path.join("::")));
                }
            }
        }
        assert!(all.contains(&(
            "BTreeMap".to_owned(),
            "std::collections::BTreeMap".to_owned()
        )));
        assert!(all.contains(&("Set".to_owned(), "std::collections::BTreeSet".to_owned())));
        assert!(all.contains(&("derive".to_owned(), "crate::seeds::derive".to_owned())));
    }

    #[test]
    fn generics_where_clauses_and_fn_types_parse() {
        let src = "\
pub fn run<T, E, F>(items: Vec<(u64, F)>, f: F) -> Result<Vec<T>, E>
where
    F: Fn(u64) -> Result<T, E> + Send,
{
    helper::<T>(f)
}
fn takes_dyn(live: &dyn Fn(&u64) -> bool) -> bool { live(&1) }
";
        let file = parse_src(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        let (_, fns) = count_items_and_fns(&file.items);
        assert_eq!(fns, 2);
        let Item::Fn(f) = &file.items[0] else {
            panic!()
        };
        assert!(f.returns_result);
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let file = parse_src(src);
        assert!(file.errors.is_empty());
        let Item::Mod {
            cfg_test, items, ..
        } = &file.items[0]
        else {
            panic!()
        };
        assert!(cfg_test);
        assert_eq!(items.len(), 1);
    }
}
