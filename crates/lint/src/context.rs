//! File classification, `#[cfg(test)]` region detection, and suppression
//! markers.
//!
//! Rules fire or stay silent depending on *where* code lives: library code
//! carries the full invariant set, experiment binaries may abort on I/O
//! failure, and test code is exempt from most rules. Context is derived
//! from the workspace-relative path; *within* a file, `#[cfg(test)]`-gated
//! items form test regions found by brace tracking over the token stream.

use crate::lexer::{TokKind, Token};

/// Where a file sits in the workspace, which decides the active rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`crates/*/src`, root `src/`): full invariant set.
    Lib,
    /// Binary targets (`src/bin/*`, `src/main.rs`): may abort on I/O
    /// failure, so `panic-in-lib` does not apply.
    Bin,
    /// The `crates/bench` experiment harness (lib and bins): panic rules
    /// off; wall-clock reads still confined to the timing seam.
    Bench,
    /// `examples/`: user-facing demos, panic rules off.
    Example,
    /// `tests/` directories: exempt from most rules.
    Test,
}

/// Classification of one workspace file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Which rule regime applies.
    pub kind: FileKind,
    /// Crate name (`qn`, `stats`, ...) for crate-scoped rules; `None` for
    /// the root package.
    pub crate_name: Option<String>,
}

impl FileContext {
    /// Classify a workspace-relative path (`/`-separated).
    #[must_use]
    pub fn classify(rel_path: &str) -> FileContext {
        let path = rel_path.replace('\\', "/");
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_owned);
        let kind = if path.contains("/tests/") || path.starts_with("tests/") {
            FileKind::Test
        } else if path.contains("/examples/") || path.starts_with("examples/") {
            FileKind::Example
        } else if path.contains("/benches/") || crate_name.as_deref() == Some("bench") {
            FileKind::Bench
        } else if path.contains("/src/bin/") || path.ends_with("/src/main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        FileContext { kind, crate_name }
    }
}

/// A `start..=end` line range gated behind `#[cfg(test)]` or `#[test]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestRegion {
    /// First line of the gating attribute.
    pub start_line: u32,
    /// Last line of the gated item.
    pub end_line: u32,
}

/// Find all test-gated regions by scanning attributes and tracking braces.
///
/// An outer attribute whose tokens contain `cfg` together with `test`
/// (covering `#[cfg(test)]` and `#[cfg(all(test, ...))]`), or the bare
/// `#[test]` marker, gates the item that follows: the region runs from the
/// attribute to the matching `}` of the item's first brace (or to the `;`
/// of a braceless item).
#[must_use]
pub fn test_regions(tokens: &[Token]) -> Vec<TestRegion> {
    let toks: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let start_line = toks[i].line;
            // Collect the attribute's tokens up to the matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_cfg = false;
            let mut has_test = false;
            let mut len = 0usize;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if toks[j].is_ident("cfg") {
                        has_cfg = true;
                    }
                    if toks[j].is_ident("test") {
                        has_test = true;
                    }
                    len += 1;
                }
                j += 1;
            }
            let bare_test_marker = has_test && len == 1;
            if (has_cfg && has_test) || bare_test_marker {
                if let Some(end_line) = item_end_line(&toks, j + 1) {
                    regions.push(TestRegion {
                        start_line,
                        end_line,
                    });
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Line of the `;` or matching `}` that ends the item starting at `from`.
fn item_end_line(toks: &[&Token], from: usize) -> Option<u32> {
    let mut k = from;
    // Skip any further attributes between the cfg and the item.
    while k < toks.len() {
        if toks[k].is_punct("#") && toks.get(k + 1).is_some_and(|t| t.is_punct("[")) {
            let mut depth = 0usize;
            k += 1;
            while k < toks.len() {
                if toks[k].is_punct("[") {
                    depth += 1;
                } else if toks[k].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        } else {
            break;
        }
    }
    // Scan to the item's first `{` (brace-tracked to its match) or `;`.
    while k < toks.len() {
        if toks[k].is_punct(";") {
            return Some(toks[k].line);
        }
        if toks[k].is_punct("{") {
            let mut depth = 0usize;
            while k < toks.len() {
                if toks[k].is_punct("{") {
                    depth += 1;
                } else if toks[k].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some(toks[k].line);
                    }
                }
                k += 1;
            }
            return toks.last().map(|t| t.line);
        }
        k += 1;
    }
    toks.last().map(|t| t.line)
}

/// Is `line` inside any test region?
#[must_use]
pub fn in_test_region(regions: &[TestRegion], line: u32) -> bool {
    regions
        .iter()
        .any(|r| (r.start_line..=r.end_line).contains(&line))
}

/// A parsed `// burstcap-lint: allow(<rule>)` suppression marker.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Marker line.
    pub line: u32,
    /// Marker column.
    pub col: u32,
    /// Whole-file scope (`allow-file`) instead of line scope.
    pub file_scope: bool,
    /// Whether a non-empty justification follows the rule name.
    pub justified: bool,
}

/// Extract suppression markers from comment tokens.
///
/// Grammar: `burstcap-lint: allow(<rule>) — <justification>` (also accepts
/// `--` or `:` as the separator) anywhere inside a comment;
/// `allow-file(<rule>)` scopes the suppression to the whole file. A marker
/// with no justification text is reported by the `bare-allow` rule.
#[must_use]
pub fn allows(tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for tok in tokens.iter().filter(|t| t.kind == TokKind::Comment) {
        let text = &tok.text;
        let Some(at) = text.find("burstcap-lint:") else {
            continue;
        };
        let rest = text[at + "burstcap-lint:".len()..].trim_start();
        let (file_scope, rest) = match rest.strip_prefix("allow-file(") {
            Some(r) => (true, r),
            None => match rest.strip_prefix("allow(") {
                Some(r) => (false, r),
                None => continue,
            },
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_owned();
        // Skip documentation placeholders (`allow(<rule>)` in doc text).
        if rule.contains('<') || rule.contains('>') {
            continue;
        }
        let tail = rest[close + 1..].trim_start();
        let justified = ["—", "--", ":"].iter().any(|sep| {
            tail.strip_prefix(sep)
                .is_some_and(|j| !j.trim_start_matches(['-', '—', ' ']).trim().is_empty())
        });
        out.push(Allow {
            rule,
            line: tok.line,
            col: tok.col,
            file_scope,
            justified,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classify_paths() {
        let cases = [
            ("crates/qn/src/mva.rs", FileKind::Lib, Some("qn")),
            ("crates/qn/tests/scale.rs", FileKind::Test, Some("qn")),
            ("crates/bench/src/bin/b.rs", FileKind::Bench, Some("bench")),
            ("crates/bench/src/lib.rs", FileKind::Bench, Some("bench")),
            ("crates/lint/src/main.rs", FileKind::Bin, Some("lint")),
            ("examples/quickstart.rs", FileKind::Example, None),
            ("tests/smoke.rs", FileKind::Test, None),
            ("src/lib.rs", FileKind::Lib, None),
        ];
        for (path, kind, krate) in cases {
            let ctx = FileContext::classify(path);
            assert_eq!(ctx.kind, kind, "{path}");
            assert_eq!(ctx.crate_name.as_deref(), krate, "{path}");
        }
    }

    #[test]
    fn cfg_test_module_region_tracked_through_braces() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn a() { if x { y(); } }\n}\nfn tail() {}\n";
        let toks = lex(src);
        let regions = test_regions(&toks);
        assert_eq!(
            regions,
            vec![TestRegion {
                start_line: 2,
                end_line: 5
            }]
        );
        assert!(in_test_region(&regions, 4));
        assert!(!in_test_region(&regions, 1));
        assert!(!in_test_region(&regions, 6));
    }

    #[test]
    fn bare_test_attr_and_cfg_all_gate_items() {
        let src = "#[test]\nfn t() { body(); }\n#[cfg(all(test, feature = \"x\"))]\nfn u() { body(); }\n#[cfg(feature = \"x\")]\nfn not_test() {}\n";
        let regions = test_regions(&lex(src));
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].end_line, 2);
        assert_eq!(regions[1].end_line, 4);
        assert!(!in_test_region(&regions, 6));
    }

    #[test]
    fn braceless_item_region_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let regions = test_regions(&lex(src));
        assert_eq!(
            regions,
            vec![TestRegion {
                start_line: 1,
                end_line: 2
            }]
        );
    }

    #[test]
    fn allow_markers_parse_with_and_without_justification() {
        let src = "\
let a = x; // burstcap-lint: allow(float-eq) — exact sentinel comparison\n\
// burstcap-lint: allow(wallclock)\n\
// burstcap-lint: allow-file(panic-in-lib) -- experiment harness\n";
        let marks = allows(&lex(src));
        assert_eq!(marks.len(), 3);
        assert!(marks[0].justified && !marks[0].file_scope);
        assert_eq!(marks[0].rule, "float-eq");
        assert!(!marks[1].justified);
        assert!(marks[2].justified && marks[2].file_scope);
        assert_eq!(marks[2].rule, "panic-in-lib");
    }
}
