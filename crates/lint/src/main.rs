//! CLI for `burstcap-lint`.
//!
//! ```text
//! burstcap-lint check [ROOT]   lint the workspace (default: walk up from cwd)
//! burstcap-lint rules          print the rule table
//! ```
//!
//! `check` exits 0 on a clean tree and 1 when violations survive; CI runs
//! it as a blocking gate.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use burstcap_lint::{find_workspace_root, lint_workspace, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            println!("{:<18} {:<44} scope", "rule", "summary");
            for r in RULES {
                println!("{:<18} {:<44} {}", r.name, r.summary, r.scope);
            }
            ExitCode::SUCCESS
        }
        Some("check") => check(args.get(1).map(PathBuf::from)),
        _ => {
            eprintln!("usage: burstcap-lint check [ROOT] | burstcap-lint rules");
            ExitCode::from(2)
        }
    }
}

fn check(root_arg: Option<PathBuf>) -> ExitCode {
    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("burstcap-lint: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("burstcap-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match lint_workspace(&root) {
        Ok(report) => {
            for v in &report.violations {
                println!("{}:{}:{}: {}: {}", v.path, v.line, v.col, v.rule, v.message);
            }
            if report.violations.is_empty() {
                println!(
                    "burstcap-lint: {} files checked, workspace clean",
                    report.files_checked
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "burstcap-lint: {} violation(s) in {} files checked — suppress with `// burstcap-lint: allow(<rule>) — <why>`",
                    report.violations.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("burstcap-lint: {e}");
            ExitCode::from(2)
        }
    }
}
