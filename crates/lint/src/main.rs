//! CLI for `burstcap-lint`.
//!
//! ```text
//! burstcap-lint check [ROOT] [--format json]   lint the workspace
//! burstcap-lint report [ROOT] [OUT]            panic-reachability matrix JSON
//! burstcap-lint rules                          print the rule table
//! ```
//!
//! `check` exits 0 on a clean tree and 1 when violations survive; CI runs
//! it as a blocking gate. `report` writes the deterministic
//! panic-reachability matrix (to OUT, or stdout) that CI archives and
//! twice-run-diffs.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use burstcap_lint::{
    callgraph, find_workspace_root, lint_sources, model, read_workspace_sources, RULES,
};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            println!("{:<22} {:<44} scope", "rule", "summary");
            for r in RULES {
                println!("{:<22} {:<44} {}", r.name, r.summary, r.scope);
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let rest = &args[1..];
            let json = rest.iter().any(|a| a == "--format=json")
                || rest
                    .windows(2)
                    .any(|w| w[0] == "--format" && w[1] == "json");
            let root = rest
                .iter()
                .find(|a| !a.starts_with("--") && a.as_str() != "json")
                .map(PathBuf::from);
            check(root, json)
        }
        Some("report") => {
            let rest: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
            report(
                rest.first().map(PathBuf::from),
                rest.get(1).map(PathBuf::from),
            )
        }
        _ => {
            eprintln!(
                "usage: burstcap-lint check [ROOT] [--format json] | burstcap-lint report [ROOT] [OUT] | burstcap-lint rules"
            );
            ExitCode::from(2)
        }
    }
}

/// Resolve the root argument, falling back to the workspace above cwd.
fn resolve_root(root_arg: Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    if let Some(r) = root_arg {
        return Ok(r);
    }
    let cwd = match env::current_dir() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("burstcap-lint: cannot determine cwd: {e}");
            return Err(ExitCode::from(2));
        }
    };
    match find_workspace_root(&cwd) {
        Some(r) => Ok(r),
        None => {
            eprintln!("burstcap-lint: no workspace root above {}", cwd.display());
            Err(ExitCode::from(2))
        }
    }
}

fn check(root_arg: Option<PathBuf>, json: bool) -> ExitCode {
    let root = match resolve_root(root_arg) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match read_workspace_sources(&root) {
        Ok(sources) => {
            let report = lint_sources(&sources);
            if json {
                print!("{}", report.render_json());
                return if report.violations.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            for v in &report.violations {
                println!("{}:{}:{}: {}: {}", v.path, v.line, v.col, v.rule, v.message);
            }
            if report.violations.is_empty() {
                println!(
                    "burstcap-lint: {} files checked, workspace clean",
                    report.files_checked
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "burstcap-lint: {} violation(s) in {} files checked — suppress with `// burstcap-lint: allow(<rule>) — <why>`",
                    report.violations.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("burstcap-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn report(root_arg: Option<PathBuf>, out: Option<PathBuf>) -> ExitCode {
    let root = match resolve_root(root_arg) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match read_workspace_sources(&root) {
        Ok(sources) => {
            let ws = model::build(&sources);
            let graph = callgraph::build(&ws);
            let rendered = callgraph::render_report(&ws, &graph);
            match out {
                Some(path) => {
                    if let Err(e) = fs::write(&path, rendered) {
                        eprintln!("burstcap-lint: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                    println!("burstcap-lint: report written to {}", path.display());
                }
                None => print!("{rendered}"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("burstcap-lint: {e}");
            ExitCode::from(2)
        }
    }
}
