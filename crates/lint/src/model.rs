//! The workspace model: every non-test file parsed, every function given a
//! qualified identity, panic sites tied to their enclosing functions, and
//! suppression-justification status resolved.
//!
//! The model is the substrate the call graph ([`crate::callgraph`]) and the
//! semantic rules ([`crate::semrules`]) run on. Identity is path-derived:
//! `crates/qn/src/ctmc.rs` contributes functions qualified
//! `qn::ctmc::Ctmc::steady_state` (crate directory name, module path from
//! the file location plus inline `mod`s, `impl` subject type, name).
//! Extern-crate names (`burstcap_qn`, and `burstcap` for `crates/core`)
//! are normalized back to crate directory names during resolution.

use crate::context::{allows, test_regions, Allow, FileContext, FileKind, TestRegion};
use crate::lexer::{lex, Token};
use crate::parser::{self, Call, Discard, Item, ParsedFile, Visibility};

/// One analyzed workspace file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative `/`-separated path.
    pub rel_path: String,
    /// Path-derived context (lib/bin/bench/example/test).
    pub ctx: FileContext,
    /// Lexed tokens (comments included).
    pub tokens: Vec<Token>,
    /// `#[cfg(test)]` line regions.
    pub regions: Vec<TestRegion>,
    /// Suppression markers.
    pub marks: Vec<Allow>,
    /// Parse result.
    pub parsed: ParsedFile,
    /// Crate directory name (`qn`, `core`, ...; `repro` for the root
    /// package, `example` for `examples/`, `test` for root `tests/`).
    pub crate_dir: String,
    /// Module path derived from the file location (`["bin", "tool"]`).
    pub module: Vec<String>,
    /// Flattened `use` imports of the file (local name → path segments).
    pub imports: Vec<(String, Vec<String>)>,
}

/// A function in the workspace model.
#[derive(Debug)]
pub struct FnDef {
    /// Index of the owning file.
    pub file: usize,
    /// Crate directory name.
    pub crate_dir: String,
    /// Module path (file-derived plus inline `mod`s).
    pub module: Vec<String>,
    /// `impl`/`trait` subject type, when an associated fn.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// Display-qualified name (`qn::ctmc::Ctmc::steady_state`).
    pub qualified: String,
    /// Visibility.
    pub vis: Visibility,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// Whether the doc block carries a `# Panics` section.
    pub has_panics_doc: bool,
    /// Parameter names (flattened).
    pub param_names: Vec<String>,
    /// Number of parameters excluding a `self` receiver.
    pub arity: usize,
    /// Whether the fn has a `self` receiver (is a method).
    pub is_method: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn lives in `#[cfg(test)]` code or a test file.
    pub in_test: bool,
    /// Calls made by the body.
    pub calls: Vec<Call>,
    /// `let _ = ...;` statements in the body.
    pub discards: Vec<Discard>,
    /// Indices into [`WorkspaceModel::panic_sites`].
    pub panics: Vec<usize>,
}

/// One panic site, tied to its enclosing function.
#[derive(Debug)]
pub struct PanicDef {
    /// Owning function (index into [`WorkspaceModel::fns`]).
    pub owner: usize,
    /// Owning file path.
    pub path: String,
    /// The panicking name (`unwrap`, `expect`, `panic`, ...).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// Whether a justified `allow(panic-in-lib)` marker covers the site.
    pub justified: bool,
    /// Whether the site sits in a `FileKind::Lib` file outside test code
    /// (only those seed panic-reachability).
    pub in_lib: bool,
}

/// The whole-workspace model.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// All analyzed files (test files included, for totality; their fns
    /// are marked `in_test`).
    pub files: Vec<FileModel>,
    /// All functions.
    pub fns: Vec<FnDef>,
    /// All panic sites in non-test code.
    pub panic_sites: Vec<PanicDef>,
}

/// Derive (crate_dir, module path) from a workspace-relative file path.
fn crate_and_module(rel_path: &str) -> (String, Vec<String>) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    // crates/<c>/src/... and crates/<c>/tests/...
    if parts.len() >= 3 && parts[0] == "crates" {
        let crate_dir = parts[1].to_owned();
        let rest = &parts[2..];
        let module = match rest.first().copied() {
            Some("src") => module_from_src(&rest[1..]),
            Some(other) => {
                // tests/ benches/ — keep the directory as a module marker.
                let mut m = vec![other.to_owned()];
                m.extend(module_from_src(&rest[1..]));
                m
            }
            None => Vec::new(),
        };
        return (crate_dir, module);
    }
    // Root package: src/, examples/, tests/.
    match parts.first().copied() {
        Some("src") => ("repro".to_owned(), module_from_src(&parts[1..])),
        Some("examples") => ("example".to_owned(), module_from_src(&parts[1..])),
        Some("tests") => ("test".to_owned(), module_from_src(&parts[1..])),
        _ => ("unknown".to_owned(), module_from_src(&parts)),
    }
}

/// Module path from path components under `src/`.
fn module_from_src(parts: &[&str]) -> Vec<String> {
    let mut module = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        let last = i + 1 == parts.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "mod" && stem != "main" {
                module.push(stem.to_owned());
            }
        } else {
            module.push((*part).to_owned());
        }
    }
    module
}

/// Build the model from `(rel_path, source)` pairs. Files are processed in
/// the given order; callers sort for determinism.
#[must_use]
pub fn build(sources: &[(String, String)]) -> WorkspaceModel {
    let mut model = WorkspaceModel::default();
    for (rel_path, src) in sources {
        let ctx = FileContext::classify(rel_path);
        let tokens = lex(src);
        let regions = test_regions(&tokens);
        let marks = allows(&tokens);
        let parsed = parser::parse(&tokens);
        let (crate_dir, module) = crate_and_module(rel_path);
        let mut imports = Vec::new();
        collect_imports(&parsed.items, &mut imports);
        model.files.push(FileModel {
            rel_path: rel_path.clone(),
            ctx,
            tokens,
            regions,
            marks,
            parsed,
            crate_dir,
            module,
            imports,
        });
    }
    for file_idx in 0..model.files.len() {
        let items = std::mem::take(&mut model.files[file_idx].parsed.items);
        let base_module = model.files[file_idx].module.clone();
        collect_fns(&mut model, file_idx, &items, &base_module, None, false);
        model.files[file_idx].parsed.items = items;
    }
    model
}

fn collect_imports(items: &[Item], out: &mut Vec<(String, Vec<String>)>) {
    for item in items {
        match item {
            Item::Use(imports) => {
                for i in imports {
                    out.push((i.local.clone(), i.path.clone()));
                }
            }
            Item::Mod { items, .. } => collect_imports(items, out),
            _ => {}
        }
    }
}

fn collect_fns(
    model: &mut WorkspaceModel,
    file_idx: usize,
    items: &[Item],
    module: &[String],
    self_ty: Option<&str>,
    in_test: bool,
) {
    let file_is_test = model.files[file_idx].ctx.kind == FileKind::Test;
    for item in items {
        match item {
            Item::Fn(f) => {
                let fn_in_test = in_test
                    || file_is_test
                    || f.cfg_test
                    || in_region(&model.files[file_idx].regions, f.line);
                push_fn(model, file_idx, f, module, self_ty, fn_in_test);
            }
            Item::Impl {
                self_ty: ty, fns, ..
            } => {
                for f in fns {
                    let fn_in_test = in_test
                        || file_is_test
                        || f.cfg_test
                        || in_region(&model.files[file_idx].regions, f.line);
                    push_fn(model, file_idx, f, module, Some(ty.as_str()), fn_in_test);
                }
            }
            Item::Mod {
                name,
                items,
                cfg_test,
                ..
            } => {
                let mut sub = module.to_vec();
                sub.push(name.clone());
                collect_fns(model, file_idx, items, &sub, None, in_test || *cfg_test);
            }
            _ => {}
        }
    }
}

fn in_region(regions: &[TestRegion], line: u32) -> bool {
    regions
        .iter()
        .any(|r| (r.start_line..=r.end_line).contains(&line))
}

fn push_fn(
    model: &mut WorkspaceModel,
    file_idx: usize,
    f: &parser::FnItem,
    module: &[String],
    self_ty: Option<&str>,
    in_test: bool,
) {
    let file = &model.files[file_idx];
    let crate_dir = file.crate_dir.clone();
    let mut qualified = vec![crate_dir.clone()];
    qualified.extend(module.iter().cloned());
    if let Some(ty) = self_ty {
        qualified.push(ty.to_owned());
    }
    qualified.push(f.name.clone());
    let is_method = f
        .params
        .first()
        .is_some_and(|p| p.names.iter().any(|n| n == "self"));
    let arity = f.params.len() - usize::from(is_method);
    let fn_idx = model.fns.len();
    let mut panics = Vec::new();
    if !in_test {
        if let Some(body) = &f.body {
            let in_lib = file.ctx.kind == FileKind::Lib;
            for p in &body.panics {
                let justified = file.marks.iter().any(|a| {
                    a.justified
                        && a.rule == "panic-in-lib"
                        && (a.file_scope || p.line == a.line || p.line == a.line + 1)
                });
                panics.push(model.panic_sites.len());
                model.panic_sites.push(PanicDef {
                    owner: fn_idx,
                    path: file.rel_path.clone(),
                    what: p.what.clone(),
                    line: p.line,
                    justified,
                    in_lib,
                });
            }
        }
    }
    let (calls, discards) = match (&f.body, in_test) {
        (Some(body), false) => (body.calls.clone(), body.discards.clone()),
        _ => (Vec::new(), Vec::new()),
    };
    model.fns.push(FnDef {
        file: file_idx,
        crate_dir,
        module: module.to_vec(),
        self_ty: self_ty.map(str::to_owned),
        name: f.name.clone(),
        qualified: qualified.join("::"),
        vis: f.vis,
        returns_result: f.returns_result,
        has_panics_doc: f.has_panics_doc,
        param_names: f.params.iter().flat_map(|p| p.names.clone()).collect(),
        arity,
        is_method,
        line: f.line,
        in_test,
        calls,
        discards,
        panics,
    });
}

/// Normalize an extern-crate path segment to a crate directory name.
/// `burstcap` is the lib name of `crates/core`; everything else follows
/// the `burstcap_<dir>` convention.
#[must_use]
pub fn extern_to_crate_dir(segment: &str) -> Option<String> {
    if segment == "burstcap" {
        return Some("core".to_owned());
    }
    if segment == "burstcap_repro" {
        return Some("repro".to_owned());
    }
    segment.strip_prefix("burstcap_").map(str::to_owned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_and_module_derivation() {
        let cases: &[(&str, &str, &[&str])] = &[
            ("crates/qn/src/lib.rs", "qn", &[]),
            ("crates/qn/src/ctmc.rs", "qn", &["ctmc"]),
            ("crates/qn/src/bin/tool.rs", "qn", &["bin", "tool"]),
            ("crates/online/src/sources/mod.rs", "online", &["sources"]),
            (
                "crates/online/src/sources/replay.rs",
                "online",
                &["sources", "replay"],
            ),
            ("src/lib.rs", "repro", &[]),
            ("examples/quickstart.rs", "example", &["quickstart"]),
            ("crates/qn/tests/scale.rs", "qn", &["tests", "scale"]),
        ];
        for (path, crate_dir, module) in cases {
            let (c, m) = crate_and_module(path);
            assert_eq!(&c, crate_dir, "{path}");
            assert_eq!(m, *module, "{path}");
        }
    }

    #[test]
    fn build_ties_panics_to_fns_and_marks_justification() {
        let src = "\
pub struct S;
impl S {
    pub fn risky(&self) -> u64 {
        // burstcap-lint: allow(panic-in-lib) — invariant: always Some here
        self.inner.unwrap()
    }
    fn helper(&self) { other.expect(\"boom\"); }
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        let model = build(&[("crates/qn/src/s.rs".to_owned(), src.to_owned())]);
        assert_eq!(model.fns.len(), 3);
        let risky = model.fns.iter().find(|f| f.name == "risky").expect("risky");
        assert_eq!(risky.qualified, "qn::s::S::risky");
        assert_eq!(risky.vis, Visibility::Pub);
        assert!(risky.is_method);
        assert_eq!(risky.panics.len(), 1);
        assert!(model.panic_sites[risky.panics[0]].justified);
        let helper = model
            .fns
            .iter()
            .find(|f| f.name == "helper")
            .expect("helper");
        assert_eq!(helper.panics.len(), 1);
        assert!(!model.panic_sites[helper.panics[0]].justified);
        // The cfg(test) fn contributes no panic sites.
        assert_eq!(model.panic_sites.len(), 2);
        let t = model.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.in_test);
    }
}
