//! `burstcap-lint` — workspace-local determinism & numerical-safety linting.
//!
//! Every number this reproduction reports is only trustworthy because the
//! workspace holds a strict determinism-and-exactness contract. This crate
//! machine-checks that contract: a dependency-free Rust [`lexer`], a
//! brace-tracking `#[cfg(test)]`-region detector ([`context`]), and a rule
//! engine ([`rules`]) enforcing the project invariants as named,
//! individually-suppressible rules. `cargo run --release -p burstcap-lint
//! -- check` is a blocking CI gate; the workspace stays lint-clean.
//!
//! Suppressions are written in place, with a mandatory justification:
//!
//! ```text
//! let u = (x * d).min(1.0); // burstcap-lint: allow(silent-clamp) — <why>
//! ```
//!
//! A bare allow with no justification is itself a violation
//! (`bare-allow`). `allow-file(<rule>)` at any line scopes the suppression
//! to the whole file (used by the bench timing seam).
//!
//! See ARCHITECTURE.md, "Static analysis", for the rule table, the
//! clippy/burstcap-lint ownership partition, and how to add a rule.

pub mod context;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use context::{allows, test_regions, FileContext};
pub use rules::{Violation, RULES};

/// Directory names never descended into: external or generated code, and
/// the lint fixtures themselves (they contain deliberate violations).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "node_modules"];

/// Result of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files checked.
    pub files_checked: usize,
    /// All surviving (unsuppressed) violations, in path/line order.
    pub violations: Vec<Violation>,
}

/// Lint a single file's source, classified by its workspace-relative path.
///
/// Suppression semantics: a justified `allow(<rule>)` marker silences that
/// rule on its own line and on the line directly below it (covering both
/// trailing markers and markers placed above the offending line);
/// `allow-file` silences the rule for the whole file. Markers without a
/// justification silence nothing and are reported as `bare-allow`.
#[must_use]
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let ctx = FileContext::classify(rel_path);
    let tokens = lexer::lex(src);
    let regions = test_regions(&tokens);
    let marks = allows(&tokens);

    let mut violations = rules::check_all(rel_path, &ctx, &tokens, &regions);

    violations.retain(|v| {
        !marks.iter().any(|a| {
            a.justified
                && a.rule == v.rule
                && (a.file_scope || v.line == a.line || v.line == a.line + 1)
        })
    });

    for a in &marks {
        if !a.justified {
            violations.push(Violation {
                rule: "bare-allow",
                path: rel_path.to_owned(),
                line: a.line,
                col: a.col,
                message: format!(
                    "allow({}) without a justification; write `// burstcap-lint: allow({}) — <why>`",
                    a.rule, a.rule
                ),
            });
        } else if !RULES.iter().any(|r| r.name == a.rule) {
            violations.push(Violation {
                rule: "bare-allow",
                path: rel_path.to_owned(),
                line: a.line,
                col: a.col,
                message: format!("allow marker names unknown rule `{}`", a.rule),
            });
        }
    }

    violations.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    violations
}

/// Lint every `.rs` file under `root` (the workspace checkout), skipping
/// `SKIP_DIRS`. Files are visited in sorted order, so the report is
/// deterministic.
///
/// # Errors
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for file in files {
        let src = fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        report.files_checked += 1;
        report.violations.extend(lint_source(&rel, &src));
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_and_leading_markers_suppress_one_line() {
        let src = "\
use std::time::Instant;
fn f() {
    let a = Instant::now(); // burstcap-lint: allow(wallclock) — test of trailing marker
    // burstcap-lint: allow(wallclock) — test of leading marker
    let b = Instant::now();
    let c = Instant::now();
}
";
        let v = lint_source("crates/core/src/x.rs", src);
        let wall: Vec<_> = v.iter().filter(|v| v.rule == "wallclock").collect();
        assert_eq!(wall.len(), 1, "{wall:?}");
        assert_eq!(wall[0].line, 6);
    }

    #[test]
    fn bare_allow_is_a_violation_and_suppresses_nothing() {
        let src =
            "fn f() { let t = std::time::SystemTime::now(); } // burstcap-lint: allow(wallclock)\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == "wallclock"));
        assert!(v.iter().any(|v| v.rule == "bare-allow"));
    }

    #[test]
    fn unknown_rule_in_marker_is_reported() {
        let src = "// burstcap-lint: allow(no-such-rule) — misspelled\nfn f() {}\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "bare-allow");
        assert!(v[0].message.contains("unknown rule"));
    }

    #[test]
    fn allow_file_scopes_to_whole_file() {
        let src = "\
// burstcap-lint: allow-file(wallclock) — timing seam test double
fn a() { let t = std::time::Instant::now(); }
fn b() { let t = std::time::Instant::now(); }
";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }
}
