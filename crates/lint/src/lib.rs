//! `burstcap-lint` — workspace-local determinism & numerical-safety linting.
//!
//! Every number this reproduction reports is only trustworthy because the
//! workspace holds a strict determinism-and-exactness contract. This crate
//! machine-checks that contract at two depths: a dependency-free Rust
//! [`lexer`] feeding per-file lexical rules ([`rules`]), and — on top of
//! the same token stream — a lightweight recursive-descent [`parser`], a
//! workspace [`model`], and a [`callgraph`] feeding the interprocedural
//! semantic rules ([`semrules`]): panic reachability for the public API,
//! parallelism scoping, `Result` discipline, and seed provenance.
//! `cargo run --release -p burstcap-lint -- check` is a blocking CI gate;
//! the workspace stays lint-clean, and `burstcap-lint report` emits the
//! full panic-reachability matrix as deterministic JSON that CI archives
//! and twice-run-diffs.
//!
//! Suppressions are written in place, with a mandatory justification:
//!
//! ```text
//! let u = (x * d).min(1.0); // burstcap-lint: allow(silent-clamp) — <why>
//! ```
//!
//! A bare allow with no justification is itself a violation
//! (`bare-allow`). `allow-file(<rule>)` at any line scopes the suppression
//! to the whole file (used by the bench timing seam).
//!
//! See ARCHITECTURE.md, "Static analysis", for the rule table, the
//! clippy/burstcap-lint ownership partition, and how to add a rule.

pub mod callgraph;
pub mod context;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod rules;
pub mod semrules;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use context::Allow;
use lexer::{TokKind, Token};
pub use rules::{Violation, RULES};

/// Directory names never descended into: external or generated code, and
/// the lint fixtures themselves (they contain deliberate violations).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "node_modules"];

/// Result of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files checked.
    pub files_checked: usize,
    /// All surviving (unsuppressed) violations, in path/line order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Render the findings as deterministic one-field-per-line JSON (the
    /// same contract as `burstcap_bench::json`, re-implemented here
    /// because the linter is dependency-free). Violations are already
    /// sorted by (path, line, col, rule), so the output is independent of
    /// directory-walk order.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"burstcap-lint-findings-v1\",");
        let _ = writeln!(out, "  \"files_checked\": {},", self.files_checked);
        let _ = writeln!(out, "  \"violations\": {},", self.violations.len());
        out.push_str("  \"findings\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"rule\": \"{}\",", json_escape(v.rule));
            let _ = writeln!(out, "      \"path\": \"{}\",", json_escape(&v.path));
            let _ = writeln!(out, "      \"line\": {},", v.line);
            let _ = writeln!(out, "      \"col\": {},", v.col);
            let _ = writeln!(out, "      \"message\": \"{}\"", json_escape(&v.message));
            out.push_str("    }");
            out.push_str(if i + 1 == self.violations.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping for paths and messages.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Lint a set of `(workspace-relative path, source)` pairs as one
/// workspace: lexical rules per file, then the semantic rules over the
/// whole-set model and call graph.
///
/// Suppression semantics: a justified `allow(<rule>)` marker silences that
/// rule on its own line and on the line directly below it — where
/// "directly below" skips attribute lines, so a marker placed above
/// `#[derive(...)]` / `#[must_use]` reaches the item underneath. For a
/// statement spanning several lines the marker covers only the reported
/// line (put it on or directly above the line the finding names).
/// `allow-file` silences the rule for the whole file. Markers without a
/// justification silence nothing and are reported as `bare-allow`.
///
/// The returned violations are sorted by (path, line, col, rule), so the
/// report is independent of the order of `sources`.
#[must_use]
pub fn lint_sources(sources: &[(String, String)]) -> Report {
    let ws = model::build(sources);
    let graph = callgraph::build(&ws);

    let mut violations = Vec::new();
    for file in &ws.files {
        violations.extend(rules::check_all(
            &file.rel_path,
            &file.ctx,
            &file.tokens,
            &file.regions,
        ));
    }
    violations.extend(semrules::check_semantic(&ws, &graph));

    // Per-file suppression state: marks + attribute-line sets.
    let per_file: Vec<(&str, &[Allow], BTreeSet<u32>)> = ws
        .files
        .iter()
        .map(|f| {
            (
                f.rel_path.as_str(),
                f.marks.as_slice(),
                attribute_lines(&f.tokens),
            )
        })
        .collect();
    let file_state = |path: &str| per_file.iter().find(|(p, _, _)| *p == path);

    violations.retain(|v| {
        let Some((_, marks, attrs)) = file_state(&v.path) else {
            return true;
        };
        !marks.iter().any(|a| {
            a.justified
                && a.rule == v.rule
                && (a.file_scope || v.line == a.line || v.line == covered_line(attrs, a.line))
        })
    });

    for (path, marks, _) in &per_file {
        for a in *marks {
            if !a.justified {
                violations.push(Violation {
                    rule: "bare-allow",
                    path: (*path).to_owned(),
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "allow({}) without a justification; write `// burstcap-lint: allow({}) — <why>`",
                        a.rule, a.rule
                    ),
                });
            } else if !RULES.iter().any(|r| r.name == a.rule) {
                violations.push(Violation {
                    rule: "bare-allow",
                    path: (*path).to_owned(),
                    line: a.line,
                    col: a.col,
                    message: format!("allow marker names unknown rule `{}`", a.rule),
                });
            }
        }
    }

    violations
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Report {
        files_checked: sources.len(),
        violations,
    }
}

/// Lint a single file's source, classified by its workspace-relative path.
/// Semantic rules run over the one-file model (cross-file edges resolve
/// only within the given file).
#[must_use]
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    lint_sources(&[(rel_path.to_owned(), src.to_owned())]).violations
}

/// The line a marker at `line` covers below itself: the next line, with
/// attribute lines skipped (a marker above `#[must_use]` reaches the item
/// under the attribute).
fn covered_line(attr_lines: &BTreeSet<u32>, line: u32) -> u32 {
    let mut l = line + 1;
    while attr_lines.contains(&l) {
        l += 1;
    }
    l
}

/// Lines fully occupied by outer/inner attributes (`#[...]` spanning one
/// or more lines). A line where code follows the closing `]` is *not*
/// attribute-only (the marker must cover that code line itself).
fn attribute_lines(tokens: &[Token]) -> BTreeSet<u32> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut out = BTreeSet::new();
    let mut last_line = 0u32;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        let first_on_line = t.line != last_line;
        last_line = t.line;
        if first_on_line && t.is_punct("#") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_punct("!")) {
                j += 1;
            }
            if code.get(j).is_some_and(|n| n.is_punct("[")) {
                let mut depth = 0usize;
                while let Some(n) = code.get(j) {
                    if n.is_punct("[") {
                        depth += 1;
                    } else if n.is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end_line = code.get(j).map_or(t.line, |n| n.line);
                let trailing_code = code.get(j + 1).is_some_and(|n| n.line == end_line);
                for l in t.line..=end_line {
                    if !(trailing_code && l == end_line) {
                        out.insert(l);
                    }
                }
                last_line = end_line;
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Lint every `.rs` file under `root` (the workspace checkout), skipping
/// `SKIP_DIRS`. Files are read in sorted order and linted as one
/// workspace, so the report is deterministic.
///
/// # Errors
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    Ok(lint_sources(&read_workspace_sources(root)?))
}

/// Read every non-skipped `.rs` file under `root` into sorted
/// `(workspace-relative path, source)` pairs.
///
/// # Errors
/// Propagates filesystem errors (unreadable directories or files).
pub fn read_workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let src = fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, src));
    }
    Ok(sources)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_and_leading_markers_suppress_one_line() {
        let src = "\
use std::time::Instant;
fn f() {
    let a = Instant::now(); // burstcap-lint: allow(wallclock) — test of trailing marker
    // burstcap-lint: allow(wallclock) — test of leading marker
    let b = Instant::now();
    let c = Instant::now();
}
";
        let v = lint_source("crates/core/src/x.rs", src);
        let wall: Vec<_> = v.iter().filter(|v| v.rule == "wallclock").collect();
        assert_eq!(wall.len(), 1, "{wall:?}");
        assert_eq!(wall[0].line, 6);
    }

    #[test]
    fn marker_above_attributes_reaches_the_item() {
        let src = "\
use std::time::Instant;
// burstcap-lint: allow(wallclock) — marker above two attribute lines
#[allow(dead_code)]
#[must_use]
fn stamped() -> Instant { Instant::now() }
";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn attribute_line_detection_spans_multiline_attrs() {
        let toks =
            lexer::lex("#[cfg(\n    feature = \"x\"\n)]\nfn f() {}\n#[must_use] fn g() {}\n");
        let attrs = attribute_lines(&toks);
        assert!(attrs.contains(&1) && attrs.contains(&2) && attrs.contains(&3));
        // Line 5 has code after the attribute, so it is not attribute-only.
        assert!(!attrs.contains(&5));
    }

    #[test]
    fn bare_allow_is_a_violation_and_suppresses_nothing() {
        let src =
            "fn f() { let t = std::time::SystemTime::now(); } // burstcap-lint: allow(wallclock)\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == "wallclock"));
        assert!(v.iter().any(|v| v.rule == "bare-allow"));
    }

    #[test]
    fn unknown_rule_in_marker_is_reported() {
        let src = "// burstcap-lint: allow(no-such-rule) — misspelled\nfn f() {}\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "bare-allow");
        assert!(v[0].message.contains("unknown rule"));
    }

    #[test]
    fn allow_file_scopes_to_whole_file() {
        let src = "\
// burstcap-lint: allow-file(wallclock) — timing seam test double
fn a() { let t = std::time::Instant::now(); }
fn b() { let t = std::time::Instant::now(); }
";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn finding_order_is_independent_of_input_order() {
        let a = (
            "crates/core/src/a.rs".to_owned(),
            "fn f() { let t = std::time::SystemTime::now(); }\n".to_owned(),
        );
        let b = (
            "crates/core/src/b.rs".to_owned(),
            "fn g() { let t = std::time::SystemTime::now(); }\n".to_owned(),
        );
        let fwd = lint_sources(&[a.clone(), b.clone()]);
        let rev = lint_sources(&[b, a]);
        let key = |r: &Report| -> Vec<(String, u32, u32, &'static str)> {
            r.violations
                .iter()
                .map(|v| (v.path.clone(), v.line, v.col, v.rule))
                .collect()
        };
        assert_eq!(key(&fwd), key(&rev));
        assert_eq!(fwd.render_json(), rev.render_json());
    }

    #[test]
    fn json_rendering_is_one_field_per_line() {
        let report = lint_sources(&[(
            "crates/core/src/a.rs".to_owned(),
            "fn f() { let t = std::time::SystemTime::now(); }\n".to_owned(),
        )]);
        let json = report.render_json();
        assert!(json.contains("\"schema\": \"burstcap-lint-findings-v1\""));
        assert!(json.lines().any(|l| l.trim() == "\"rule\": \"wallclock\","));
        assert!(json.lines().any(|l| l.trim().starts_with("\"line\": ")));
        // Deterministic across renders.
        assert_eq!(json, report.render_json());
    }
}
