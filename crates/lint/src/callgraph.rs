//! Workspace call graph: intra-workspace call resolution, panic
//! reachability, and the deterministic `burstcap-lint report` rendering.
//!
//! Resolution is heuristic by design (no type inference):
//!
//! - **Path calls** (`seeds::derive(..)`, `Map2::poisson(..)`) resolve by
//!   suffix match against every function's qualified segment list
//!   (`crate_dir::module::…::[Type::]name`), after normalizing `crate`/
//!   `self`/`super`/`Self` prefixes and extern-crate names, and after
//!   expanding the file's `use` imports. Single-segment calls prefer the
//!   same module, then the same crate.
//! - **Method calls** (`.push(..)`) resolve by name to every workspace
//!   method with that name whose arity matches (any arity when the
//!   argument list contains a closure, whose commas defeat counting),
//!   restricted to *visible* crates: the caller's own crate plus every
//!   crate the calling file imports. Within that scope resolution still
//!   over-approximates — a `Vec::push` can pick up a same-crate `push` —
//!   which is the sound direction for panic reachability; the visibility
//!   restriction exists because an unrestricted name union welds every
//!   `push` method workspace-wide into one clique and reports plain
//!   accumulators as "reaching" the MAP fitter's panics.
//! - **Unresolved edges are recorded, never dropped**: every call that
//!   matches no workspace function lands in [`CallGraph::unresolved`] and
//!   is tallied (by callee name) in the report, so resolution rot is
//!   visible instead of silent.

use std::collections::BTreeMap;

use crate::model::{extern_to_crate_dir, FnDef, WorkspaceModel};
use crate::parser::CallKind;

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Calling function.
    pub caller: usize,
    /// Called function.
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: u32,
}

/// One unresolved call (no workspace candidate).
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Calling function.
    pub caller: usize,
    /// Call path as written.
    pub path: String,
    /// 1-based line.
    pub line: u32,
}

/// The call graph over [`WorkspaceModel::fns`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Resolved edges.
    pub edges: Vec<Edge>,
    /// Unresolved calls (std/external or genuinely unknown).
    pub unresolved: Vec<Unresolved>,
    /// Per-fn, per-call resolved callee lists, aligned with
    /// [`FnDef::calls`] (empty inner list = unresolved call).
    pub call_targets: Vec<Vec<Vec<usize>>>,
    /// Per-fn bitmask blocks of reachable panic sites (indexed as
    /// `model.panic_sites`; only `in_lib` sites are seeded).
    pub reach: Vec<Vec<u64>>,
    /// Number of mask blocks (`ceil(panic_sites / 64)`).
    pub blocks: usize,
}

impl CallGraph {
    /// Does `fn_idx` reach any lib panic site?
    #[must_use]
    pub fn reaches_panic(&self, fn_idx: usize) -> bool {
        self.reach[fn_idx].iter().any(|&b| b != 0)
    }

    /// Sorted site indices reachable from `fn_idx`.
    #[must_use]
    pub fn reachable_sites(&self, fn_idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (blk, &bits) in self.reach[fn_idx].iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(blk * 64 + bit);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// Build the call graph for a model.
#[must_use]
pub fn build(model: &WorkspaceModel) -> CallGraph {
    let resolver = Resolver::new(model);
    let mut graph = CallGraph::default();
    for (caller, f) in model.fns.iter().enumerate() {
        let mut targets = Vec::with_capacity(f.calls.len());
        for call in &f.calls {
            let candidates = resolver.resolve(model, f, call);
            if candidates.is_empty() {
                graph.unresolved.push(Unresolved {
                    caller,
                    path: call.path.join("::"),
                    line: call.line,
                });
            } else {
                for &callee in &candidates {
                    graph.edges.push(Edge {
                        caller,
                        callee,
                        line: call.line,
                    });
                }
            }
            targets.push(candidates);
        }
        graph.call_targets.push(targets);
    }
    // Panic reachability: seed each fn's mask with its own lib panic
    // sites, then propagate callee → caller to a fixpoint.
    let blocks = model.panic_sites.len().div_ceil(64).max(1);
    graph.blocks = blocks;
    graph.reach = vec![vec![0u64; blocks]; model.fns.len()];
    for (idx, site) in model.panic_sites.iter().enumerate() {
        if site.in_lib {
            graph.reach[site.owner][idx / 64] |= 1 << (idx % 64);
        }
    }
    loop {
        let mut changed = false;
        for e in &graph.edges {
            if e.caller == e.callee {
                continue;
            }
            // Split-borrow via index juggling: OR callee's mask into
            // caller's.
            let (a, b) = (e.caller.min(e.callee), e.caller.max(e.callee));
            let (lo, hi) = graph.reach.split_at_mut(b);
            let (caller_mask, callee_mask) = if e.caller < e.callee {
                (&mut lo[a], &hi[0])
            } else {
                (&mut hi[0], &lo[a])
            };
            for blk in 0..blocks {
                let merged = caller_mask[blk] | callee_mask[blk];
                if merged != caller_mask[blk] {
                    caller_mask[blk] = merged;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    graph
}

/// Symbol tables for call resolution.
pub(crate) struct Resolver {
    /// Free functions by name.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods (fns with a self type) by name.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// All fns by (last-two-segment) `Type::name` key.
    by_ty_and_name: BTreeMap<(String, String), Vec<usize>>,
    /// Per-file visible crate directories: the file's own crate plus every
    /// crate its `use` imports name. Method calls resolve only into
    /// visible crates.
    file_visible: Vec<std::collections::BTreeSet<String>>,
}

impl Resolver {
    pub(crate) fn new(model: &WorkspaceModel) -> Self {
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_ty_and_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (idx, f) in model.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            match &f.self_ty {
                Some(ty) => {
                    methods_by_name.entry(f.name.clone()).or_default().push(idx);
                    by_ty_and_name
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                }
                None => {
                    free_by_name.entry(f.name.clone()).or_default().push(idx);
                }
            }
        }
        let file_visible = model
            .files
            .iter()
            .map(|file| {
                let mut visible = std::collections::BTreeSet::new();
                visible.insert(file.crate_dir.clone());
                for (_, path) in &file.imports {
                    if let Some(dir) = path.first().and_then(|s| extern_to_crate_dir(s)) {
                        visible.insert(dir);
                    }
                }
                visible
            })
            .collect();
        Resolver {
            free_by_name,
            methods_by_name,
            by_ty_and_name,
            file_visible,
        }
    }

    /// Resolve a bare call path (from a discard statement or an `.ok()`
    /// receiver) where the path/method distinction and the arity are
    /// unknown: try path resolution first, then fall back to any-arity
    /// method resolution for single-segment names.
    pub(crate) fn resolve_loose(
        &self,
        model: &WorkspaceModel,
        caller: &FnDef,
        path: &[String],
    ) -> Vec<usize> {
        let synthetic = crate::parser::Call {
            path: path.to_vec(),
            kind: CallKind::Path,
            line: 0,
            col: 0,
            arg_idents: Vec::new(),
            arg_count: 0,
            args_have_closure: false,
            is_ok_discard: false,
            receiver_call: None,
        };
        let hits = self.resolve(model, caller, &synthetic);
        if !hits.is_empty() || path.len() != 1 {
            return hits;
        }
        let method = crate::parser::Call {
            kind: CallKind::Method,
            args_have_closure: true,
            ..synthetic
        };
        self.resolve(model, caller, &method)
    }

    /// Resolve one call from `caller` to candidate fn indices.
    pub(crate) fn resolve(
        &self,
        model: &WorkspaceModel,
        caller: &FnDef,
        call: &crate::parser::Call,
    ) -> Vec<usize> {
        if call.kind == CallKind::Method {
            return self.resolve_method(model, caller, call);
        }
        let mut path: Vec<String> = call.path.clone();
        // `Self::helper` → the enclosing impl type.
        if path.first().is_some_and(|s| s == "Self") {
            if let Some(ty) = &caller.self_ty {
                path[0] = ty.clone();
            }
        }
        // Normalize leading `crate` / `self` / `super` to crate-relative.
        while path
            .first()
            .is_some_and(|s| s == "crate" || s == "self" || s == "super")
        {
            path.remove(0);
        }
        if let Some(first) = path.first() {
            if let Some(dir) = extern_to_crate_dir(first) {
                path[0] = dir;
            }
        }
        if path.is_empty() {
            return Vec::new();
        }
        // Single segment: same module, then same crate, then import
        // expansion.
        if path.len() == 1 {
            let name = &path[0];
            if let Some(cands) = self.free_by_name.get(name) {
                let same_module: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        model.fns[i].crate_dir == caller.crate_dir
                            && model.fns[i].module == caller.module
                    })
                    .collect();
                if !same_module.is_empty() {
                    return same_module;
                }
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| model.fns[i].crate_dir == caller.crate_dir)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
            }
            // Imported free fn (`use burstcap_seeds::derive; derive(..)`).
            let file = &model.files[caller.file];
            if let Some((_, full)) = file.imports.iter().find(|(local, _)| local == name) {
                let mut expanded = full.clone();
                if let Some(first) = expanded.first() {
                    if let Some(dir) = extern_to_crate_dir(first) {
                        expanded[0] = dir;
                    }
                }
                while expanded
                    .first()
                    .is_some_and(|s| s == "crate" || s == "self" || s == "super")
                {
                    expanded.remove(0);
                }
                let hits = self.suffix_match(model, &expanded);
                if !hits.is_empty() {
                    return hits;
                }
            }
            return Vec::new();
        }
        // Multi-segment: try suffix match raw, then with the first segment
        // expanded through imports (`qn::mva::solve` vs `use burstcap_qn as
        // qn`).
        let hits = self.suffix_match(model, &path);
        if !hits.is_empty() {
            return hits;
        }
        let file = &model.files[caller.file];
        if let Some((_, full)) = file.imports.iter().find(|(local, _)| local == &path[0]) {
            let mut expanded = full.clone();
            expanded.extend(path[1..].iter().cloned());
            if let Some(first) = expanded.first() {
                if let Some(dir) = extern_to_crate_dir(first) {
                    expanded[0] = dir;
                }
            }
            while expanded
                .first()
                .is_some_and(|s| s == "crate" || s == "self" || s == "super")
            {
                expanded.remove(0);
            }
            let hits = self.suffix_match(model, &expanded);
            if !hits.is_empty() {
                return hits;
            }
        }
        Vec::new()
    }

    /// Match `path` against the tail of every fn's qualified segments,
    /// using the `Type::name` table as a fast path for two-segment calls.
    fn suffix_match(&self, model: &WorkspaceModel, path: &[String]) -> Vec<usize> {
        debug_assert!(!path.is_empty());
        let name = path.last().cloned().unwrap_or_default();
        let mut out = Vec::new();
        if path.len() >= 2 {
            let ty = &path[path.len() - 2];
            if let Some(cands) = self.by_ty_and_name.get(&(ty.clone(), name.clone())) {
                out.extend(
                    cands
                        .iter()
                        .copied()
                        .filter(|&i| qualified_ends_with(&model.fns[i], path)),
                );
                if !out.is_empty() {
                    return out;
                }
            }
        }
        for table in [&self.free_by_name, &self.methods_by_name] {
            if let Some(cands) = table.get(&name) {
                out.extend(
                    cands
                        .iter()
                        .copied()
                        .filter(|&i| qualified_ends_with(&model.fns[i], path)),
                );
            }
        }
        out
    }

    /// Method call: every visible-crate method with the name,
    /// arity-filtered.
    fn resolve_method(
        &self,
        model: &WorkspaceModel,
        caller: &FnDef,
        call: &crate::parser::Call,
    ) -> Vec<usize> {
        let Some(name) = call.path.last() else {
            return Vec::new();
        };
        let Some(cands) = self.methods_by_name.get(name) else {
            return Vec::new();
        };
        let visible = &self.file_visible[caller.file];
        cands
            .iter()
            .copied()
            .filter(|&i| {
                let f = &model.fns[i];
                f.is_method
                    && (call.args_have_closure || f.arity == call.arg_count)
                    && visible.contains(&f.crate_dir)
            })
            .collect()
    }
}

/// Does the fn's qualified segment list end with `path`?
fn qualified_ends_with(f: &FnDef, path: &[String]) -> bool {
    let mut segs: Vec<&str> = vec![f.crate_dir.as_str()];
    segs.extend(f.module.iter().map(String::as_str));
    if let Some(ty) = &f.self_ty {
        segs.push(ty.as_str());
    }
    segs.push(f.name.as_str());
    if path.len() > segs.len() {
        return false;
    }
    segs[segs.len() - path.len()..]
        .iter()
        .zip(path.iter())
        .all(|(a, b)| *a == b)
}

/// Render the deterministic panic-reachability report: entry points are
/// the `pub` functions of `FileKind::Lib` files outside test code, sorted
/// by qualified name; every field sits on its own line (the same contract
/// as `burstcap_bench::json`, so CI can twice-run-diff the file byte for
/// byte).
#[must_use]
pub fn render_report(model: &WorkspaceModel, graph: &CallGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"burstcap-lint-report-v1\",");
    let _ = writeln!(out, "  \"files\": {},", model.files.len());
    let n_fns = model.fns.iter().filter(|f| !f.in_test).count();
    let _ = writeln!(out, "  \"functions\": {n_fns},");
    let _ = writeln!(out, "  \"panic_sites\": {},", model.panic_sites.len());
    let justified = model.panic_sites.iter().filter(|p| p.justified).count();
    let _ = writeln!(out, "  \"justified_panic_sites\": {justified},");
    let _ = writeln!(out, "  \"resolved_edges\": {},", graph.edges.len());
    let _ = writeln!(out, "  \"unresolved_edges\": {},", graph.unresolved.len());
    // Unresolved tally by callee path (std/external calls dominate; the
    // tally makes resolution rot visible across report diffs).
    let mut tally: BTreeMap<&str, usize> = BTreeMap::new();
    for u in &graph.unresolved {
        *tally.entry(u.path.as_str()).or_default() += 1;
    }
    out.push_str("  \"unresolved_by_callee\": {\n");
    let total = tally.len();
    for (i, (path, count)) in tally.iter().enumerate() {
        let comma = if i + 1 == total { "" } else { "," };
        let _ = writeln!(out, "    \"{path}\": {count}{comma}");
    }
    out.push_str("  },\n");
    // Panic sites, path/line sorted.
    let mut sites: Vec<usize> = (0..model.panic_sites.len()).collect();
    sites.sort_by(|&a, &b| {
        let (pa, pb) = (&model.panic_sites[a], &model.panic_sites[b]);
        (&pa.path, pa.line).cmp(&(&pb.path, pb.line))
    });
    out.push_str("  \"sites\": [\n");
    for (i, &s) in sites.iter().enumerate() {
        let site = &model.panic_sites[s];
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"path\": \"{}\",", site.path);
        let _ = writeln!(out, "      \"line\": {},", site.line);
        let _ = writeln!(out, "      \"what\": \"{}\",", site.what);
        let _ = writeln!(out, "      \"in_lib\": {},", site.in_lib);
        let _ = writeln!(out, "      \"justified\": {}", site.justified);
        out.push_str("    }");
        out.push_str(if i + 1 == sites.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    // The reachability matrix over pub lib entry points.
    let mut entries: Vec<usize> = (0..model.fns.len())
        .filter(|&i| {
            let f = &model.fns[i];
            !f.in_test
                && f.vis == crate::parser::Visibility::Pub
                && model.files[f.file].ctx.kind == crate::context::FileKind::Lib
        })
        .collect();
    entries.sort_by(|&a, &b| {
        (&model.fns[a].qualified, model.fns[a].line)
            .cmp(&(&model.fns[b].qualified, model.fns[b].line))
    });
    out.push_str("  \"entry_points\": [\n");
    for (i, &e) in entries.iter().enumerate() {
        let f = &model.fns[e];
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"fn\": \"{}\",", f.qualified);
        let _ = writeln!(out, "      \"file\": \"{}\",", model.files[f.file].rel_path);
        let _ = writeln!(out, "      \"line\": {},", f.line);
        let _ = writeln!(out, "      \"panics_documented\": {},", f.has_panics_doc);
        let reach = graph.reachable_sites(e);
        let _ = writeln!(out, "      \"reachable_panic_sites\": {},", reach.len());
        out.push_str("      \"sites\": [\n");
        // Site references sorted by path/line for stable output.
        let mut refs: Vec<String> = reach
            .iter()
            .map(|&s| {
                let site = &model.panic_sites[s];
                format!("{}:{}", site.path, site.line)
            })
            .collect();
        refs.sort();
        for (k, r) in refs.iter().enumerate() {
            let comma = if k + 1 == refs.len() { "" } else { "," };
            let _ = writeln!(out, "        \"{r}\"{comma}");
        }
        out.push_str("      ]\n");
        out.push_str("    }");
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;

    fn two_file_model() -> WorkspaceModel {
        let a = "\
pub fn entry(x: u64) -> u64 { helper(x) }
fn helper(x: u64) -> u64 {
    // burstcap-lint: allow(panic-in-lib) — test invariant
    deep::risky(x).unwrap()
}
";
        let b = "\
pub fn risky(x: u64) -> Result<u64, String> {
    if x == 0 { panic!(\"zero\"); }
    Ok(x)
}
pub fn safe(x: u64) -> u64 { x + 1 }
";
        model::build(&[
            ("crates/qn/src/entry.rs".to_owned(), a.to_owned()),
            ("crates/qn/src/deep.rs".to_owned(), b.to_owned()),
        ])
    }

    #[test]
    fn resolution_and_reachability() {
        let m = two_file_model();
        let g = build(&m);
        let idx = |name: &str| {
            m.fns
                .iter()
                .position(|f| f.name == name)
                .unwrap_or_else(|| panic!("fn {name}"))
        };
        // entry → helper → deep::risky; safe reaches nothing.
        assert!(g.reaches_panic(idx("entry")));
        assert!(g.reaches_panic(idx("helper")));
        assert!(g.reaches_panic(idx("risky")));
        assert!(!g.reaches_panic(idx("safe")));
        // helper's own unwrap + risky's panic! both reach entry.
        assert_eq!(g.reachable_sites(idx("entry")).len(), 2);
        // Unresolved calls recorded (Ok(..) has no workspace target).
        assert!(g.unresolved.iter().any(|u| u.path == "Ok"));
    }

    #[test]
    fn method_resolution_is_arity_filtered() {
        let src_a = "\
pub struct Acc;
impl Acc {
    pub fn push(&mut self, v: f64) { self.store(v).unwrap() }
    fn store(&mut self, v: f64) -> Result<(), String> { Err(String::new()) }
}
";
        let src_b = "\
use burstcap_stats::acc::Acc;
pub fn run(acc: &mut Acc) {
    acc.push(1.0);
}
pub fn other(xs: &mut Vec<(f64, f64)>) {
    xs.push((1.0, 2.0));
}
";
        let m = model::build(&[
            ("crates/stats/src/acc.rs".to_owned(), src_a.to_owned()),
            ("crates/online/src/run.rs".to_owned(), src_b.to_owned()),
        ]);
        let g = build(&m);
        let idx = |name: &str| m.fns.iter().position(|f| f.name == name).expect("fn");
        // run → Acc::push (arity 1) → store's unwrap.
        assert!(g.reaches_panic(idx("run")));
        // `other` pushes a tuple — still arity 1, so the over-approximation
        // links it too (sound direction, within the visible-crate scope
        // established by the `use burstcap_stats` import).
        assert!(g.reaches_panic(idx("other")));
    }

    #[test]
    fn report_is_deterministic_and_one_field_per_line() {
        let m = two_file_model();
        let g = build(&m);
        let r1 = render_report(&m, &g);
        let r2 = render_report(&m, &g);
        assert_eq!(r1, r2);
        assert!(r1.contains("\"schema\": \"burstcap-lint-report-v1\""));
        assert!(r1
            .lines()
            .any(|l| l.trim() == "\"fn\": \"qn::deep::risky\","));
        // Every scalar field owns its line.
        assert!(r1
            .lines()
            .any(|l| l.trim().starts_with("\"reachable_panic_sites\": ")));
    }
}
