//! Confidence intervals for replicated experiments.
//!
//! The multi-replication harness (`burstcap::experiment`) turns R
//! independent replications of a scenario into interval estimates instead
//! of point estimates. This module provides the pieces:
//!
//! * [`student_t_quantile`] — the Student-t inverse CDF, computed by
//!   inverting the regularized incomplete beta function (no lookup tables,
//!   no external crates);
//! * [`mean_ci`] — a two-sided Student-t confidence interval for the mean
//!   of i.i.d. replication outputs;
//! * [`RelativePrecision`] — the classical sequential stopping rule: stop
//!   adding replications once the CI half-width is below a fraction
//!   `gamma` of the point estimate.
//!
//! Replication outputs are steady-state estimates of *independent* runs
//! (disjoint RNG streams, see `burstcap_sim::seeds`), so the i.i.d.
//! assumption behind the t interval holds by construction — unlike batch
//! means within a single run, where autocorrelation (severe under bursty
//! service, cf. the paper's slow-mixing MAP models) biases the variance
//! estimate.

use serde::{Deserialize, Serialize};

use crate::descriptive::{mean, sample_variance};
use crate::StatsError;

/// A two-sided confidence interval `mean ± half_width`.
///
/// # Example
/// ```
/// let ci = burstcap_stats::ci::mean_ci(&[9.8, 10.1, 10.0, 9.9, 10.2], 0.95)?;
/// assert!(ci.contains(10.0));
/// assert!(ci.half_width > 0.0);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean across replications).
    pub mean: f64,
    /// Half-width of the interval at the requested confidence level.
    pub half_width: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
    /// Number of replications the interval is based on.
    pub count: usize,
}

impl ConfidenceInterval {
    /// Lower endpoint `mean - half_width`.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint `mean + half_width`.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies inside the interval (endpoints included).
    pub fn contains(&self, x: f64) -> bool {
        (self.lower()..=self.upper()).contains(&x)
    }

    /// Half-width relative to the point estimate, `None` when the mean is
    /// zero (relative precision undefined).
    pub fn relative_half_width(&self) -> Option<f64> {
        (self.mean != 0.0).then(|| self.half_width / self.mean.abs())
    }
}

/// Two-sided Student-t confidence interval for the mean of `samples`.
///
/// Uses the unbiased sample variance and the `(1 + level) / 2` quantile of
/// the t distribution with `n - 1` degrees of freedom.
///
/// # Errors
/// Rejects `level` outside `(0, 1)` and fewer than two samples (the
/// variance — and hence the interval — is undefined for a single
/// replication; this is the same degeneracy [`crate::descriptive::RunningStats::variance`]
/// reports as `None`).
pub fn mean_ci(samples: &[f64], level: f64) -> Result<ConfidenceInterval, StatsError> {
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "level",
            reason: format!("confidence level must lie in (0, 1), got {level}"),
        });
    }
    let n = samples.len();
    let m = mean(samples)?;
    let var = sample_variance(samples)?;
    let t = student_t_quantile((n - 1) as f64, 0.5 * (1.0 + level))?;
    Ok(ConfidenceInterval {
        mean: m,
        half_width: t * (var / n as f64).sqrt(),
        level,
        count: n,
    })
}

/// The relative-precision sequential stopping rule: replications are added
/// until the CI half-width drops below `gamma * |mean|`.
///
/// # Example
/// ```
/// use burstcap_stats::ci::{mean_ci, RelativePrecision};
///
/// let rule = RelativePrecision::new(0.05)?;
/// let tight = mean_ci(&[10.0, 10.01, 9.99, 10.0, 10.02, 9.98], 0.95)?;
/// assert!(rule.satisfied_by(&tight));
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelativePrecision {
    gamma: f64,
}

impl RelativePrecision {
    /// Create a rule with target relative half-width `gamma` (e.g. `0.05`
    /// for ±5%).
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `gamma`.
    pub fn new(gamma: f64) -> Result<Self, StatsError> {
        if gamma <= 0.0 || !gamma.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "gamma",
                reason: format!("target relative precision must be positive, got {gamma}"),
            });
        }
        Ok(RelativePrecision { gamma })
    }

    /// The configured target relative half-width.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Whether the interval already meets the target. A zero-mean interval
    /// never satisfies a relative target.
    pub fn satisfied_by(&self, ci: &ConfidenceInterval) -> bool {
        ci.relative_half_width().is_some_and(|r| r <= self.gamma)
    }
}

/// Quantile (inverse CDF) of the Student-t distribution with `df` degrees
/// of freedom.
///
/// Computed by bisecting the CDF, which is expressed through the
/// regularized incomplete beta function; accuracy is limited only by f64
/// bisection (~1e-12 relative), far beyond what replication counts
/// warrant.
///
/// # Errors
/// Rejects non-positive `df` and `p` outside `(0, 1)`.
///
/// # Example
/// ```
/// // t_{0.975, inf} -> 1.96; already close at 30 degrees of freedom.
/// let t = burstcap_stats::ci::student_t_quantile(30.0, 0.975)?;
/// assert!((t - 2.042).abs() < 1e-3);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
pub fn student_t_quantile(df: f64, p: f64) -> Result<f64, StatsError> {
    if df <= 0.0 || !df.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "df",
            reason: format!("degrees of freedom must be positive, got {df}"),
        });
    }
    if !(0.0 < p && p < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            reason: format!("probability must lie in (0, 1), got {p}"),
        });
    }
    // burstcap-lint: allow(float-eq) — exact sentinel: the symmetry pivot of the quantile, short-circuiting bisection
    if p == 0.5 {
        return Ok(0.0);
    }
    // Symmetry: solve for the upper tail and mirror.
    let target = p.max(1.0 - p);
    // CDF(t) = 1 - I_x(df/2, 1/2) / 2 with x = df / (df + t^2), t >= 0.
    let cdf = |t: f64| 1.0 - 0.5 * reg_inc_beta(df / (df + t * t), 0.5 * df, 0.5);
    // Bracket the quantile: expand the upper bound until the CDF crosses.
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    while cdf(hi) < target {
        hi *= 2.0;
        if hi > 1e300 {
            break; // p astronomically close to 1; return the bound.
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
    }
    let t = 0.5 * (lo + hi);
    Ok(if p < 0.5 { -t } else { t })
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    // Coefficients from the standard Lanczos(7, 9) tabulation.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its valid domain.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued fraction (Numerical Recipes `betacf` construction).
fn reg_inc_beta(x: f64, a: f64, b: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&x));
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // The continued fraction converges fastest for x < (a + 1)/(a + b + 2);
    // use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(x, a, b) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(1.0 - x, b, a) / b
    }
}

fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-15;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!.
        for (n, fact) in [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (7.0, 720.0),
        ] {
            assert!((ln_gamma(n) - f64::ln(fact)).abs() < 1e-10, "ln_gamma({n})");
        }
        // Gamma(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_symmetry_and_endpoints() {
        assert_eq!(reg_inc_beta(0.0, 2.0, 3.0), 0.0);
        assert_eq!(reg_inc_beta(1.0, 2.0, 3.0), 1.0);
        for x in [0.1, 0.37, 0.5, 0.82] {
            let lhs = reg_inc_beta(x, 1.7, 2.9);
            let rhs = 1.0 - reg_inc_beta(1.0 - x, 2.9, 1.7);
            assert!((lhs - rhs).abs() < 1e-12, "symmetry at x={x}");
        }
        // I_x(1, 1) is the uniform CDF.
        assert!((reg_inc_beta(0.3, 1.0, 1.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn t_quantile_matches_tables() {
        // Classical two-sided 95% critical values t_{0.975, df}.
        for (df, expected) in [
            (1.0, 12.706),
            (2.0, 4.303),
            (5.0, 2.571),
            (10.0, 2.228),
            (30.0, 2.042),
            (120.0, 1.980),
        ] {
            let t = student_t_quantile(df, 0.975).unwrap();
            assert!(
                (t - expected).abs() < 2e-3,
                "df={df}: got {t}, expected {expected}"
            );
        }
        // 99% one-sided at 5 df.
        let t = student_t_quantile(5.0, 0.99).unwrap();
        assert!((t - 3.365).abs() < 2e-3, "got {t}");
    }

    #[test]
    fn t_quantile_symmetry_and_median() {
        assert_eq!(student_t_quantile(7.0, 0.5).unwrap(), 0.0);
        let hi = student_t_quantile(7.0, 0.9).unwrap();
        let lo = student_t_quantile(7.0, 0.1).unwrap();
        assert!((hi + lo).abs() < 1e-9, "quantiles must mirror around 0");
    }

    #[test]
    fn t_quantile_rejects_bad_parameters() {
        assert!(student_t_quantile(0.0, 0.9).is_err());
        assert!(student_t_quantile(5.0, 0.0).is_err());
        assert!(student_t_quantile(5.0, 1.0).is_err());
    }

    #[test]
    fn mean_ci_matches_hand_computation() {
        // Samples {1, 2, 3}: mean 2, s^2 = 1, half-width = t_{0.975,2}/sqrt(3).
        let ci = mean_ci(&[1.0, 2.0, 3.0], 0.95).unwrap();
        assert!((ci.mean - 2.0).abs() < 1e-12);
        let expected = 4.303 / 3.0_f64.sqrt();
        assert!((ci.half_width - expected).abs() < 2e-3, "{}", ci.half_width);
        assert_eq!(ci.count, 3);
        assert!(ci.contains(2.0));
        assert!(!ci.contains(100.0));
    }

    #[test]
    fn mean_ci_narrows_with_replications() {
        let wide = mean_ci(&[9.0, 11.0, 10.0], 0.95).unwrap();
        let narrow = mean_ci(&[9.0, 11.0, 10.0, 9.5, 10.5, 10.0, 9.8, 10.2], 0.95).unwrap();
        assert!(narrow.half_width < wide.half_width);
    }

    #[test]
    fn mean_ci_rejects_degenerate_inputs() {
        assert!(mean_ci(&[1.0], 0.95).is_err(), "one replication has no CI");
        assert!(mean_ci(&[], 0.95).is_err());
        assert!(mean_ci(&[1.0, 2.0], 0.0).is_err());
        assert!(mean_ci(&[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn relative_precision_rule() {
        let rule = RelativePrecision::new(0.1).unwrap();
        let tight = ConfidenceInterval {
            mean: 100.0,
            half_width: 5.0,
            level: 0.95,
            count: 10,
        };
        let loose = ConfidenceInterval {
            mean: 100.0,
            half_width: 30.0,
            level: 0.95,
            count: 3,
        };
        let zero = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            level: 0.95,
            count: 3,
        };
        assert!(rule.satisfied_by(&tight));
        assert!(!rule.satisfied_by(&loose));
        assert!(!rule.satisfied_by(&zero), "zero mean never satisfies");
        assert!(RelativePrecision::new(0.0).is_err());
    }

    #[test]
    fn coverage_is_roughly_nominal() {
        // Repeated t intervals from a known-mean population should cover
        // the true mean at about the nominal rate. Deterministic LCG noise
        // keeps the test reproducible without rand.
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut covered = 0;
        let trials = 400;
        for _ in 0..trials {
            let sample: Vec<f64> = (0..8).map(|_| uniform() + uniform() + uniform()).collect();
            let ci = mean_ci(&sample, 0.95).unwrap();
            if ci.contains(1.5) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(
            (0.88..=0.99).contains(&rate),
            "coverage {rate} far from nominal 0.95"
        );
    }
}
