//! Bottleneck-switch detection from paired utilization time series.
//!
//! Section 3.2 of the paper identifies the *bottleneck switch* symptom: the
//! database server's utilization periodically climbs well above the front
//! server's even though their long-run averages are close. This module turns
//! that visual diagnosis (the paper's Figure 5) into a quantitative detector
//! that the testbed experiments and examples reuse.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// Which server dominated a monitoring window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dominant {
    /// The first series (by convention the front/application server).
    First,
    /// The second series (by convention the database server).
    Second,
    /// Utilizations within the margin of each other: no clear bottleneck.
    Neither,
}

/// Summary of bottleneck behaviour over a monitoring interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// Mean utilization of the first (front) series.
    pub mean_first: f64,
    /// Mean utilization of the second (database) series.
    pub mean_second: f64,
    /// Fraction of windows in which the first series dominated by the margin.
    pub fraction_first: f64,
    /// Fraction of windows in which the second series dominated by the margin.
    pub fraction_second: f64,
    /// Fraction of windows with no dominant server.
    pub fraction_neither: f64,
    /// Number of times the dominant server flipped between `First` and
    /// `Second` (ignoring `Neither` interludes).
    pub switches: usize,
    /// Per-window dominance labels (same length as the inputs).
    pub timeline: Vec<Dominant>,
}

impl BottleneckReport {
    /// Heuristic verdict: does this interval exhibit a bottleneck switch?
    ///
    /// True when each server dominates at least `min_share` of the windows
    /// and at least one flip occurred — i.e. the bottleneck genuinely
    /// alternates rather than residing at one tier with occasional noise.
    pub fn has_switch(&self, min_share: f64) -> bool {
        self.fraction_first >= min_share && self.fraction_second >= min_share && self.switches > 0
    }
}

/// Detector configuration.
///
/// `margin` is the absolute utilization gap needed to call a server dominant
/// in a window (defaults to 0.1, i.e. ten percentage points, which comfortably
/// exceeds `sar` sampling noise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottleneckDetector {
    margin: f64,
}

impl Default for BottleneckDetector {
    fn default() -> Self {
        BottleneckDetector { margin: 0.1 }
    }
}

impl BottleneckDetector {
    /// Create a detector with the default margin (0.1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the dominance margin (absolute utilization difference).
    pub fn margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// Analyze paired utilization series (same sampling grid).
    ///
    /// # Errors
    /// Rejects mismatched lengths, empty input, invalid utilizations, and a
    /// non-positive margin.
    pub fn analyze(&self, first: &[f64], second: &[f64]) -> Result<BottleneckReport, StatsError> {
        if first.len() != second.len() {
            return Err(StatsError::LengthMismatch {
                left: first.len(),
                right: second.len(),
            });
        }
        if first.is_empty() {
            return Err(StatsError::TraceTooShort { got: 0, needed: 1 });
        }
        if self.margin <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "margin",
                reason: format!("must be positive, got {}", self.margin),
            });
        }
        for series in [first, second] {
            if let Some(bad) = series
                .iter()
                .find(|u| !(0.0..=1.0).contains(*u) || u.is_nan())
            {
                return Err(StatsError::InvalidParameter {
                    name: "utilization",
                    reason: format!("samples must lie in [0, 1], found {bad}"),
                });
            }
        }

        let n = first.len() as f64;
        let timeline: Vec<Dominant> = first
            .iter()
            .zip(second)
            .map(|(&a, &b)| {
                if a - b > self.margin {
                    Dominant::First
                } else if b - a > self.margin {
                    Dominant::Second
                } else {
                    Dominant::Neither
                }
            })
            .collect();

        let count = |d: Dominant| timeline.iter().filter(|&&x| x == d).count() as f64 / n;

        // Count flips of the dominant server, skipping Neither windows.
        let mut switches = 0;
        let mut last: Option<Dominant> = None;
        for &d in &timeline {
            if d == Dominant::Neither {
                continue;
            }
            if let Some(prev) = last {
                if prev != d {
                    switches += 1;
                }
            }
            last = Some(d);
        }

        Ok(BottleneckReport {
            mean_first: first.iter().sum::<f64>() / n,
            mean_second: second.iter().sum::<f64>() / n,
            fraction_first: count(Dominant::First),
            fraction_second: count(Dominant::Second),
            fraction_neither: count(Dominant::Neither),
            switches,
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_front_bottleneck_has_no_switch() {
        let fs = vec![0.95; 100];
        let db = vec![0.3; 100];
        let r = BottleneckDetector::new().analyze(&fs, &db).unwrap();
        assert_eq!(r.switches, 0);
        assert!((r.fraction_first - 1.0).abs() < 1e-12);
        assert!(!r.has_switch(0.2));
    }

    #[test]
    fn alternating_bottleneck_is_detected() {
        // 20-window regimes alternating between FS-bound and DB-bound.
        let mut fs = Vec::new();
        let mut db = Vec::new();
        for block in 0..10 {
            for _ in 0..20 {
                if block % 2 == 0 {
                    fs.push(0.9);
                    db.push(0.2);
                } else {
                    fs.push(0.3);
                    db.push(0.95);
                }
            }
        }
        let r = BottleneckDetector::new().analyze(&fs, &db).unwrap();
        assert_eq!(r.switches, 9);
        assert!(r.has_switch(0.3));
        assert!((r.fraction_first - 0.5).abs() < 1e-12);
        assert!((r.fraction_second - 0.5).abs() < 1e-12);
    }

    #[test]
    fn close_utilizations_are_neither() {
        let fs = vec![0.8; 50];
        let db = vec![0.75; 50];
        let r = BottleneckDetector::new().analyze(&fs, &db).unwrap();
        assert!((r.fraction_neither - 1.0).abs() < 1e-12);
        assert_eq!(r.switches, 0);
    }

    #[test]
    fn neither_windows_do_not_break_switch_counting() {
        let fs = [0.9, 0.8, 0.5, 0.2, 0.9];
        let db = [0.2, 0.75, 0.55, 0.9, 0.2];
        // Dominance: First, Neither, Neither, Second, First -> 2 switches.
        let r = BottleneckDetector::new().analyze(&fs, &db).unwrap();
        assert_eq!(r.switches, 2);
    }

    #[test]
    fn margin_is_respected() {
        let fs = [0.6, 0.6];
        let db = [0.4, 0.4];
        let strict = BottleneckDetector::new()
            .margin(0.3)
            .analyze(&fs, &db)
            .unwrap();
        assert!((strict.fraction_neither - 1.0).abs() < 1e-12);
        let loose = BottleneckDetector::new()
            .margin(0.1)
            .analyze(&fs, &db)
            .unwrap();
        assert!((loose.fraction_first - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_series() {
        assert!(BottleneckDetector::new()
            .analyze(&[0.5], &[0.5, 0.6])
            .is_err());
    }

    #[test]
    fn rejects_invalid_utilization() {
        assert!(BottleneckDetector::new().analyze(&[1.5], &[0.5]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(BottleneckDetector::new().analyze(&[], &[]).is_err());
    }

    #[test]
    fn rejects_non_positive_margin() {
        assert!(BottleneckDetector::new()
            .margin(0.0)
            .analyze(&[0.5], &[0.5])
            .is_err());
    }

    #[test]
    fn timeline_has_input_length() {
        let fs = vec![0.9; 7];
        let db = vec![0.1; 7];
        let r = BottleneckDetector::new().analyze(&fs, &db).unwrap();
        assert_eq!(r.timeline.len(), 7);
    }
}
