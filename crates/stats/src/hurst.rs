//! Variance-time Hurst-parameter estimation.
//!
//! The paper notes (Section 1) that the index of dispersion "can also be
//! related to the well-known Hurst parameter used in the analysis of
//! long-range dependence". This module provides the classical variance-time
//! estimator: aggregating a series at level `m` scales the variance of the
//! aggregated means like `m^(2H - 2)`, so `H` is recovered from the slope of
//! the log-log variance-time plot. A short-range-dependent (e.g. Markovian)
//! process has `H = 0.5`; `H > 0.5` indicates long-range dependence, which a
//! finite MAP can only mimic over finite time scales.

use serde::{Deserialize, Serialize};

use crate::descriptive::variance;
use crate::regression::linear_fit;
use crate::StatsError;

/// One point of the variance-time plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariancePoint {
    /// Aggregation level `m` (block size).
    pub m: usize,
    /// Variance of the `m`-aggregated block means.
    pub variance: f64,
}

/// Result of the variance-time Hurst estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HurstEstimate {
    /// Estimated Hurst parameter.
    pub h: f64,
    /// Slope of the fitted log-log line (`2H - 2`).
    pub slope: f64,
    /// The variance-time plot points used in the fit.
    pub points: Vec<VariancePoint>,
}

/// Estimate the Hurst parameter of a series via the variance-time plot.
///
/// Aggregation levels are chosen geometrically between 1 and `n / 10` so that
/// every level retains at least 10 blocks.
///
/// # Errors
/// Rejects series shorter than 100 samples or with (near-)zero variance.
///
/// # Example
/// ```
/// // A deterministic saw-tooth has no long-range dependence: H stays near or
/// // below 1/2 (aggregation averages the structure away).
/// let series: Vec<f64> = (0..20_000).map(|i| (i % 7) as f64).collect();
/// let est = burstcap_stats::hurst::hurst_variance_time(&series)?;
/// assert!(est.h < 0.6, "H = {}", est.h);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
///
/// # Panics
///
/// Only if a justified internal invariant is violated (1 reachable
/// panic site, e.g. `crates/stats/src/streaming.rs:571`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn hurst_variance_time(series: &[f64]) -> Result<HurstEstimate, StatsError> {
    if series.len() < 100 {
        return Err(StatsError::TraceTooShort {
            got: series.len(),
            needed: 100,
        });
    }
    let base_var = variance(series)?;
    if base_var <= f64::EPSILON {
        return Err(StatsError::Degenerate {
            reason: "zero variance series".into(),
        });
    }

    let max_m = series.len() / 10;
    let mut points = Vec::new();
    let mut m = 1usize;
    while m <= max_m {
        let means: Vec<f64> = series
            .chunks_exact(m)
            .map(|chunk| chunk.iter().sum::<f64>() / m as f64)
            .collect();
        if means.len() < 10 {
            break;
        }
        let v = variance(&means)?;
        if v > 0.0 {
            points.push(VariancePoint { m, variance: v });
        }
        // Geometric spacing keeps the regression balanced across scales.
        m = ((m as f64) * 1.6).ceil() as usize;
    }
    if points.len() < 3 {
        return Err(StatsError::Degenerate {
            reason: "too few usable aggregation levels for the variance-time fit".into(),
        });
    }

    let xs: Vec<f64> = points.iter().map(|p| (p.m as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.variance.ln()).collect();
    let (_, slope) = linear_fit(&xs, &ys)?;
    Ok(HurstEstimate {
        h: 1.0 + slope / 2.0,
        slope,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_series(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn iid_noise_has_h_near_half() {
        let series = xorshift_series(100_000, 42);
        let est = hurst_variance_time(&series).unwrap();
        assert!((0.4..0.6).contains(&est.h), "H = {}", est.h);
    }

    #[test]
    fn persistent_regime_switching_raises_h() {
        // Long on/off regimes (mean length 2000) mimic long-memory over the
        // observable scales, pushing the variance-time slope up.
        let noise = xorshift_series(200_000, 7);
        let mut state = 0.0f64;
        let series: Vec<f64> = noise
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                if i % 2000 == 0 {
                    state = if state == 0.0 { 1.0 } else { 0.0 };
                }
                state + 0.05 * u
            })
            .collect();
        let est = hurst_variance_time(&series).unwrap();
        assert!(est.h > 0.7, "H = {}", est.h);
    }

    #[test]
    fn rejects_short_series() {
        assert!(hurst_variance_time(&[1.0; 50]).is_err());
    }

    #[test]
    fn rejects_constant_series() {
        assert!(hurst_variance_time(&[3.0; 1000]).is_err());
    }

    #[test]
    fn points_have_increasing_levels() {
        let series = xorshift_series(50_000, 3);
        let est = hurst_variance_time(&series).unwrap();
        assert!(est.points.windows(2).all(|w| w[0].m < w[1].m));
        assert!(est.points.len() >= 3);
    }
}
