//! Least-squares regression, specialized for service-demand estimation.
//!
//! The paper (Section 3.4, following Zhang et al.'s R-Capriccio) determines
//! the mean service time of each tier "with linear regression methods from the
//! CPU utilization samples measured across time": by the utilization law, the
//! busy time accumulated in window `k` is `U_k * T = S * n_k + noise`, so the
//! mean demand `S` is the through-origin regression slope of busy time on
//! completion counts. The multi-class variant regresses on per-class counts.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// Slope of the least-squares line through the origin, `y ≈ slope * x`.
///
/// # Errors
/// Rejects mismatched or empty inputs and an all-zero `x` (slope undefined).
pub fn slope_through_origin(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.is_empty() {
        return Err(StatsError::TraceTooShort { got: 0, needed: 1 });
    }
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    if sxx == 0.0 {
        return Err(StatsError::Degenerate {
            reason: "all regressors are zero".into(),
        });
    }
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    Ok(sxy / sxx)
}

/// Ordinary least squares fit `y ≈ intercept + slope * x`.
///
/// # Errors
/// Rejects mismatched inputs, fewer than two points, and zero variance in `x`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<(f64, f64), StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::TraceTooShort {
            got: x.len(),
            needed: 2,
        });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
    if sxx == 0.0 {
        return Err(StatsError::Degenerate {
            reason: "zero variance in regressor".into(),
        });
    }
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let slope = sxy / sxx;
    Ok((my - slope * mx, slope))
}

/// Coefficient of determination of predictions `yhat` against observations `y`.
pub fn r_squared(y: &[f64], yhat: &[f64]) -> Result<f64, StatsError> {
    if y.len() != yhat.len() {
        return Err(StatsError::LengthMismatch {
            left: y.len(),
            right: yhat.len(),
        });
    }
    if y.is_empty() {
        return Err(StatsError::TraceTooShort { got: 0, needed: 1 });
    }
    let my = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
    if ss_tot == 0.0 {
        return Err(StatsError::Degenerate {
            reason: "zero variance in response".into(),
        });
    }
    let ss_res: f64 = y.iter().zip(yhat).map(|(a, b)| (a - b) * (a - b)).sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// A mean service-demand estimate produced by utilization-law regression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandEstimate {
    /// Estimated mean service time per completion (seconds).
    pub mean_service_time: f64,
    /// Goodness of fit of the regression.
    pub r_squared: f64,
}

/// Estimate the mean per-request service demand of one server from
/// utilization samples and completion counts (utilization-law regression).
///
/// `U_k * resolution ≈ S * n_k`; the returned demand is the through-origin
/// slope.
///
/// # Errors
/// Rejects invalid utilizations, non-positive resolution, mismatched series,
/// and traces with no completions.
///
/// # Example
/// ```
/// use burstcap_stats::regression::estimate_demand;
///
/// // 25 completions per second at 50% utilization -> demand = 0.02 s.
/// let util = vec![0.5_f64; 120];
/// let n = vec![25_u64; 120];
/// let d = estimate_demand(&util, &n, 1.0)?;
/// assert!((d.mean_service_time - 0.02).abs() < 1e-12);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
pub fn estimate_demand(
    utilization: &[f64],
    completions: &[u64],
    resolution: f64,
) -> Result<DemandEstimate, StatsError> {
    let busy = crate::busy::busy_times(utilization, resolution)?;
    if busy.len() != completions.len() {
        return Err(StatsError::LengthMismatch {
            left: busy.len(),
            right: completions.len(),
        });
    }
    let x: Vec<f64> = completions.iter().map(|&n| n as f64).collect();
    let slope = slope_through_origin(&x, &busy)?;
    let yhat: Vec<f64> = x.iter().map(|v| slope * v).collect();
    let r2 = r_squared(&busy, &yhat).unwrap_or(1.0);
    Ok(DemandEstimate {
        mean_service_time: slope,
        r_squared: r2,
    })
}

/// Multi-class utilization-law regression:
/// `U_k * resolution ≈ sum_c S_c * n_{k,c}`.
///
/// `class_counts[k][c]` is the number of class-`c` completions in window `k`.
/// Solves the normal equations with Gaussian elimination (the class count is
/// small — 14 for TPC-W).
///
/// # Errors
/// Rejects ragged or empty count matrices, mismatched lengths, and singular
/// normal equations (e.g. two classes with perfectly proportional counts).
pub fn estimate_demands_multiclass(
    utilization: &[f64],
    class_counts: &[Vec<u64>],
    resolution: f64,
) -> Result<Vec<f64>, StatsError> {
    let busy = crate::busy::busy_times(utilization, resolution)?;
    if busy.len() != class_counts.len() {
        return Err(StatsError::LengthMismatch {
            left: busy.len(),
            right: class_counts.len(),
        });
    }
    let Some(first) = class_counts.first() else {
        return Err(StatsError::TraceTooShort { got: 0, needed: 1 });
    };
    let c = first.len();
    if c == 0 {
        return Err(StatsError::InvalidParameter {
            name: "class_counts",
            reason: "zero classes".into(),
        });
    }
    if class_counts.iter().any(|row| row.len() != c) {
        return Err(StatsError::InvalidParameter {
            name: "class_counts",
            reason: "ragged count matrix".into(),
        });
    }

    // Normal equations: (X^T X) s = X^T b.
    let mut xtx = vec![vec![0.0f64; c]; c];
    let mut xtb = vec![0.0f64; c];
    for (row, &b) in class_counts.iter().zip(&busy) {
        for i in 0..c {
            let xi = row[i] as f64;
            xtb[i] += xi * b;
            for j in i..c {
                xtx[i][j] += xi * row[j] as f64;
            }
        }
    }
    for i in 0..c {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
    }
    solve_dense(&mut xtx, &mut xtb).ok_or(StatsError::Degenerate {
        reason: "singular normal equations: class counts are collinear".into(),
    })?;
    Ok(xtb)
}

/// In-place Gaussian elimination with partial pivoting; solution lands in `b`.
/// Returns `None` if the matrix is (numerically) singular.
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<()> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * b[k];
        }
        b[col] = acc / a[col][col];
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn through_origin_recovers_slope() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((slope_through_origin(&x, &y).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn through_origin_rejects_zero_x() {
        assert!(slope_through_origin(&[0.0, 0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let (b0, b1) = linear_fit(&x, &y).unwrap();
        assert!((b0 - 1.0).abs() < 1e-12);
        assert!((b1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_is_one_for_perfect_fit() {
        let y = [1.0, 2.0, 3.0];
        assert!((r_squared(&y, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn demand_estimation_exact_under_noiseless_law() {
        let util = vec![0.8; 100];
        let n = vec![40u64; 100];
        let d = estimate_demand(&util, &n, 1.0).unwrap();
        assert!((d.mean_service_time - 0.02).abs() < 1e-12);
        assert!(d.r_squared > 0.999 || n.iter().all(|&v| v == 40));
    }

    #[test]
    fn demand_estimation_with_varying_load() {
        // Demand 5 ms; vary the per-window load.
        let counts: Vec<u64> = (0..200).map(|k| 50 + (k % 100) as u64).collect();
        let util: Vec<f64> = counts.iter().map(|&n| (n as f64) * 0.005).collect();
        let d = estimate_demand(&util, &counts, 1.0).unwrap();
        assert!((d.mean_service_time - 0.005).abs() < 1e-9);
        assert!(d.r_squared > 0.999);
    }

    #[test]
    fn demand_estimation_robust_to_noise() {
        // Add deterministic "noise" to utilization; slope should stay close.
        let counts: Vec<u64> = (0..500).map(|k| 20 + (k * 7 % 80) as u64).collect();
        let util: Vec<f64> = counts
            .iter()
            .enumerate()
            .map(|(k, &n)| {
                (n as f64 * 0.008 + 0.01 * ((k % 5) as f64 - 2.0) * 0.01).clamp(0.0, 1.0)
            })
            .collect();
        let d = estimate_demand(&util, &counts, 1.0).unwrap();
        assert!(
            (d.mean_service_time - 0.008).abs() < 5e-4,
            "slope = {}",
            d.mean_service_time
        );
    }

    #[test]
    fn multiclass_recovers_two_demands() {
        // Class demands 10 ms and 2 ms with varying mixes.
        let mut counts = Vec::new();
        let mut util = Vec::new();
        for k in 0..300 {
            let a = 10 + (k % 50) as u64;
            let b = 100 - (k % 70) as u64;
            counts.push(vec![a, b]);
            util.push(((a as f64) * 0.010 + (b as f64) * 0.002).min(1.0));
        }
        let s = estimate_demands_multiclass(&util, &counts, 1.0).unwrap();
        assert!((s[0] - 0.010).abs() < 1e-9, "s0 = {}", s[0]);
        assert!((s[1] - 0.002).abs() < 1e-9, "s1 = {}", s[1]);
    }

    #[test]
    fn multiclass_rejects_collinear_counts() {
        // Class 1 always exactly 2x class 0 -> singular.
        let counts: Vec<Vec<u64>> = (0..100)
            .map(|k| vec![k % 10 + 1, 2 * (k % 10 + 1)])
            .collect();
        let util: Vec<f64> = counts.iter().map(|r| r[0] as f64 * 0.01).collect();
        assert!(matches!(
            estimate_demands_multiclass(&util, &counts, 1.0),
            Err(StatsError::Degenerate { .. })
        ));
    }

    #[test]
    fn multiclass_rejects_ragged_matrix() {
        let counts = vec![vec![1u64, 2], vec![3u64]];
        let util = vec![0.1, 0.2];
        assert!(estimate_demands_multiclass(&util, &counts, 1.0).is_err());
    }

    #[test]
    fn solve_dense_3x3() {
        let mut a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let mut b = vec![8.0, -11.0, -3.0];
        solve_dense(&mut a, &mut b).unwrap();
        assert!((b[0] - 2.0).abs() < 1e-9);
        assert!((b[1] - 3.0).abs() < 1e-9);
        assert!((b[2] - -1.0).abs() < 1e-9);
    }
}
