//! One-pass streaming counterparts of the batch estimators — the measurement
//! substrate of continuous capacity planning.
//!
//! Every estimator in this crate was written for a *batch* world: the whole
//! monitoring trace exists, then [`crate::regression::estimate_demand`], the
//! Figure 2 [`crate::dispersion::DispersionEstimator`], and the
//! [`crate::busy::ServicePercentileEstimator`] each make a pass over it. A
//! live planner instead watches windows arrive one at a time and wants the
//! current descriptors after every window, without re-scanning history.
//!
//! This module provides the streaming versions, each cross-validated against
//! its batch counterpart:
//!
//! * [`StreamingDemand`] — the utilization-law regressor as running
//!   normal-equation sums. The sums are **bit-identical** to the batch pass
//!   (same additions in the same order), so the demand slope matches exactly.
//! * [`StreamingDispersion`] — the Figure 2 index-of-dispersion algorithm
//!   with every aggregation level maintained incrementally: the sliding
//!   busy-window pointers and integer completion prefix sums of
//!   [`crate::dispersion::aggregate_counts`], lifted to append-only updates.
//!   Per-level aggregated counts are emitted in the same order with the same
//!   floating-point operations as the batch pass, so the per-level count
//!   statistics agree **exactly**; the final `Y(t)` values agree to within
//!   integer-vs-two-pass variance rounding (~1 ulp-scale).
//! * [`P2Quantile`] — the P² sketch of Jain & Chlamtac (1985): five markers,
//!   `O(1)` memory, bounded error against the exact order statistic.
//! * [`StreamingServicePercentile`] — the Section 4.1 p95 service-time
//!   estimator (`p95(B_k) / median(n_k)`) on two P² sketches, with exact
//!   running totals for the mean.
//!
//! Work per arriving window is `O(active levels)` amortized; memory is
//! `O(levels)` for the statistics plus the raw busy/count series retained for
//! the still-open aggregation windows (an aggregation level whose window has
//! not filled yet may still need every window since its left edge).

use crate::busy::BusyTimeCharacterization;
use crate::descriptive::percentile_of_sorted;
use crate::dispersion::{CurvePoint, DispersionEstimate, MIN_WINDOWS};
use crate::regression::DemandEstimate;
use crate::StatsError;

/// Incremental utilization-law regression: the running normal-equation sums
/// of `B_k ≈ S * n_k` (through-origin least squares).
///
/// Pushing the same windows the batch
/// [`crate::regression::estimate_demand`] consumes reproduces its sums
/// bit-for-bit: the accumulators perform the identical additions in the
/// identical order, so the estimated demand is exactly the batch slope.
///
/// # Example
/// ```
/// use burstcap_stats::streaming::StreamingDemand;
///
/// // 25 completions per second at 50% utilization -> demand = 0.02 s.
/// let mut reg = StreamingDemand::new(1.0);
/// for _ in 0..120 {
///     reg.push(0.5, 25)?;
/// }
/// let d = reg.estimate()?;
/// assert!((d.mean_service_time - 0.02).abs() < 1e-12);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingDemand {
    resolution: f64,
    windows: u64,
    sxx: f64,
    sxy: f64,
    sum_busy: f64,
    sum_busy_sq: f64,
}

impl StreamingDemand {
    /// Create a regressor for monitoring windows of `resolution` seconds.
    ///
    /// # Panics
    /// Panics if `resolution` is not strictly positive; resolution is a
    /// deployment constant, so a bad value is a programming error.
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0, "monitoring resolution must be positive");
        StreamingDemand {
            resolution,
            windows: 0,
            sxx: 0.0,
            sxy: 0.0,
            sum_busy: 0.0,
            sum_busy_sq: 0.0,
        }
    }

    /// Ingest one monitoring window: utilization `u` in `[0, 1]` and the
    /// completion count of the window.
    ///
    /// # Errors
    /// Rejects utilizations outside `[0, 1]` (including NaN); the window is
    /// not ingested.
    pub fn push(&mut self, utilization: f64, completions: u64) -> Result<(), StatsError> {
        check_utilization(utilization)?;
        let x = completions as f64;
        let b = utilization * self.resolution;
        self.windows += 1;
        self.sxx += x * x;
        self.sxy += x * b;
        self.sum_busy += b;
        self.sum_busy_sq += b * b;
        Ok(())
    }

    /// Number of windows ingested so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The raw normal-equation sums `(sum x^2, sum x*B)` — exposed so the
    /// streaming-vs-batch equivalence tests can assert exact agreement.
    pub fn normal_sums(&self) -> (f64, f64) {
        (self.sxx, self.sxy)
    }

    /// Current demand estimate from everything ingested so far.
    ///
    /// The slope is bit-identical to the batch regression on the same
    /// windows; the R² is computed from the running sums (algebraically the
    /// same quantity, up to rounding).
    ///
    /// # Errors
    /// Rejects an empty stream and an all-zero completion history (slope
    /// undefined), mirroring the batch estimator.
    pub fn estimate(&self) -> Result<DemandEstimate, StatsError> {
        if self.windows == 0 {
            return Err(StatsError::TraceTooShort { got: 0, needed: 1 });
        }
        if self.sxx == 0.0 {
            return Err(StatsError::Degenerate {
                reason: "all regressors are zero".into(),
            });
        }
        let slope = self.sxy / self.sxx;
        // SS_tot = sum B^2 - (sum B)^2 / n; SS_res expanded from the running
        // sums. A (near-)zero total sum of squares means constant busy time:
        // the batch path reports R^2 = 1 there as well.
        let n = self.windows as f64;
        let ss_tot = self.sum_busy_sq - self.sum_busy * self.sum_busy / n;
        let ss_res = self.sum_busy_sq - 2.0 * slope * self.sxy + slope * slope * self.sxx;
        let r_squared = if ss_tot <= 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(DemandEstimate {
            mean_service_time: slope,
            r_squared,
        })
    }
}

/// Exact integer statistics of the aggregated completion counts emitted at
/// one aggregation level of the streaming Figure 2 estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// Number of aggregated windows emitted so far at this level.
    pub windows: u64,
    /// Sum of the emitted counts.
    pub sum: u64,
    /// Sum of the squared emitted counts.
    pub sum_sq: u128,
}

/// Sliding-window state of one aggregation level: the left/right pointers and
/// float busy accumulator of `aggregate_counts`, frozen between arrivals.
#[derive(Debug, Clone, PartialEq)]
struct LevelState {
    /// Aggregated busy-time target `t` of this level (seconds).
    t: f64,
    /// Left edge: the next start window to emit for.
    k: usize,
    /// Exclusive right edge of the current window.
    j: usize,
    /// Busy time accumulated over `[k, j)`.
    acc: f64,
    stats: LevelStats,
}

/// The Figure 2 index-of-dispersion estimator with append-only updates:
/// every aggregation level's overlapping busy-time windows are maintained
/// incrementally as monitoring windows arrive.
///
/// Emission logic per level is the sliding-window/prefix-sum algorithm of
/// [`crate::dispersion::aggregate_counts`], with identical floating-point
/// operations in identical order — the emitted counts match the batch pass
/// bit-for-bit (asserted exactly by the equivalence property suite). The
/// per-level statistics are exact integer sums, so
/// [`StreamingDispersion::estimate`] reproduces the batch `Y(t)` curve up to
/// one final rounding difference in the variance.
///
/// # Example
/// ```
/// use burstcap_stats::streaming::StreamingDispersion;
///
/// // A perfectly regular server: deterministic counts, I converges to 0.
/// let mut disp = StreamingDispersion::new(60.0);
/// for _ in 0..600 {
///     disp.push(0.5, 30)?;
/// }
/// let est = disp.estimate()?;
/// assert!(est.index_of_dispersion() < 0.1);
/// assert!(est.converged());
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingDispersion {
    resolution: f64,
    tolerance: f64,
    min_windows: usize,
    max_levels: usize,
    strict: bool,
    /// Number of pruned-away leading windows: `busy[i - base]` holds the
    /// busy time of absolute window `i`. Level pointers stay absolute.
    base: usize,
    busy: Vec<f64>,
    /// Integer prefix sums of completion counts, absolute values:
    /// `prefix[j - base] - prefix[k - base]` is the exact count of windows
    /// `[k, j)`.
    prefix: Vec<u64>,
    total_completions: u64,
    levels: Vec<LevelState>,
}

/// Prune the retained window buffer once this many leading windows are
/// behind every level's left pointer (amortizes the `drain`).
const PRUNE_CHUNK: usize = 1024;

impl StreamingDispersion {
    /// Create a streaming estimator for monitoring windows of `resolution`
    /// seconds. Defaults mirror
    /// [`crate::dispersion::DispersionEstimator::new`]: tolerance 0.2, at
    /// least [`MIN_WINDOWS`] windows per level, at most 512 levels,
    /// non-strict.
    ///
    /// # Panics
    /// Panics if `resolution` is not strictly positive.
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0, "monitoring resolution must be positive");
        StreamingDispersion {
            resolution,
            tolerance: 0.2,
            min_windows: MIN_WINDOWS,
            max_levels: 512,
            strict: false,
            base: 0,
            busy: Vec::new(),
            prefix: vec![0],
            total_completions: 0,
            levels: Vec::new(),
        }
    }

    /// Set the convergence tolerance of the stopping rule (paper default
    /// 0.20).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Set the minimum number of windows per aggregation level (paper: 100).
    pub fn min_windows(mut self, min_windows: usize) -> Self {
        self.min_windows = min_windows;
        self
    }

    /// Cap the number of aggregation levels maintained.
    ///
    /// # Panics
    /// Panics if called after the first window was ingested (levels are
    /// materialized on first push) or with zero levels.
    pub fn max_levels(mut self, max_levels: usize) -> Self {
        assert!(max_levels > 0, "need at least one aggregation level");
        assert!(
            self.levels.is_empty(),
            "max_levels must be configured before ingesting windows"
        );
        self.max_levels = max_levels;
        self
    }

    /// In strict mode running out of windows before convergence is an error,
    /// as in the batch estimator.
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Ingest one monitoring window.
    ///
    /// # Errors
    /// Rejects utilizations outside `[0, 1]` (including NaN); the window is
    /// not ingested.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (3 reachable
    /// panic sites, e.g. `crates/stats/src/streaming.rs:317`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn push(&mut self, utilization: f64, completions: u64) -> Result<(), StatsError> {
        check_utilization(utilization)?;
        if self.levels.is_empty() {
            self.levels = (1..=self.max_levels)
                .map(|l| LevelState {
                    t: l as f64 * self.resolution,
                    k: 0,
                    j: 0,
                    acc: 0.0,
                    stats: LevelStats {
                        windows: 0,
                        sum: 0,
                        sum_sq: 0,
                    },
                })
                .collect();
        }
        self.busy.push(utilization * self.resolution);
        // burstcap-lint: allow(panic-in-lib) — prefix is seeded with a zero at construction
        let last = *self.prefix.last().expect("prefix starts non-empty");
        self.prefix.push(last + completions);
        self.total_completions += completions;

        // Advance every level: same pointer moves, in the same order, as one
        // more iteration of the batch sliding window would make. Pointers
        // are absolute window indices; the retained buffers start at `base`.
        let n = self.base + self.busy.len();
        let base = self.base;
        for level in self.levels.iter_mut() {
            loop {
                while level.j < n && level.acc < level.t {
                    level.acc += self.busy[level.j - base];
                    level.j += 1;
                }
                if level.acc < level.t {
                    break;
                }
                let count = self.prefix[level.j - base] - self.prefix[level.k - base];
                level.stats.windows += 1;
                level.stats.sum += count;
                level.stats.sum_sq += u128::from(count) * u128::from(count);
                level.acc -= self.busy[level.k - base];
                level.k += 1;
            }
        }

        // Windows behind every level's left pointer can never be read again
        // (j only moves forward, k only moves forward): drop them in chunks
        // so memory stays proportional to the largest level's open span, not
        // to the stream length. Prefix values are absolute counts, so
        // differences are unaffected.
        let min_k = self
            .levels
            .iter()
            .map(|l| l.k)
            .min()
            // burstcap-lint: allow(panic-in-lib) — levels materialize on the first push; this path is gated on pushes having happened
            .expect("levels materialized on first push");
        if min_k - self.base >= PRUNE_CHUNK {
            let drop = min_k - self.base;
            self.busy.drain(..drop);
            self.prefix.drain(..drop);
            self.base = min_k;
        }
        Ok(())
    }

    /// Number of monitoring windows ingested so far.
    pub fn windows_ingested(&self) -> usize {
        self.base + self.busy.len()
    }

    /// Number of windows currently retained in the pruned buffer (bounded
    /// by the largest level's open span plus one prune chunk).
    pub fn windows_retained(&self) -> usize {
        self.busy.len()
    }

    /// Exact integer statistics of the aggregated counts at `level`
    /// (1-based, level `l` aggregates `l * resolution` busy-seconds) —
    /// exposed so the equivalence tests can assert exact agreement with
    /// [`crate::dispersion::aggregate_counts`].
    pub fn level_stats(&self, level: usize) -> Option<LevelStats> {
        if level == 0 {
            return None;
        }
        self.levels.get(level - 1).map(|l| l.stats)
    }

    /// Current index-of-dispersion estimate: replays the batch stopping rule
    /// over the incrementally maintained levels.
    ///
    /// # Errors
    /// Mirrors the batch estimator: invalid tolerance, no completions, first
    /// level short of `min_windows` (or any level, in strict mode), zero
    /// mean count, strict-mode non-convergence.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (3 reachable
    /// panic sites, e.g. `crates/stats/src/streaming.rs:419`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn estimate(&self) -> Result<DispersionEstimate, StatsError> {
        if self.tolerance <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "tolerance",
                reason: format!("must be positive, got {}", self.tolerance),
            });
        }
        if self.total_completions == 0 {
            return Err(StatsError::Degenerate {
                reason: "no completions observed in any window".into(),
            });
        }

        let mut curve: Vec<CurvePoint> = Vec::new();
        let mut prev_y: Option<f64> = None;
        for level in &self.levels {
            let windows = level.stats.windows as usize;
            if windows < self.min_windows {
                if curve.is_empty() || self.strict {
                    return Err(StatsError::TraceTooShort {
                        got: windows,
                        needed: self.min_windows,
                    });
                }
                // burstcap-lint: allow(panic-in-lib) — the curve was checked non-empty directly above
                let last = *curve.last().expect("non-empty checked above");
                return Ok(DispersionEstimate::from_parts(last.y, false, curve));
            }
            let y = level_y(level.stats)?;
            curve.push(CurvePoint {
                t: level.t,
                y,
                windows,
            });
            if let Some(py) = prev_y {
                let rel = if py == 0.0 {
                    if y == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (1.0 - y / py).abs()
                };
                if rel <= self.tolerance {
                    return Ok(DispersionEstimate::from_parts(y, true, curve));
                }
            }
            prev_y = Some(y);
        }

        if self.strict {
            return Err(StatsError::NoConvergence {
                iterations: curve.len(),
            });
        }
        // burstcap-lint: allow(panic-in-lib) — the first level always contributes a point before this path
        let last = *curve.last().expect("max_levels >= 1, first level passed");
        Ok(DispersionEstimate::from_parts(last.y, false, curve))
    }
}

/// `Y(t) = Var(N_t) / E[N_t]` from the exact integer level sums: the
/// variance numerator `n * sum_sq - sum^2` is computed exactly in integers
/// (non-negative by Cauchy–Schwarz) and rounded once on conversion.
fn level_y(stats: LevelStats) -> Result<f64, StatsError> {
    let n = stats.windows;
    let e = stats.sum as f64 / n as f64;
    if e == 0.0 {
        return Err(StatsError::Degenerate {
            reason: "mean completion count is zero in busy windows".into(),
        });
    }
    let num = u128::from(n) * stats.sum_sq - u128::from(stats.sum) * u128::from(stats.sum);
    let var = num as f64 / (n as f64 * n as f64);
    Ok(var / e)
}

/// The P² (piecewise-parabolic) streaming quantile sketch of Jain &
/// Chlamtac (1985): five markers track the target quantile in `O(1)` memory
/// per observation, with bounded error against the exact order statistic.
///
/// Until five observations arrive the sketch answers exactly (from a sorted
/// buffer); from the sixth observation on, marker heights are adjusted with
/// the piecewise-parabolic prediction, falling back to linear interpolation
/// when the parabola would violate monotonicity.
///
/// # Example
/// ```
/// use burstcap_stats::streaming::P2Quantile;
///
/// let mut sketch = P2Quantile::new(0.5);
/// for k in 1..=1001_u64 {
///     // A deterministic shuffle of 1..=1001: true median 501.
///     sketch.push(((k * 577) % 1001 + 1) as f64);
/// }
/// let median = sketch.quantile().expect("non-empty");
/// assert!((median - 501.0).abs() / 501.0 < 0.05, "median = {median}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights, ascending.
    q: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    count: u64,
    /// Exact buffer for the first five observations.
    head: Vec<f64>,
}

impl P2Quantile {
    /// Create a sketch for the `p`-quantile.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`; the tracked quantile is a configuration
    /// constant, so a bad value is a programming error.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p < 1.0,
            "tracked quantile must lie strictly in (0, 1), got {p}"
        );
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            head: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Ingest one observation. NaN observations are ignored (they carry no
    /// order information).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/stats/src/streaming.rs:571`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        if self.count <= 5 {
            self.head.push(x);
            if self.count == 5 {
                self.head.sort_by(f64::total_cmp);
                for (qi, &h) in self.q.iter_mut().zip(self.head.iter()) {
                    *qi = h;
                }
            }
            return;
        }

        // Locate the cell and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k + 1].
            (0..4)
                .find(|&i| x < self.q[i + 1])
                // burstcap-lint: allow(panic-in-lib) — x < q[4] was established by the branch above, so some cell matches
                .expect("x < q[4] checked above")
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust the three interior markers if they drifted a full position
        // away from their desired position.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = if d >= 1.0 { 1.0 } else { -1.0 };
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    /// Piecewise-parabolic height prediction for marker `i` moved by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola is non-monotone.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate; `None` before the first observation. Exact
    /// for up to five observations (at exactly five the markers are freshly
    /// initialized and carry no interpolation yet, so the sorted buffer is
    /// still the right answer), sketched afterwards.
    pub fn quantile(&self) -> Option<f64> {
        match self.count {
            0 => None,
            1..=5 => {
                let mut sorted = self.head.clone();
                sorted.sort_by(f64::total_cmp);
                Some(percentile_of_sorted(&sorted, self.p))
            }
            _ => Some(self.q[2]),
        }
    }
}

/// Streaming version of the Section 4.1 tail estimator
/// ([`crate::busy::ServicePercentileEstimator`]): the p95 of busy times and
/// the median completion count are tracked by two [`P2Quantile`] sketches,
/// while the mean service time comes from exact running totals (bit-identical
/// to the batch pass over the same windows).
///
/// # Example
/// ```
/// use burstcap_stats::streaming::StreamingServicePercentile;
///
/// // Constant service times of 0.01 s: every fully busy 1-second window
/// // completes 100 requests, so p95(B)/median(n) = 1.0/100 = 0.01.
/// let mut tail = StreamingServicePercentile::new(1.0);
/// for _ in 0..200 {
///     tail.push(1.0, 100)?;
/// }
/// let c = tail.estimate()?;
/// assert!((c.p95_service_time - 0.01).abs() < 1e-9);
/// assert!((c.mean_service_time - 0.01).abs() < 1e-9);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingServicePercentile {
    resolution: f64,
    busy_tail: P2Quantile,
    count_median: P2Quantile,
    total_busy: f64,
    total_completions: u64,
    busy_windows: usize,
}

impl StreamingServicePercentile {
    /// Create an estimator for monitoring windows of `resolution` seconds,
    /// tracking the 95th percentile.
    ///
    /// # Panics
    /// Panics if `resolution` is not strictly positive.
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0, "monitoring resolution must be positive");
        StreamingServicePercentile {
            resolution,
            busy_tail: P2Quantile::new(0.95),
            count_median: P2Quantile::new(0.5),
            total_busy: 0.0,
            total_completions: 0,
            busy_windows: 0,
        }
    }

    /// Change the tracked quantile (default 0.95).
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`, or if called after windows were ingested
    /// (the sketch cannot be retargeted).
    pub fn quantile(mut self, q: f64) -> Self {
        assert!(
            self.busy_windows == 0,
            "quantile must be configured before ingesting windows"
        );
        self.busy_tail = P2Quantile::new(q);
        self
    }

    /// Ingest one monitoring window. Windows without completions carry no
    /// service-time information and are skipped, as in the batch estimator.
    ///
    /// # Errors
    /// Rejects utilizations outside `[0, 1]` (including NaN).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/stats/src/streaming.rs:571`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn push(&mut self, utilization: f64, completions: u64) -> Result<(), StatsError> {
        check_utilization(utilization)?;
        if completions == 0 {
            return Ok(());
        }
        let b = utilization * self.resolution;
        self.busy_tail.push(b);
        self.count_median.push(completions as f64);
        self.total_busy += b;
        self.total_completions += completions;
        self.busy_windows += 1;
        Ok(())
    }

    /// Current busy-time characterization.
    ///
    /// # Errors
    /// Degenerate if no window with completions was ingested yet.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/stats/src/streaming.rs:724`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn estimate(&self) -> Result<BusyTimeCharacterization, StatsError> {
        if self.busy_windows == 0 || self.total_completions == 0 {
            return Err(StatsError::Degenerate {
                reason: "no window with completions".into(),
            });
        }
        // burstcap-lint: allow(panic-in-lib) — gated on busy_windows > 0 directly above
        let p95_busy = self.busy_tail.quantile().expect("busy_windows > 0");
        // burstcap-lint: allow(panic-in-lib) — gated on busy_windows > 0 directly above
        let med_n = self.count_median.quantile().expect("busy_windows > 0");
        Ok(BusyTimeCharacterization {
            mean_service_time: self.total_busy / self.total_completions as f64,
            p95_service_time: p95_busy / med_n,
            median_completions: med_n,
            busy_windows: self.busy_windows,
        })
    }
}

fn check_utilization(u: f64) -> Result<(), StatsError> {
    if !(0.0..=1.0).contains(&u) || u.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "utilization",
            reason: format!("samples must lie in [0, 1], found {u}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispersion::DispersionEstimator;
    use crate::regression::estimate_demand;

    /// Deterministic xorshift for reproducible test streams.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn demand_slope_matches_batch_exactly() {
        let mut rng = Rng(0xABCD);
        let mut util = Vec::new();
        let mut counts = Vec::new();
        let mut stream = StreamingDemand::new(5.0);
        for _ in 0..500 {
            let n = (rng.next_f64() * 80.0) as u64 + 5;
            let u = (n as f64 * 0.004 + rng.next_f64() * 0.02).min(1.0);
            util.push(u);
            counts.push(n);
            stream.push(u, n).unwrap();
        }
        let batch = estimate_demand(&util, &counts, 5.0).unwrap();
        let online = stream.estimate().unwrap();
        assert_eq!(
            batch.mean_service_time.to_bits(),
            online.mean_service_time.to_bits(),
            "slope must be bit-identical"
        );
        assert!((batch.r_squared - online.r_squared).abs() < 1e-9);
    }

    #[test]
    fn demand_rejects_empty_and_zero_regressors() {
        let reg = StreamingDemand::new(1.0);
        assert!(matches!(
            reg.estimate(),
            Err(StatsError::TraceTooShort { .. })
        ));
        let mut reg = StreamingDemand::new(1.0);
        reg.push(0.5, 0).unwrap();
        assert!(matches!(reg.estimate(), Err(StatsError::Degenerate { .. })));
        assert!(reg.push(1.5, 1).is_err());
    }

    #[test]
    fn dispersion_matches_batch_on_steady_stream() {
        let mut stream = StreamingDispersion::new(5.0);
        for _ in 0..500 {
            stream.push(1.0, 25).unwrap();
        }
        let online = stream.estimate().unwrap();
        let batch = DispersionEstimator::new(5.0)
            .estimate(&[1.0; 500], &[25; 500])
            .unwrap();
        assert_eq!(online.converged(), batch.converged());
        assert_eq!(online.curve().len(), batch.curve().len());
        assert!((online.index_of_dispersion() - batch.index_of_dispersion()).abs() < 1e-12);
    }

    #[test]
    fn dispersion_matches_batch_on_bursty_stream() {
        let mut util = Vec::new();
        let mut n = Vec::new();
        for block in 0..40 {
            for _ in 0..25 {
                util.push(1.0);
                n.push(if block % 2 == 0 { 5u64 } else { 95 });
            }
        }
        let mut stream = StreamingDispersion::new(1.0);
        for (&u, &c) in util.iter().zip(&n) {
            stream.push(u, c).unwrap();
        }
        let online = stream.estimate().unwrap();
        let batch = DispersionEstimator::new(1.0).estimate(&util, &n).unwrap();
        assert_eq!(online.converged(), batch.converged());
        let (a, b) = (online.index_of_dispersion(), batch.index_of_dispersion());
        assert!((a - b).abs() / b < 1e-9, "online {a} vs batch {b}");
        assert!(a > 10.0);
    }

    #[test]
    fn dispersion_estimate_is_callable_mid_stream() {
        let mut stream = StreamingDispersion::new(1.0);
        for k in 0..1000u64 {
            stream.push(1.0, 10 + k % 7).unwrap();
            if k == 10 {
                // Far too short for the first level: the batch error.
                assert!(matches!(
                    stream.estimate(),
                    Err(StatsError::TraceTooShort { .. })
                ));
            }
        }
        assert!(stream.estimate().unwrap().index_of_dispersion().is_finite());
        assert_eq!(stream.windows_ingested(), 1000);
        assert!(stream.level_stats(1).unwrap().windows > 0);
        assert!(stream.level_stats(0).is_none());
    }

    #[test]
    fn dispersion_degenerate_and_strict_errors() {
        let mut stream = StreamingDispersion::new(1.0);
        for _ in 0..200 {
            stream.push(0.5, 0).unwrap();
        }
        assert!(matches!(
            stream.estimate(),
            Err(StatsError::Degenerate { .. })
        ));

        let mut stream = StreamingDispersion::new(1.0).tolerance(1e-9).strict(true);
        for k in 0..300u64 {
            stream.push(1.0, 1 + (k % 37) * 7).unwrap();
        }
        assert!(stream.estimate().is_err());
        let relaxed = StreamingDispersion::new(1.0).tolerance(-1.0);
        assert!(relaxed.estimate().is_err());
    }

    #[test]
    fn p2_tracks_exponential_tail() {
        let mut rng = Rng(42);
        let mut sketch = P2Quantile::new(0.95);
        let mut exact: Vec<f64> = Vec::new();
        for _ in 0..20_000 {
            let x = -(1.0 - rng.next_f64()).ln();
            sketch.push(x);
            exact.push(x);
        }
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let truth = percentile_of_sorted(&exact, 0.95);
        let est = sketch.quantile().unwrap();
        assert!(
            (est - truth).abs() / truth < 0.05,
            "p95 sketch {est} vs exact {truth}"
        );
        assert_eq!(sketch.count(), 20_000);
        assert!((sketch.p() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn p2_is_exact_for_tiny_streams() {
        let mut sketch = P2Quantile::new(0.5);
        assert!(sketch.quantile().is_none());
        for x in [3.0, 1.0, 2.0] {
            sketch.push(x);
        }
        assert!((sketch.quantile().unwrap() - 2.0).abs() < 1e-12);
        sketch.push(f64::NAN); // ignored
        assert_eq!(sketch.count(), 3);
    }

    #[test]
    fn p2_is_exact_at_exactly_five_observations() {
        // Regression: at count == 5 the markers are freshly initialized and
        // q[2] is the *median*; a p95 sketch must still answer from the
        // sorted buffer, not collapse to the median.
        let mut sketch = P2Quantile::new(0.95);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            sketch.push(x);
        }
        let exact = percentile_of_sorted(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95);
        assert!(
            (sketch.quantile().unwrap() - exact).abs() < 1e-12,
            "got {}, exact {exact}",
            sketch.quantile().unwrap()
        );
    }

    #[test]
    fn dispersion_pruning_preserves_batch_equivalence() {
        // A long high-utilization stream with few levels: every level's
        // left pointer races ahead, the prune fires repeatedly, and the
        // per-level statistics still match the batch pass over the full
        // (unpruned) series exactly.
        let mut rng = Rng(0xBEEF);
        let n = 30_000;
        let mut stream = StreamingDispersion::new(1.0).max_levels(8);
        let mut util = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            let u = 0.5 + rng.next_f64() * 0.5;
            let c = (rng.next_f64() * 30.0) as u64;
            stream.push(u, c).unwrap();
            util.push(u);
            counts.push(c);
        }
        assert_eq!(stream.windows_ingested(), n);
        // The largest level spans ~8 / 0.5 = 16 windows; retention is
        // bounded by span + prune chunk, far below the stream length.
        assert!(
            stream.windows_retained() < 2 * PRUNE_CHUNK,
            "retained {} of {n} windows",
            stream.windows_retained()
        );
        let busy: Vec<f64> = util.iter().map(|&u| u * 1.0).collect();
        for level in 1..=8usize {
            let batch = crate::dispersion::aggregate_counts(&busy, &counts, level as f64);
            let stats = stream.level_stats(level).unwrap();
            assert_eq!(stats.windows as usize, batch.len(), "level {level}");
            let sum: u64 = batch.iter().map(|&c| c as u64).sum();
            assert_eq!(stats.sum, sum, "level {level}");
        }
        let online = stream.estimate().unwrap();
        let batch = DispersionEstimator::new(1.0)
            .max_levels(8)
            .estimate(&util, &counts)
            .unwrap();
        assert!(
            (online.index_of_dispersion() - batch.index_of_dispersion()).abs()
                < 1e-9 * (1.0 + batch.index_of_dispersion()),
            "online {} vs batch {}",
            online.index_of_dispersion(),
            batch.index_of_dispersion()
        );
    }

    #[test]
    fn tail_estimator_matches_batch_on_constant_stream() {
        let mut stream = StreamingServicePercentile::new(1.0);
        for _ in 0..300 {
            stream.push(1.0, 50).unwrap();
        }
        let c = stream.estimate().unwrap();
        assert!((c.mean_service_time - 0.02).abs() < 1e-12);
        assert!((c.p95_service_time - 0.02).abs() < 1e-12);
        assert_eq!(c.busy_windows, 300);
    }

    #[test]
    fn tail_estimator_skips_idle_windows_and_rejects_all_idle() {
        let mut stream = StreamingServicePercentile::new(1.0);
        stream.push(0.0, 0).unwrap();
        assert!(matches!(
            stream.estimate(),
            Err(StatsError::Degenerate { .. })
        ));
        stream.push(1.0, 10).unwrap();
        stream.push(0.0, 0).unwrap();
        stream.push(1.0, 10).unwrap();
        let c = stream.estimate().unwrap();
        assert_eq!(c.busy_windows, 2);
        assert!((c.mean_service_time - 0.1).abs() < 1e-12);
    }

    #[test]
    fn tail_estimator_quantile_is_configurable() {
        let mut stream = StreamingServicePercentile::new(1.0).quantile(0.5);
        for k in 1..=100u64 {
            stream.push(1.0, k).unwrap();
        }
        assert!(stream.estimate().unwrap().p95_service_time > 0.0);
    }
}
