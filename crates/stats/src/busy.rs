//! Busy-period analysis and the paper's 95th-percentile service-time
//! estimator (Section 4.1).
//!
//! Monitoring tools report utilization `U_k` per window of `T` seconds, so the
//! busy time in window `k` is `B_k = U_k * T`. The paper estimates the 95th
//! percentile of *service times* — never directly observable — by scaling the
//! 95th percentile of busy times by the median number of completions per busy
//! window: when dispersion is high, the `n_k` jobs in a busy window receive
//! similar service `S_k`, so `B_k ≈ n_k * S_k` and
//! `p95(S) ≈ p95(B) / median(n)`. At low dispersion the estimate is biased,
//! but there queueing behaviour is dominated by mean and SCV, so the bias is
//! harmless (paper, end of §4.1).

use serde::{Deserialize, Serialize};

use crate::descriptive::percentile_of_sorted;
use crate::StatsError;

/// Busy time per monitoring window: `B_k = U_k * resolution`.
///
/// # Errors
/// Rejects non-positive resolutions and utilizations outside `[0, 1]`.
pub fn busy_times(utilization: &[f64], resolution: f64) -> Result<Vec<f64>, StatsError> {
    if resolution <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "resolution",
            reason: format!("must be positive, got {resolution}"),
        });
    }
    if let Some(bad) = utilization
        .iter()
        .find(|u| !(0.0..=1.0).contains(*u) || u.is_nan())
    {
        return Err(StatsError::InvalidParameter {
            name: "utilization",
            reason: format!("samples must lie in [0, 1], found {bad}"),
        });
    }
    Ok(utilization.iter().map(|u| u * resolution).collect())
}

/// A maximal run of consecutive windows in which the server was busy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusyPeriod {
    /// Index of the first window of the run.
    pub start: usize,
    /// Number of consecutive busy windows.
    pub windows: usize,
    /// Total busy time accumulated over the run (seconds).
    pub busy_time: f64,
    /// Total completions over the run.
    pub completions: u64,
}

/// Extract maximal busy periods: runs of windows with utilization above
/// `threshold`.
///
/// # Errors
/// Rejects mismatched series lengths, invalid utilizations, and thresholds
/// outside `[0, 1)`.
///
/// # Panics
///
/// Only if a justified internal invariant is violated (1 reachable
/// panic site, e.g. `crates/stats/src/streaming.rs:571`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn busy_periods(
    utilization: &[f64],
    completions: &[u64],
    resolution: f64,
    threshold: f64,
) -> Result<Vec<BusyPeriod>, StatsError> {
    if utilization.len() != completions.len() {
        return Err(StatsError::LengthMismatch {
            left: utilization.len(),
            right: completions.len(),
        });
    }
    if !(0.0..1.0).contains(&threshold) {
        return Err(StatsError::InvalidParameter {
            name: "threshold",
            reason: format!("must lie in [0, 1), got {threshold}"),
        });
    }
    let busy = busy_times(utilization, resolution)?;
    let mut periods = Vec::new();
    let mut current: Option<BusyPeriod> = None;
    for (k, (&u, &n)) in utilization.iter().zip(completions).enumerate() {
        if u > threshold {
            let p = current.get_or_insert(BusyPeriod {
                start: k,
                windows: 0,
                busy_time: 0.0,
                completions: 0,
            });
            p.windows += 1;
            p.busy_time += busy[k];
            p.completions += n;
        } else if let Some(p) = current.take() {
            periods.push(p);
        }
    }
    if let Some(p) = current {
        periods.push(p);
    }
    Ok(periods)
}

/// Output of [`ServicePercentileEstimator`]: the paper's three service-process
/// descriptors that are derivable from busy-time accounting alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusyTimeCharacterization {
    /// Estimated mean service time: total busy time / total completions.
    pub mean_service_time: f64,
    /// Estimated 95th percentile of service times (`p95(B_k) / median(n_k)`).
    pub p95_service_time: f64,
    /// Median completions per busy window, the scaling denominator.
    pub median_completions: f64,
    /// Number of busy windows used.
    pub busy_windows: usize,
}

/// The Section 4.1 estimator for the mean and 95th percentile of service
/// times from `(U_k, n_k)` monitoring windows.
///
/// # Example
/// ```
/// use burstcap_stats::busy::ServicePercentileEstimator;
///
/// // Constant service times of 0.01 s: every fully busy 1-second window
/// // completes 100 requests, so p95(B)/median(n) = 1.0/100 = 0.01.
/// let util = vec![1.0_f64; 200];
/// let n = vec![100_u64; 200];
/// let c = ServicePercentileEstimator::new(1.0).estimate(&util, &n)?;
/// assert!((c.p95_service_time - 0.01).abs() < 1e-9);
/// assert!((c.mean_service_time - 0.01).abs() < 1e-9);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServicePercentileEstimator {
    resolution: f64,
    quantile: f64,
}

impl ServicePercentileEstimator {
    /// Create an estimator for monitoring windows of `resolution` seconds.
    ///
    /// # Panics
    /// Panics if `resolution` is not strictly positive.
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0, "monitoring resolution must be positive");
        ServicePercentileEstimator {
            resolution,
            quantile: 0.95,
        }
    }

    /// Change the estimated quantile (default 0.95).
    pub fn quantile(mut self, q: f64) -> Self {
        self.quantile = q;
        self
    }

    /// Estimate mean and tail service times from monitoring windows.
    ///
    /// Only windows with at least one completion participate; fully idle
    /// windows carry no service-time information.
    ///
    /// # Errors
    /// Rejects mismatched lengths, invalid utilizations/quantiles, and traces
    /// in which no window has completions.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/stats/src/streaming.rs:571`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn estimate(
        &self,
        utilization: &[f64],
        completions: &[u64],
    ) -> Result<BusyTimeCharacterization, StatsError> {
        if utilization.len() != completions.len() {
            return Err(StatsError::LengthMismatch {
                left: utilization.len(),
                right: completions.len(),
            });
        }
        if !(0.0..=1.0).contains(&self.quantile) {
            return Err(StatsError::InvalidParameter {
                name: "quantile",
                reason: format!("must lie in [0, 1], got {}", self.quantile),
            });
        }
        let busy = busy_times(utilization, self.resolution)?;

        let mut busy_samples: Vec<f64> = Vec::new();
        let mut count_samples: Vec<f64> = Vec::new();
        let mut total_busy = 0.0;
        let mut total_completions: u64 = 0;
        for (b, &n) in busy.iter().zip(completions) {
            if n > 0 {
                busy_samples.push(*b);
                count_samples.push(n as f64);
                total_busy += b;
                total_completions += n;
            }
        }
        if busy_samples.is_empty() || total_completions == 0 {
            return Err(StatsError::Degenerate {
                reason: "no window with completions".into(),
            });
        }

        busy_samples.sort_by(f64::total_cmp);
        count_samples.sort_by(f64::total_cmp);
        let p95_busy = percentile_of_sorted(&busy_samples, self.quantile);
        let med_n = percentile_of_sorted(&count_samples, 0.5);
        debug_assert!(med_n >= 1.0);

        Ok(BusyTimeCharacterization {
            mean_service_time: total_busy / total_completions as f64,
            p95_service_time: p95_busy / med_n,
            median_completions: med_n,
            busy_windows: busy_samples.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_times_scale_by_resolution() {
        let b = busy_times(&[0.0, 0.5, 1.0], 60.0).unwrap();
        assert_eq!(b, vec![0.0, 30.0, 60.0]);
    }

    #[test]
    fn busy_times_reject_bad_resolution() {
        assert!(busy_times(&[0.5], 0.0).is_err());
    }

    #[test]
    fn busy_times_reject_bad_utilization() {
        assert!(busy_times(&[1.2], 1.0).is_err());
    }

    #[test]
    fn busy_periods_found_and_merged() {
        let util = [0.0, 0.9, 0.8, 0.0, 0.0, 0.7, 0.0];
        let n = [0u64, 10, 8, 0, 0, 5, 0];
        let periods = busy_periods(&util, &n, 1.0, 0.05).unwrap();
        assert_eq!(periods.len(), 2);
        assert_eq!(periods[0].start, 1);
        assert_eq!(periods[0].windows, 2);
        assert_eq!(periods[0].completions, 18);
        assert!((periods[0].busy_time - 1.7).abs() < 1e-12);
        assert_eq!(periods[1].start, 5);
        assert_eq!(periods[1].completions, 5);
    }

    #[test]
    fn trailing_busy_period_is_closed() {
        let util = [0.0, 1.0, 1.0];
        let n = [0u64, 3, 4];
        let periods = busy_periods(&util, &n, 2.0, 0.0).unwrap();
        assert_eq!(periods.len(), 1);
        assert_eq!(periods[0].completions, 7);
        assert!((periods[0].busy_time - 4.0).abs() < 1e-12);
    }

    #[test]
    fn busy_periods_reject_mismatch() {
        assert!(busy_periods(&[0.5, 0.5], &[1], 1.0, 0.1).is_err());
    }

    #[test]
    fn p95_estimator_constant_service() {
        // Service time exactly 0.02 s: 50 completions per fully busy second.
        let util = vec![1.0; 300];
        let n = vec![50u64; 300];
        let c = ServicePercentileEstimator::new(1.0)
            .estimate(&util, &n)
            .unwrap();
        assert!((c.mean_service_time - 0.02).abs() < 1e-12);
        assert!((c.p95_service_time - 0.02).abs() < 1e-12);
        assert_eq!(c.busy_windows, 300);
    }

    #[test]
    fn p95_estimator_sees_heavy_windows() {
        // Most windows complete 100 quick jobs; a few windows are consumed by
        // 2 huge jobs. The p95 busy time stays ~1s but the median count is
        // 100, so p95(S) ~ 0.01; switch the mix so slow windows dominate the
        // tail: busy time 1s with 2 jobs => S ~ 0.5 in those windows.
        let mut util = Vec::new();
        let mut n = Vec::new();
        for k in 0..400 {
            util.push(1.0);
            // 8% of windows are "slow" (2 completions), the rest fast (100).
            n.push(if k % 12 == 0 { 2u64 } else { 100 });
        }
        let c = ServicePercentileEstimator::new(1.0)
            .estimate(&util, &n)
            .unwrap();
        // Median count is 100 -> p95 service ~ 1/100 = 0.01 (busy time is
        // constant). Mean is pulled up slightly by slow windows.
        assert!(c.mean_service_time > 0.01);
        assert!((c.median_completions - 100.0).abs() < 1e-9);
    }

    #[test]
    fn estimator_skips_idle_windows() {
        let util = [0.0, 1.0, 0.0, 1.0];
        let n = [0u64, 10, 0, 10];
        let c = ServicePercentileEstimator::new(1.0)
            .estimate(&util, &n)
            .unwrap();
        assert_eq!(c.busy_windows, 2);
        assert!((c.mean_service_time - 0.1).abs() < 1e-12);
    }

    #[test]
    fn estimator_rejects_all_idle() {
        let err = ServicePercentileEstimator::new(1.0)
            .estimate(&[0.0; 10], &[0; 10])
            .unwrap_err();
        assert!(matches!(err, StatsError::Degenerate { .. }));
    }

    #[test]
    fn quantile_is_configurable() {
        let util = vec![1.0; 100];
        let n: Vec<u64> = (1..=100).collect();
        let c50 = ServicePercentileEstimator::new(1.0)
            .quantile(0.5)
            .estimate(&util, &n)
            .unwrap();
        let c95 = ServicePercentileEstimator::new(1.0)
            .estimate(&util, &n)
            .unwrap();
        // Busy time constant, so quantile choice only changes numerator; both
        // share the same median denominator.
        assert!((c50.p95_service_time - c95.p95_service_time).abs() < 1e-12);
    }

    #[test]
    fn slow_regime_dominated_trace_has_p95_above_mean() {
        // Most windows complete 4 slow jobs; a minority complete 200 fast
        // jobs. The median count is then 4, so p95(S) ~ 1/4 s, while the mean
        // service time is dragged down by the many fast completions.
        let mut util = Vec::new();
        let mut n = Vec::new();
        for k in 0..1000 {
            util.push(1.0);
            n.push(if k % 3 == 0 { 200u64 } else { 4 });
        }
        let c = ServicePercentileEstimator::new(1.0)
            .estimate(&util, &n)
            .unwrap();
        assert!(
            c.p95_service_time >= c.mean_service_time,
            "p95 {} < mean {}",
            c.p95_service_time,
            c.mean_service_time
        );
        assert!((c.p95_service_time - 0.25).abs() < 1e-9);
    }
}
