//! Index of dispersion estimation — the measurement heart of the paper.
//!
//! The index of dispersion for counts of a service process is defined two
//! equivalent ways in the paper:
//!
//! * **Eq. (1)** — on the service-time series itself:
//!   `I = SCV * (1 + 2 * sum_{k>=1} rho_k)`; impractical on noisy data
//!   because of the infinite sum ([`index_of_dispersion_acf`] implements the
//!   truncated version).
//! * **Eq. (2) / Figure 2** — on the counting process: `I = lim_{t->inf}
//!   Var(N_t) / E[N_t]` where `N_t` counts completions in `t` seconds of
//!   *busy* time. [`DispersionEstimator`] implements the paper's Figure 2
//!   pseudo-code verbatim, consuming per-window utilization samples and
//!   completion counts exactly as produced by `sar` + HP Diagnostics.
//!
//! Because the Figure 2 estimator concatenates busy periods, queueing and idle
//! time are masked out and the dispersion of *completions* approximates the
//! dispersion of the *service process* — the key trick that makes the paper's
//! methodology work from coarse, non-intrusive measurements.

use serde::{Deserialize, Serialize};

use crate::acf::acf_sum;
use crate::descriptive::{mean, scv, variance};
use crate::StatsError;

/// Minimum number of count windows required per aggregation level, as
/// prescribed by step (b) of the paper's Figure 2.
pub const MIN_WINDOWS: usize = 100;

/// Truncated Eq. (1) estimator: `I ≈ SCV * (1 + 2 * sum_{k=1}^{L} rho_k)`.
///
/// This is the *definitional* estimator. It requires the raw service-time
/// series, which production monitoring rarely provides, and is sensitive to
/// noise in the autocorrelation tail; the paper therefore estimates `I` with
/// the counting-process algorithm of Figure 2 instead (see
/// [`DispersionEstimator`]). It remains useful on synthetic traces and in
/// tests, where both estimators must agree.
///
/// # Errors
/// Propagates [`StatsError`] from the SCV and autocorrelation estimators
/// (empty trace, zero variance, trace shorter than `max_lag + 2`).
///
/// # Example
/// ```
/// // An i.i.d. trace has I equal to its SCV (autocorrelations vanish).
/// let mut state = 0x2545F4914F6CDD1D_u64;
/// let trace: Vec<f64> = (0..50_000)
///     .map(|_| {
///         state ^= state << 13;
///         state ^= state >> 7;
///         state ^= state << 17;
///         (state >> 11) as f64 / (1u64 << 53) as f64 + 0.5
///     })
///     .collect();
/// let i = burstcap_stats::dispersion::index_of_dispersion_acf(&trace, 50)?;
/// let scv = burstcap_stats::descriptive::scv(&trace)?;
/// assert!((i - scv).abs() / scv < 0.25);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
pub fn index_of_dispersion_acf(service_times: &[f64], max_lag: usize) -> Result<f64, StatsError> {
    let c2 = scv(service_times)?;
    let s = acf_sum(service_times, max_lag)?;
    Ok(c2 * (1.0 + 2.0 * s))
}

/// One point of the `Y(t) = Var(N_t)/E[N_t]` convergence curve produced by the
/// Figure 2 algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Aggregated busy-time window length `t` (seconds of busy time).
    pub t: f64,
    /// Variance-to-mean ratio of completion counts at this window length.
    pub y: f64,
    /// Number of (overlapping) windows that contributed to this point.
    pub windows: usize,
}

/// Result of the Figure 2 index-of-dispersion estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispersionEstimate {
    index: f64,
    converged: bool,
    curve: Vec<CurvePoint>,
}

impl DispersionEstimate {
    /// Assemble an estimate from its parts — the construction seam shared
    /// with the streaming estimator in [`crate::streaming`], which produces
    /// the same artifact from append-only updates.
    pub(crate) fn from_parts(index: f64, converged: bool, curve: Vec<CurvePoint>) -> Self {
        DispersionEstimate {
            index,
            converged,
            curve,
        }
    }

    /// The estimated index of dispersion `I` (the last computed `Y(t)`).
    pub fn index_of_dispersion(&self) -> f64 {
        self.index
    }

    /// Whether the stopping rule `|1 - Y(t)/Y(t - T)| <= tol` was met.
    ///
    /// When `false`, the estimator ran out of windows before the curve
    /// flattened; the returned value is the paper-prescribed best effort (the
    /// last `Y(t)`), and the caller should consider collecting a longer trace.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The full `Y(t)` convergence curve, one point per aggregation level.
    pub fn curve(&self) -> &[CurvePoint] {
        &self.curve
    }
}

/// The paper's Figure 2 algorithm: estimate `I` from per-window utilization
/// samples and completion counts.
///
/// Configure with the monitoring resolution `T` (seconds per window) and
/// optional knobs, then call [`estimate`](DispersionEstimator::estimate) with
/// the paired series `U_k` (utilization in `[0, 1]`) and `n_k` (completions).
///
/// # Example
/// ```
/// use burstcap_stats::dispersion::DispersionEstimator;
///
/// // A perfectly regular server: every window 50% busy, 30 completions.
/// // Completion counts are deterministic, so I converges towards 0.
/// let util = vec![0.5; 600];
/// let n = vec![30u64; 600];
/// let est = DispersionEstimator::new(60.0).estimate(&util, &n)?;
/// assert!(est.index_of_dispersion() < 0.1);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DispersionEstimator {
    resolution: f64,
    tolerance: f64,
    min_windows: usize,
    max_levels: usize,
    strict: bool,
}

impl DispersionEstimator {
    /// Create an estimator for monitoring windows of `resolution` seconds
    /// (the paper's `T`, e.g. 60 s).
    ///
    /// Defaults: `tolerance = 0.2` (the paper's example value), at least
    /// [`MIN_WINDOWS`] windows per level, at most 512 aggregation levels,
    /// non-strict mode (running out of windows yields a best-effort,
    /// non-converged estimate rather than an error).
    ///
    /// # Panics
    /// Panics if `resolution` is not strictly positive; resolution is a
    /// deployment constant, so a bad value is a programming error.
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0, "monitoring resolution must be positive");
        DispersionEstimator {
            resolution,
            tolerance: 0.2,
            min_windows: MIN_WINDOWS,
            max_levels: 512,
            strict: false,
        }
    }

    /// Set the convergence tolerance of the stopping rule (paper default 0.20).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Set the minimum number of windows per aggregation level (paper: 100).
    pub fn min_windows(mut self, min_windows: usize) -> Self {
        self.min_windows = min_windows;
        self
    }

    /// Cap the number of aggregation levels explored.
    pub fn max_levels(mut self, max_levels: usize) -> Self {
        self.max_levels = max_levels;
        self
    }

    /// In strict mode, running out of windows before convergence is an error
    /// (the paper's "stop and collect new measures"); otherwise the last
    /// `Y(t)` is returned with [`DispersionEstimate::converged`] `== false`.
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Run the Figure 2 algorithm.
    ///
    /// `utilization[k]` is the fraction of window `k` the server was busy;
    /// `completions[k]` is the number of requests completed in window `k`.
    ///
    /// # Errors
    /// * [`StatsError::LengthMismatch`] if the series differ in length.
    /// * [`StatsError::InvalidParameter`] if a utilization is outside
    ///   `[0, 1]` or the tolerance is not positive.
    /// * [`StatsError::TraceTooShort`] if even the first aggregation level
    ///   has fewer than the required windows (or, in strict mode, if any
    ///   level does before convergence).
    /// * [`StatsError::Degenerate`] if no request ever completes.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (6 reachable
    /// panic sites, e.g. `crates/stats/src/dispersion.rs:268`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn estimate(
        &self,
        utilization: &[f64],
        completions: &[u64],
    ) -> Result<DispersionEstimate, StatsError> {
        if utilization.len() != completions.len() {
            return Err(StatsError::LengthMismatch {
                left: utilization.len(),
                right: completions.len(),
            });
        }
        if self.tolerance <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "tolerance",
                reason: format!("must be positive, got {}", self.tolerance),
            });
        }
        if let Some(bad) = utilization
            .iter()
            .find(|u| !(0.0..=1.0).contains(*u) || u.is_nan())
        {
            return Err(StatsError::InvalidParameter {
                name: "utilization",
                reason: format!("samples must lie in [0, 1], found {bad}"),
            });
        }
        if completions.iter().all(|&n| n == 0) {
            return Err(StatsError::Degenerate {
                reason: "no completions observed in any window".into(),
            });
        }

        // Step 1: busy time per window, B_k = U_k * T.
        let busy: Vec<f64> = utilization.iter().map(|u| u * self.resolution).collect();

        let mut curve: Vec<CurvePoint> = Vec::new();
        let mut prev_y: Option<f64> = None;

        // Steps 2-4: grow the aggregated busy-time window t = T, 2T, ... and
        // evaluate Y(t) = Var(N_t)/E[N_t] over all overlapping windows until
        // the stopping rule fires.
        for level in 1..=self.max_levels {
            let t = level as f64 * self.resolution;
            let counts = aggregate_counts(&busy, completions, t);
            if counts.len() < self.min_windows {
                // Step (bb): the trace is too short for this window size.
                if curve.is_empty() {
                    return Err(StatsError::TraceTooShort {
                        got: counts.len(),
                        needed: self.min_windows,
                    });
                }
                if self.strict {
                    return Err(StatsError::TraceTooShort {
                        got: counts.len(),
                        needed: self.min_windows,
                    });
                }
                // burstcap-lint: allow(panic-in-lib) — the curve was checked non-empty directly above
                let last = *curve.last().expect("non-empty checked above");
                return Ok(DispersionEstimate {
                    index: last.y,
                    converged: false,
                    curve,
                });
            }

            // burstcap-lint: allow(panic-in-lib) — window count >= min_windows >= 1 was enforced above
            let e = mean(&counts).expect("window count >= min_windows >= 1");
            if e == 0.0 {
                return Err(StatsError::Degenerate {
                    reason: "mean completion count is zero in busy windows".into(),
                });
            }
            // burstcap-lint: allow(panic-in-lib) — counts are non-empty per the same min_windows bound
            let y = variance(&counts).expect("non-empty") / e;
            curve.push(CurvePoint {
                t,
                y,
                windows: counts.len(),
            });

            if let Some(py) = prev_y {
                // Relative change of Y(t); a flat-at-zero curve (deterministic
                // counts) is converged by definition.
                let rel = if py == 0.0 {
                    if y == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (1.0 - y / py).abs()
                };
                if rel <= self.tolerance {
                    return Ok(DispersionEstimate {
                        index: y,
                        converged: true,
                        curve,
                    });
                }
            }
            prev_y = Some(y);
        }

        // burstcap-lint: allow(panic-in-lib) — max_levels >= 1 guarantees at least one curve point
        let last = *curve.last().expect("max_levels >= 1");
        if self.strict {
            return Err(StatsError::NoConvergence {
                iterations: curve.len(),
            });
        }
        Ok(DispersionEstimate {
            index: last.y,
            converged: false,
            curve,
        })
    }
}

/// Step (a) of Figure 2: for every starting window `k`, concatenate
/// consecutive busy times until at least `t` seconds of busy time accumulate,
/// and record the total completion count. Windows that run off the end of the
/// trace before reaching `t` are discarded.
///
/// Runs in `O(n)` per aggregation level with a sliding window: the busy
/// accumulator is carried from start `k` to start `k + 1` by subtracting
/// `busy[k]` and extending the right edge (which only ever moves forward,
/// busy times being non-negative), and completion counts come from an exact
/// integer prefix sum. The naive rescan-from-every-start variant this
/// replaces — `O(n * w)` with `w` the window span, i.e. `O(n^2)` per level
/// on long traces where the spans grow with the level — is retained as
/// [`aggregate_counts_naive`] for equivalence testing and benchmarking.
///
/// Floating-point note: the accumulator is updated incrementally
/// (`acc - busy[k]`) rather than re-summed per start, so window boundaries
/// can in principle differ from the naive rescan by one ulp of rounding on
/// adversarial inputs; the equivalence tests pin exact agreement on
/// realistic (including long random) traces.
///
/// # Panics
///
/// Only if a justified internal invariant is violated (2 reachable
/// panic sites, e.g. `crates/stats/src/dispersion.rs:356`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn aggregate_counts(busy: &[f64], completions: &[u64], t: f64) -> Vec<f64> {
    let k_max = busy.len();
    // Exact prefix sums of the integer completion counts: count of window
    // [k, j) is prefix[j] - prefix[k], with no float error.
    let mut prefix: Vec<u64> = Vec::with_capacity(k_max + 1);
    prefix.push(0);
    for &c in completions {
        // burstcap-lint: allow(panic-in-lib) — prefix starts with a pushed zero and never shrinks
        prefix.push(prefix.last().expect("non-empty") + c);
    }

    let mut out = Vec::with_capacity(k_max);
    let mut acc = 0.0_f64;
    let mut j = 0usize; // exclusive right edge of the current window
    for k in 0..k_max {
        // Extend the right edge until the window holds t busy-seconds. j
        // never moves left: shrinking the left edge only removes busy time.
        while j < k_max && acc < t {
            acc += busy[j];
            j += 1;
        }
        if acc < t {
            // Every later start would also run out of busy time.
            break;
        }
        out.push((prefix[j] - prefix[k]) as f64);
        acc -= busy[k];
    }
    out
}

/// The original `O(n * w)` reference implementation of
/// [`aggregate_counts`]: rescans forward from every starting window.
/// Retained for exact-equivalence tests and as the benchmark baseline.
///
/// # Panics
///
/// Only if a justified internal invariant is violated (1 reachable
/// panic site, e.g. `crates/stats/src/streaming.rs:571`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
#[doc(hidden)]
pub fn aggregate_counts_naive(busy: &[f64], completions: &[u64], t: f64) -> Vec<f64> {
    let k_max = busy.len();
    let mut out = Vec::with_capacity(k_max);
    for k in 0..k_max {
        let mut acc = 0.0;
        let mut count: u64 = 0;
        let mut j = k;
        while j < k_max && acc < t {
            acc += busy[j];
            count += completions[j];
            j += 1;
        }
        if acc >= t {
            out.push(count as f64);
        } else {
            // Every later start would also run out of busy time.
            break;
        }
    }
    out
}

/// Estimate `I` directly from a raw service-time trace by synthesizing the
/// monitoring windows Figure 2 expects.
///
/// The trace is interpreted as the uninterrupted completion process of a
/// continuously busy server (utilization 1 in every window). Windows of
/// `window` seconds of busy time are cut along the cumulative service time,
/// and the per-window completion counts feed [`DispersionEstimator`]. Used to
/// characterize synthetic traces (the paper's Figure 1) and to cross-check the
/// Eq. (1) estimator.
///
/// A `window` of roughly 20-50 mean service times gives the estimator enough
/// completions per window, matching the paper's advice that "some tens of
/// requests" complete per monitoring window.
///
/// # Errors
/// Propagates estimator errors; additionally rejects non-positive `window`
/// or non-positive service times.
///
/// # Panics
///
/// Only if a justified internal invariant is violated (6 reachable
/// panic sites, e.g. `crates/stats/src/dispersion.rs:268`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn index_of_dispersion_counting(
    service_times: &[f64],
    window: f64,
    tolerance: f64,
) -> Result<DispersionEstimate, StatsError> {
    if window <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "window",
            reason: format!("must be positive, got {window}"),
        });
    }
    if service_times.iter().any(|&s| s < 0.0 || s.is_nan()) {
        return Err(StatsError::InvalidParameter {
            name: "service_times",
            reason: "service times must be non-negative".into(),
        });
    }

    // Cut the cumulative-busy-time axis into windows of `window` seconds and
    // count completions per window.
    let mut counts: Vec<u64> = Vec::new();
    let mut acc = 0.0;
    let mut current: u64 = 0;
    for &s in service_times {
        acc += s;
        current += 1;
        while acc >= window {
            counts.push(current);
            current = 0;
            acc -= window;
        }
    }
    if counts.is_empty() {
        return Err(StatsError::TraceTooShort {
            got: 0,
            needed: MIN_WINDOWS,
        });
    }
    let util = vec![1.0; counts.len()];
    DispersionEstimator::new(window)
        .tolerance(tolerance)
        .estimate(&util, &counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for reproducible test traces.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
        fn exp(&mut self, rate: f64) -> f64 {
            -(1.0 - self.next_f64()).ln() / rate
        }
    }

    fn exponential_trace(n: usize, rate: f64, seed: u64) -> Vec<f64> {
        let mut rng = Rng(seed);
        (0..n).map(|_| rng.exp(rate)).collect()
    }

    #[test]
    fn poisson_like_process_has_i_near_one() {
        // Exponential service times => completion process within busy time is
        // Poisson => I = 1.
        let trace = exponential_trace(200_000, 1.0, 42);
        let est = index_of_dispersion_counting(&trace, 30.0, 0.1).unwrap();
        let i = est.index_of_dispersion();
        assert!((0.7..1.3).contains(&i), "I = {i}, expected ~1");
    }

    #[test]
    fn acf_estimator_matches_scv_for_iid() {
        let trace = exponential_trace(100_000, 2.0, 7);
        let i = index_of_dispersion_acf(&trace, 100).unwrap();
        assert!(
            (0.8..1.2).contains(&i),
            "I = {i}, expected ~1 for iid exponential"
        );
    }

    #[test]
    fn deterministic_counts_give_near_zero_dispersion() {
        let util = vec![1.0; 500];
        let n = vec![25u64; 500];
        let est = DispersionEstimator::new(5.0).estimate(&util, &n).unwrap();
        assert!(est.index_of_dispersion() < 1e-9);
        assert!(est.converged());
    }

    #[test]
    fn bursty_counts_give_large_dispersion() {
        // Alternating long regimes of high/low completion counts => large
        // variance of aggregated counts relative to mean.
        let mut util = Vec::new();
        let mut n = Vec::new();
        for block in 0..40 {
            for _ in 0..25 {
                util.push(1.0);
                n.push(if block % 2 == 0 { 5u64 } else { 95u64 });
            }
        }
        let est = DispersionEstimator::new(1.0).estimate(&util, &n).unwrap();
        assert!(
            est.index_of_dispersion() > 10.0,
            "I = {}, expected >> 1 for regime-switching counts",
            est.index_of_dispersion()
        );
    }

    #[test]
    fn idle_windows_are_concatenated_away() {
        // Interleave idle windows (U=0, n=0) into a regular busy process; the
        // busy-period concatenation must make them irrelevant.
        let mut util = Vec::new();
        let mut n = Vec::new();
        for k in 0..900 {
            if k % 3 == 0 {
                util.push(0.0);
                n.push(0u64);
            } else {
                util.push(1.0);
                n.push(20u64);
            }
        }
        let est = DispersionEstimator::new(2.0).estimate(&util, &n).unwrap();
        assert!(
            est.index_of_dispersion() < 0.5,
            "idle windows must not create spurious dispersion, I = {}",
            est.index_of_dispersion()
        );
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let err = DispersionEstimator::new(1.0)
            .estimate(&[0.5, 0.5], &[1])
            .unwrap_err();
        assert!(matches!(
            err,
            StatsError::LengthMismatch { left: 2, right: 1 }
        ));
    }

    #[test]
    fn utilization_out_of_range_rejected() {
        let err = DispersionEstimator::new(1.0)
            .estimate(&[1.5; 200], &[1; 200])
            .unwrap_err();
        assert!(matches!(
            err,
            StatsError::InvalidParameter {
                name: "utilization",
                ..
            }
        ));
    }

    #[test]
    fn all_idle_trace_is_degenerate() {
        let err = DispersionEstimator::new(1.0)
            .estimate(&[0.0; 200], &[0; 200])
            .unwrap_err();
        assert!(matches!(err, StatsError::Degenerate { .. }));
    }

    #[test]
    fn short_trace_is_rejected() {
        let err = DispersionEstimator::new(1.0)
            .estimate(&[0.5; 10], &[5; 10])
            .unwrap_err();
        assert!(matches!(err, StatsError::TraceTooShort { .. }));
    }

    #[test]
    fn strict_mode_errors_when_not_converged() {
        // Wild nonstationary counts that never satisfy a 1e-6 tolerance.
        let util = vec![1.0; 300];
        let n: Vec<u64> = (0..300).map(|k| 1 + (k % 37) as u64 * 7).collect();
        let res = DispersionEstimator::new(1.0)
            .tolerance(1e-9)
            .strict(true)
            .estimate(&util, &n);
        assert!(res.is_err());
    }

    #[test]
    fn non_strict_mode_returns_best_effort() {
        let util = vec![1.0; 300];
        let n: Vec<u64> = (0..300).map(|k| 1 + (k % 37) as u64 * 7).collect();
        let est = DispersionEstimator::new(1.0)
            .tolerance(1e-9)
            .estimate(&util, &n)
            .unwrap();
        assert!(!est.converged());
        assert!(est.index_of_dispersion().is_finite());
        assert!(!est.curve().is_empty());
    }

    #[test]
    fn curve_reports_window_counts_monotonically_decreasing() {
        let trace = exponential_trace(50_000, 1.0, 99);
        let est = index_of_dispersion_counting(&trace, 25.0, 0.2).unwrap();
        let windows: Vec<usize> = est.curve().iter().map(|p| p.windows).collect();
        assert!(windows.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn aggregate_counts_matches_naive_exactly() {
        // The sliding-window rewrite must reproduce the naive rescan
        // bit-for-bit: long random busy/count series across many window
        // sizes, plus structured corner cases.
        let mut rng = Rng(0xFEED);
        let n = 30_000;
        let busy: Vec<f64> = (0..n).map(|_| rng.next_f64() * 5.0).collect();
        let counts: Vec<u64> = (0..n).map(|_| (rng.next_f64() * 40.0) as u64).collect();
        for level in [1usize, 2, 3, 7, 20, 100, 500] {
            let t = level as f64 * 2.5;
            let fast = aggregate_counts(&busy, &counts, t);
            let naive = aggregate_counts_naive(&busy, &counts, t);
            assert_eq!(fast, naive, "level {level}");
            assert!(!fast.is_empty(), "level {level} should produce windows");
        }
    }

    #[test]
    fn aggregate_counts_matches_naive_on_corner_cases() {
        // Zero busy times interleaved (idle windows), exact-threshold hits,
        // and a window larger than the whole trace.
        let busy = vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 1.0, 1.0];
        let counts = vec![5u64, 0, 9, 0, 0, 12, 3, 4];
        for t in [0.5, 1.0, 2.0, 3.0, 4.0, 8.0, 100.0] {
            assert_eq!(
                aggregate_counts(&busy, &counts, t),
                aggregate_counts_naive(&busy, &counts, t),
                "t = {t}"
            );
        }
        // All-idle trace: no window ever fills.
        assert!(aggregate_counts(&[0.0; 10], &[0; 10], 1.0).is_empty());
        assert!(aggregate_counts_naive(&[0.0; 10], &[0; 10], 1.0).is_empty());
        // Empty input.
        assert!(aggregate_counts(&[], &[], 1.0).is_empty());
    }

    #[test]
    fn aggregate_counts_windows_hold_enough_busy_time() {
        // Every emitted window [k, j) accumulates at least t busy-seconds
        // and drops the final starts that cannot.
        let busy = vec![0.5; 50]; // exactly representable: sums carry no error
        let counts: Vec<u64> = (0..50).collect();
        let t = 2.0; // four windows of 0.5 each
        let out = aggregate_counts(&busy, &counts, t);
        assert_eq!(out.len(), 47);
        // Window starting at k covers counts k..k+4.
        for (k, &c) in out.iter().enumerate() {
            let expect: u64 = (k as u64..k as u64 + 4).sum();
            assert_eq!(c, expect as f64, "window {k}");
        }
    }

    #[test]
    fn counting_helper_rejects_bad_window() {
        assert!(index_of_dispersion_counting(&[1.0, 2.0], 0.0, 0.2).is_err());
    }

    #[test]
    fn counting_helper_rejects_negative_service_times() {
        assert!(index_of_dispersion_counting(&[1.0, -2.0], 1.0, 0.2).is_err());
    }

    #[test]
    fn estimators_agree_on_iid_trace() {
        let trace = exponential_trace(150_000, 1.0, 1234);
        let via_acf = index_of_dispersion_acf(&trace, 50).unwrap();
        let via_counts = index_of_dispersion_counting(&trace, 30.0, 0.1)
            .unwrap()
            .index_of_dispersion();
        assert!(
            (via_acf - via_counts).abs() < 0.4,
            "estimators disagree: acf={via_acf}, counts={via_counts}"
        );
    }
}
