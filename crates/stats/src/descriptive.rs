//! Descriptive statistics: moments, squared coefficient of variation,
//! percentiles, and numerically stable running accumulators.
//!
//! The paper characterizes a service process by its mean, its squared
//! coefficient of variation (SCV), and its 95th percentile; every estimator in
//! this crate bottoms out in the routines defined here.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// Arithmetic mean of a slice.
///
/// Returns an error if the slice is empty.
///
/// # Example
/// ```
/// let m = burstcap_stats::descriptive::mean(&[1.0, 2.0, 3.0])?;
/// assert!((m - 2.0).abs() < 1e-12);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::TraceTooShort { got: 0, needed: 1 });
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population variance (dividing by `n`) of a slice.
///
/// The paper's index-of-dispersion estimator uses the population convention
/// because the windows it aggregates are treated as the full observation, not
/// a sample from a larger design. Returns an error on empty input.
pub fn variance(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance (dividing by `n - 1`).
///
/// Returns an error if fewer than two samples are provided.
pub fn sample_variance(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 2 {
        return Err(StatsError::TraceTooShort {
            got: data.len(),
            needed: 2,
        });
    }
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Squared coefficient of variation `SCV = Var(X) / E[X]^2`.
///
/// `SCV = 1` for exponential samples; the paper's Figure 1 traces all have
/// `SCV = 3`. Returns an error for empty input or zero mean.
pub fn scv(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    if m == 0.0 {
        return Err(StatsError::Degenerate {
            reason: "zero mean".into(),
        });
    }
    Ok(variance(data)? / (m * m))
}

/// Standardized skewness `E[(X - mu)^3] / sigma^3`.
///
/// Used when matching third-order properties of fitted Markovian arrival
/// processes. Returns an error for empty input or zero variance.
pub fn skewness(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    let var = variance(data)?;
    if var == 0.0 {
        return Err(StatsError::Degenerate {
            reason: "zero variance".into(),
        });
    }
    let third = data.iter().map(|x| (x - m).powi(3)).sum::<f64>() / data.len() as f64;
    Ok(third / var.powf(1.5))
}

/// Raw moment `E[X^k]`.
pub fn raw_moment(data: &[f64], k: u32) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::TraceTooShort { got: 0, needed: 1 });
    }
    Ok(data.iter().map(|x| x.powi(k as i32)).sum::<f64>() / data.len() as f64)
}

/// Linear-interpolation percentile (quantile type 7, the R/NumPy default).
///
/// `p` must lie in `[0, 1]`; `p = 0.95` yields the 95th percentile the paper
/// uses to capture the peak-to-mean ratio of service demands.
///
/// # Errors
/// Returns [`StatsError::InvalidParameter`] if `p` is outside `[0, 1]` and
/// [`StatsError::TraceTooShort`] on empty input.
///
/// # Example
/// ```
/// let p95 = burstcap_stats::descriptive::percentile(&[1.0, 2.0, 3.0, 4.0], 0.95)?;
/// assert!(p95 > 3.0 && p95 <= 4.0);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
pub fn percentile(data: &[f64], p: f64) -> Result<f64, StatsError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            reason: format!("must be in [0, 1], got {p}"),
        });
    }
    if data.is_empty() {
        return Err(StatsError::TraceTooShort { got: 0, needed: 1 });
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(percentile_of_sorted(&sorted, p))
}

/// Percentile of data already sorted in ascending order (no copy).
///
/// # Panics
/// Debug-asserts that the data is sorted; callers must guarantee order.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median (50th percentile) of a slice.
pub fn median(data: &[f64]) -> Result<f64, StatsError> {
    percentile(data, 0.5)
}

/// Compact summary of a sample: moments plus selected percentiles.
///
/// This is the "shape card" the workspace passes around when describing a
/// measured service or response-time process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Squared coefficient of variation.
    pub scv: f64,
    /// Smallest observation.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Errors
    /// Returns an error if the sample is empty or has zero mean (SCV
    /// undefined).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/stats/src/descriptive.rs:195`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn from_slice(data: &[f64]) -> Result<Self, StatsError> {
        let m = mean(data)?;
        let var = variance(data)?;
        if m == 0.0 {
            return Err(StatsError::Degenerate {
                reason: "zero mean".into(),
            });
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Summary {
            count: data.len(),
            mean: m,
            variance: var,
            scv: var / (m * m),
            min: sorted[0],
            median: percentile_of_sorted(&sorted, 0.5),
            p95: percentile_of_sorted(&sorted, 0.95),
            // burstcap-lint: allow(panic-in-lib) — the input slice was validated non-empty at entry
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Numerically stable streaming accumulator (Welford's algorithm).
///
/// Lets simulators accumulate millions of response-time observations without
/// storing them. Percentiles require retention, so this type exposes moments
/// only; use [`Summary`] when the full sample is available.
///
/// # Example
/// ```
/// use burstcap_stats::descriptive::RunningStats;
///
/// let mut acc = RunningStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 3);
/// assert!((acc.mean().unwrap() - 4.0).abs() < 1e-12);
/// assert!(RunningStats::new().mean().is_none()); // no data, no mean
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `None` for an empty accumulator.
    ///
    /// An empty accumulator used to report a mean of `0.0`, which silently
    /// turned "no data" into a plausible-looking statistic; the degenerate
    /// case is now explicit, matching [`RunningStats::min`]/[`RunningStats::max`].
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Running population variance; `None` until two observations arrive.
    ///
    /// A single observation has no dispersion information — reporting
    /// `0.0` (as this accessor once did) masked under-sampled series as
    /// perfectly deterministic ones.
    pub fn variance(&self) -> Option<f64> {
        (self.count >= 2).then(|| self.m2 / self.count as f64)
    }

    /// Running squared coefficient of variation; `None` when undefined.
    pub fn scv(&self) -> Option<f64> {
        if self.count < 2 || self.mean == 0.0 {
            None
        } else {
            Some(self.m2 / self.count as f64 / (self.mean * self.mean))
        }
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_is_constant() {
        assert_eq!(mean(&[5.0; 10]).unwrap(), 5.0);
    }

    #[test]
    fn mean_rejects_empty() {
        assert!(matches!(mean(&[]), Err(StatsError::TraceTooShort { .. })));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[2.5; 8]).unwrap(), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Var([1,2,3,4]) with population convention = 1.25.
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let v = sample_variance(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scv_of_exponential_like_pair() {
        // For samples {0, 2m} the SCV is 1: variance m^2, mean m.
        let v = scv(&[0.0, 2.0]).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scv_rejects_zero_mean() {
        assert!(matches!(
            scv(&[-1.0, 1.0]),
            Err(StatsError::Degenerate { .. })
        ));
    }

    #[test]
    fn skewness_of_symmetric_sample_is_zero() {
        let s = skewness(&[-2.0, -1.0, 0.0, 1.0, 2.0]).unwrap();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn skewness_positive_for_right_tail() {
        let s = skewness(&[1.0, 1.0, 1.0, 1.0, 10.0]).unwrap();
        assert!(s > 0.5);
    }

    #[test]
    fn percentile_endpoints() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 1.0).unwrap(), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let p = percentile(&[0.0, 10.0], 0.25).unwrap();
        assert!((p - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_out_of_range_p() {
        assert!(matches!(
            percentile(&[1.0], 1.5),
            Err(StatsError::InvalidParameter { name: "p", .. })
        ));
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn raw_moment_second_matches_variance_identity() {
        let data = [1.0, 2.0, 3.0];
        let m1 = raw_moment(&data, 1).unwrap();
        let m2 = raw_moment(&data, 2).unwrap();
        let var = variance(&data).unwrap();
        assert!((m2 - m1 * m1 - var).abs() < 1e-12);
    }

    #[test]
    fn summary_is_consistent() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!(s.p95 > 4.0 && s.p95 <= 100.0);
        assert!(
            s.scv > 1.0,
            "heavy upper tail must raise SCV above exponential"
        );
    }

    #[test]
    fn running_stats_matches_batch() {
        let data = [0.3, 1.7, 2.9, 0.01, 44.0, 3.3];
        let mut acc = RunningStats::new();
        for &x in &data {
            acc.push(x);
        }
        assert!((acc.mean().unwrap() - mean(&data).unwrap()).abs() < 1e-12);
        assert!((acc.variance().unwrap() - variance(&data).unwrap()).abs() < 1e-9);
        assert_eq!(acc.min(), Some(0.01));
        assert_eq!(acc.max(), Some(44.0));
    }

    #[test]
    fn running_stats_degenerate_moments_are_explicit() {
        // The silent-zero pattern is gone: no observations means no mean,
        // and one observation means no variance or SCV.
        let mut acc = RunningStats::new();
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.variance(), None);
        assert_eq!(acc.scv(), None);
        acc.push(3.0);
        assert_eq!(acc.mean(), Some(3.0));
        assert_eq!(acc.variance(), None);
        assert_eq!(acc.scv(), None);
        acc.push(5.0);
        assert_eq!(acc.variance(), Some(1.0));
    }

    #[test]
    fn running_stats_merge_matches_single_pass() {
        let (a, b) = ([1.0, 2.0, 3.0], [10.0, 20.0]);
        let mut left = RunningStats::new();
        a.iter().for_each(|&x| left.push(x));
        let mut right = RunningStats::new();
        b.iter().for_each(|&x| right.push(x));
        left.merge(&right);

        let mut all = RunningStats::new();
        a.iter().chain(b.iter()).for_each(|&x| all.push(x));
        assert_eq!(left.count(), all.count());
        assert!((left.mean().unwrap() - all.mean().unwrap()).abs() < 1e-12);
        assert!((left.variance().unwrap() - all.variance().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_with_empty_is_identity() {
        let mut acc = RunningStats::new();
        acc.push(4.0);
        let before = acc;
        acc.merge(&RunningStats::new());
        assert_eq!(acc, before);
    }
}
