//! Measurement statistics for bursty workloads.
//!
//! This crate is the measurement substrate of the `burstcap` workspace, the
//! reproduction of *"Burstiness in Multi-tier Applications: Symptoms, Causes,
//! and New Models"* (Mi, Casale, Cherkasova, Smirni — MIDDLEWARE 2008).
//!
//! It provides everything needed to turn **coarse monitoring output**
//! (per-window utilization samples and request-completion counts, exactly what
//! tools like `sar` and HP Diagnostics emit) into the three service-process
//! descriptors the paper's methodology consumes:
//!
//! * the **mean service time**, via utilization-law regression
//!   ([`regression`]),
//! * the **index of dispersion** `I`, via the estimation algorithm of the
//!   paper's Figure 2 ([`dispersion::DispersionEstimator`]),
//! * the **95th percentile** of service times, via busy-period scaling
//!   ([`busy::ServicePercentileEstimator`]).
//!
//! It also provides the symptom detectors of the paper's Section 3
//! ([`bottleneck`]) and classical time-series tooling ([`acf`], [`hurst`],
//! [`descriptive`]) used throughout the workspace.
//!
//! All three descriptor estimators exist in a second, **streaming** form
//! ([`streaming`]): one-pass counterparts that ingest monitoring windows as
//! they arrive (running normal-equation sums, append-only Figure 2
//! aggregation levels, P² quantile sketches) — the substrate of the
//! continuous planner in `burstcap-online`.
//!
//! # Example
//!
//! Estimating the index of dispersion from utilization and completion-count
//! windows (the paper's Figure 2 algorithm):
//!
//! ```
//! use burstcap_stats::dispersion::DispersionEstimator;
//!
//! // 400 monitoring windows of a steady server: utilization 0.5, 30
//! // completions per window. A memoryless service process has I close to 1.
//! let util = vec![0.5_f64; 400];
//! let completions = vec![30_u64; 400];
//! let estimate = DispersionEstimator::new(1.0)
//!     .tolerance(0.2)
//!     .estimate(&util, &completions)?;
//! assert!(estimate.index_of_dispersion() >= 0.0);
//! # Ok::<(), burstcap_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bare `.unwrap()` is banned in library targets; burstcap-lint's
// `panic-in-lib` is the lexical twin (it also covers expect/panic!, with
// justification markers), clippy the type-aware backstop. The test target
// compiles with the allow, so unit tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod acf;
pub mod bottleneck;
pub mod busy;
pub mod ci;
pub mod descriptive;
pub mod dispersion;
mod error;
pub mod hurst;
pub mod regression;
pub mod streaming;

pub use error::StatsError;
