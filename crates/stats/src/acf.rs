//! Autocorrelation analysis of time series.
//!
//! The index of dispersion of a service process (the paper's Eq. (1)) is
//! `I = SCV * (1 + 2 * sum_k rho_k)` where `rho_k` is the lag-`k`
//! autocorrelation coefficient of the service-time series. This module
//! provides the `rho_k` estimators and the truncated-sum machinery that makes
//! that definition usable on finite traces.

use crate::descriptive::{mean, variance};
use crate::StatsError;

/// Lag-`k` autocorrelation coefficient of a series.
///
/// Uses the standard biased estimator (normalizing by `n` and the global
/// variance), which is the convention that keeps the estimated autocorrelation
/// function positive semidefinite.
///
/// # Errors
/// Returns an error if the series has fewer than `k + 2` samples or zero
/// variance.
///
/// # Example
/// ```
/// // An alternating series is perfectly negatively correlated at lag 1.
/// let series = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
/// let rho1 = burstcap_stats::acf::autocorrelation(&series, 1)?;
/// assert!(rho1 < -0.8);
/// # Ok::<(), burstcap_stats::StatsError>(())
/// ```
pub fn autocorrelation(data: &[f64], k: usize) -> Result<f64, StatsError> {
    if data.len() < k + 2 {
        return Err(StatsError::TraceTooShort {
            got: data.len(),
            needed: k + 2,
        });
    }
    let m = mean(data)?;
    let var = variance(data)?;
    if var == 0.0 {
        return Err(StatsError::Degenerate {
            reason: "zero variance".into(),
        });
    }
    let n = data.len();
    let cov: f64 = data[..n - k]
        .iter()
        .zip(&data[k..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum::<f64>()
        / n as f64;
    Ok(cov / var)
}

/// Autocorrelation function for lags `1..=max_lag`.
///
/// # Errors
/// Same conditions as [`autocorrelation`] at the largest requested lag.
pub fn acf(data: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    (1..=max_lag).map(|k| autocorrelation(data, k)).collect()
}

/// Sum of autocorrelations `sum_{k=1}^{max_lag} rho_k`, the quantity inside
/// the paper's Eq. (1).
///
/// The infinite sum is truncated at `max_lag`; see
/// [`crate::dispersion::index_of_dispersion_acf`] for the full Eq. (1)
/// estimator and the discussion of why the paper prefers the counting-process
/// estimator of its Figure 2 for noisy measurements.
pub fn acf_sum(data: &[f64], max_lag: usize) -> Result<f64, StatsError> {
    Ok(acf(data, max_lag)?.iter().sum())
}

/// Effective decorrelation lag: smallest lag at which `|rho_k|` drops below
/// `threshold`, or `None` if it never does within `max_lag`.
///
/// Useful for choosing truncation points and for diagnosing long-range
/// dependence (where no such lag exists for any practical `max_lag`).
pub fn decorrelation_lag(
    data: &[f64],
    threshold: f64,
    max_lag: usize,
) -> Result<Option<usize>, StatsError> {
    if threshold <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "threshold",
            reason: format!("must be positive, got {threshold}"),
        });
    }
    for k in 1..=max_lag {
        if autocorrelation(data, k)?.abs() < threshold {
            return Ok(Some(k));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1(phi: f64, n: usize) -> Vec<f64> {
        // Deterministic AR(1)-like series driven by a fixed pseudo-random
        // sequence (linear congruential) so tests are reproducible without a
        // rand dependency in unit scope.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + next();
                x
            })
            .collect()
    }

    #[test]
    fn constant_series_is_degenerate() {
        assert!(matches!(
            autocorrelation(&[1.0; 50], 1),
            Err(StatsError::Degenerate { .. })
        ));
    }

    #[test]
    fn iid_series_has_negligible_acf() {
        let data = ar1(0.0, 20_000);
        let rho1 = autocorrelation(&data, 1).unwrap();
        assert!(rho1.abs() < 0.05, "rho1 = {rho1}");
    }

    #[test]
    fn positive_ar1_has_positive_acf_decaying() {
        let data = ar1(0.8, 50_000);
        let rho1 = autocorrelation(&data, 1).unwrap();
        let rho5 = autocorrelation(&data, 5).unwrap();
        assert!(rho1 > 0.7, "rho1 = {rho1}");
        assert!(
            rho5 < rho1,
            "acf must decay: rho5 = {rho5} >= rho1 = {rho1}"
        );
        assert!(rho5 > 0.1);
    }

    #[test]
    fn acf_vector_matches_scalar_calls() {
        let data = ar1(0.5, 5_000);
        let v = acf(&data, 4).unwrap();
        assert_eq!(v.len(), 4);
        for (i, &rho) in v.iter().enumerate() {
            assert_eq!(rho, autocorrelation(&data, i + 1).unwrap());
        }
    }

    #[test]
    fn acf_sum_of_iid_is_small() {
        let data = ar1(0.0, 50_000);
        let s = acf_sum(&data, 20).unwrap();
        assert!(s.abs() < 0.2, "sum = {s}");
    }

    #[test]
    fn too_short_series_is_rejected() {
        assert!(matches!(
            autocorrelation(&[1.0, 2.0], 1),
            Err(StatsError::TraceTooShort { .. })
        ));
    }

    #[test]
    fn decorrelation_lag_finds_cutoff() {
        let data = ar1(0.6, 50_000);
        let lag = decorrelation_lag(&data, 0.05, 50).unwrap();
        assert!(lag.is_some());
        assert!(
            lag.unwrap() > 1,
            "an AR(1) with phi=0.6 stays correlated past lag 1"
        );
    }

    #[test]
    fn decorrelation_lag_rejects_bad_threshold() {
        assert!(decorrelation_lag(&[1.0, 2.0, 3.0, 4.0], 0.0, 2).is_err());
    }

    #[test]
    fn lag1_of_perfectly_alternating_series_is_minus_one_ish() {
        let data: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rho1 = autocorrelation(&data, 1).unwrap();
        assert!(rho1 < -0.99);
        let rho2 = autocorrelation(&data, 2).unwrap();
        assert!(rho2 > 0.99);
    }
}
