use std::error::Error;
use std::fmt;

/// Errors produced by the statistics routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input series is empty or shorter than the estimator requires.
    ///
    /// Mirrors step (b) of the paper's Figure 2 algorithm: "if the set of
    /// values has less than 100 elements, stop and collect new measures
    /// because the trace is too short".
    TraceTooShort {
        /// Number of samples the caller provided.
        got: usize,
        /// Minimum number of samples the estimator needs.
        needed: usize,
    },
    /// Two paired input series have different lengths.
    LengthMismatch {
        /// Length of the first series.
        left: usize,
        /// Length of the second series.
        right: usize,
    },
    /// A parameter is outside its valid domain (e.g. a negative sampling
    /// resolution or a utilization outside `[0, 1]`).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The input series is degenerate (zero variance, all idle windows, ...)
    /// so the requested statistic is undefined.
    Degenerate {
        /// Description of what made the input degenerate.
        reason: String,
    },
    /// An iterative estimator failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::TraceTooShort { got, needed } => {
                write!(
                    f,
                    "trace too short: got {got} samples, need at least {needed}"
                )
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired series length mismatch: {left} vs {right}")
            }
            StatsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            StatsError::Degenerate { reason } => write!(f, "degenerate input: {reason}"),
            StatsError::NoConvergence { iterations } => {
                write!(
                    f,
                    "estimator did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = StatsError::TraceTooShort {
            got: 3,
            needed: 100,
        };
        let text = err.to_string();
        assert!(text.contains('3'));
        assert!(text.contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn Error> = Box::new(StatsError::Degenerate {
            reason: "zero variance".into(),
        });
        assert!(err.to_string().contains("zero variance"));
    }
}
