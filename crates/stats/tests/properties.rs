//! Property-based tests for the statistics substrate.

use proptest::prelude::*;

use burstcap_stats::acf::autocorrelation;
use burstcap_stats::busy::busy_times;
use burstcap_stats::descriptive::{mean, percentile, scv, variance, RunningStats, Summary};
use burstcap_stats::dispersion::DispersionEstimator;
use burstcap_stats::regression::{estimate_demand, linear_fit, slope_through_origin};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Welford accumulation agrees with batch formulas on any sample.
    #[test]
    fn running_stats_match_batch(data in prop::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut acc = RunningStats::new();
        data.iter().for_each(|&x| acc.push(x));
        prop_assert!((acc.mean().unwrap() - mean(&data).unwrap()).abs() < 1e-6);
        prop_assert!((acc.variance().unwrap() - variance(&data).unwrap()).abs() < 1.0);
    }

    /// A t confidence interval always brackets its own sample mean, shrinks
    /// monotonically in the confidence level, and stays finite.
    #[test]
    fn mean_ci_brackets_sample_mean(data in prop::collection::vec(-1e3f64..1e3, 2..60)) {
        let narrow = burstcap_stats::ci::mean_ci(&data, 0.90).unwrap();
        let wide = burstcap_stats::ci::mean_ci(&data, 0.99).unwrap();
        let m = mean(&data).unwrap();
        prop_assert!(narrow.contains(m));
        prop_assert!(narrow.half_width.is_finite() && narrow.half_width >= 0.0);
        prop_assert!(wide.half_width >= narrow.half_width);
    }

    /// Variance is translation-invariant and scales quadratically.
    #[test]
    fn variance_affine_laws(
        data in prop::collection::vec(-1e3f64..1e3, 2..100),
        shift in -1e3f64..1e3,
        scale in 0.1f64..10.0,
    ) {
        let v0 = variance(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        prop_assert!((variance(&shifted).unwrap() - v0).abs() < 1e-6 * (1.0 + v0));
        let scaled: Vec<f64> = data.iter().map(|x| x * scale).collect();
        prop_assert!(
            (variance(&scaled).unwrap() - v0 * scale * scale).abs()
                < 1e-6 * (1.0 + v0 * scale * scale)
        );
    }

    /// The summary's percentiles are ordered: min <= median <= p95 <= max.
    #[test]
    fn summary_percentile_order(data in prop::collection::vec(0.001f64..1e5, 1..200)) {
        let s = Summary::from_slice(&data).unwrap();
        prop_assert!(s.min <= s.median + 1e-12);
        prop_assert!(s.median <= s.p95 + 1e-12);
        prop_assert!(s.p95 <= s.max + 1e-12);
    }

    /// Percentile of a constant sample is that constant for any p.
    #[test]
    fn percentile_of_constant(c in 0.1f64..1e3, p in 0.0f64..1.0, n in 1usize..50) {
        let data = vec![c; n];
        prop_assert!((percentile(&data, p).unwrap() - c).abs() < 1e-12);
    }

    /// Autocorrelation is bounded by 1 in magnitude (up to estimator noise).
    #[test]
    fn acf_bounded(data in prop::collection::vec(-1e3f64..1e3, 10..200), k in 1usize..5) {
        if variance(&data).unwrap() > 1e-9 {
            let rho = autocorrelation(&data, k).unwrap();
            prop_assert!(rho.abs() <= 1.0 + 1e-9, "rho = {rho}");
        }
    }

    /// SCV is scale-invariant.
    #[test]
    fn scv_scale_invariant(
        data in prop::collection::vec(0.01f64..1e3, 2..100),
        scale in 0.1f64..100.0,
    ) {
        let base = scv(&data).unwrap();
        let scaled: Vec<f64> = data.iter().map(|x| x * scale).collect();
        prop_assert!((scv(&scaled).unwrap() - base).abs() < 1e-8 * (1.0 + base));
    }

    /// Through-origin regression on exact proportional data recovers the
    /// slope for any positive inputs.
    #[test]
    fn regression_exact_recovery(
        xs in prop::collection::vec(0.1f64..1e3, 1..100),
        slope in 0.001f64..100.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * slope).collect();
        let est = slope_through_origin(&xs, &ys).unwrap();
        prop_assert!((est - slope).abs() / slope < 1e-9);
    }

    /// Linear fit residual of exactly linear data is zero.
    #[test]
    fn linear_fit_exact(
        xs in prop::collection::vec(-1e2f64..1e2, 2..50),
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
    ) {
        // Ensure x has spread.
        let spread: f64 = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let (ia, ib) = linear_fit(&xs, &ys).unwrap();
        prop_assert!((ia - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((ib - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// Busy times never exceed the window resolution.
    #[test]
    fn busy_times_bounded(
        util in prop::collection::vec(0.0f64..1.0, 1..100),
        resolution in 0.1f64..100.0,
    ) {
        let b = busy_times(&util, resolution).unwrap();
        prop_assert!(b.iter().all(|&x| x >= 0.0 && x <= resolution + 1e-12));
    }

    /// The demand regressed from noiseless utilization-law windows matches
    /// the constructed demand for any load pattern.
    #[test]
    fn demand_regression_noiseless(
        counts in prop::collection::vec(1u64..500, 5..200),
        demand in 1e-5f64..1e-2,
    ) {
        let resolution = 10.0;
        let util: Vec<f64> = counts
            .iter()
            .map(|&n| ((n as f64) * demand / resolution).min(1.0))
            .collect();
        // Skip saturated patterns where clamping breaks the law.
        prop_assume!(util.iter().all(|&u| u < 1.0));
        let d = estimate_demand(&util, &counts, resolution).unwrap();
        prop_assert!((d.mean_service_time - demand).abs() / demand < 1e-9);
    }

    /// The Figure 2 estimator returns a non-negative, finite index for any
    /// plausible monitoring series with enough windows.
    #[test]
    fn dispersion_estimator_total(
        counts in prop::collection::vec(1u64..1000, 150..400),
        util_base in 0.05f64..0.95,
    ) {
        let util = vec![util_base; counts.len()];
        let est = DispersionEstimator::new(5.0)
            .tolerance(0.2)
            .estimate(&util, &counts)
            .unwrap();
        prop_assert!(est.index_of_dispersion().is_finite());
        prop_assert!(est.index_of_dispersion() >= 0.0);
        prop_assert!(!est.curve().is_empty());
    }
}
