//! Streaming-vs-batch equivalence properties.
//!
//! The continuous planner in `burstcap-online` trusts the streaming
//! estimators to reproduce their batch counterparts on identical window
//! sequences. These properties pin the contract:
//!
//! * the incremental utilization-law regressor's normal-equation **sums are
//!   bit-identical** to the batch pass (so the demand slope is too);
//! * the streaming Figure 2 levels emit **exactly** the aggregated counts of
//!   `aggregate_counts` (windows, sums, and sums of squares as exact
//!   integers), and the resulting `Y(t)` curve and stopping behaviour match
//!   the batch estimator to integer-vs-two-pass rounding;
//! * the P² sketches carry bounded error against the exact order statistics
//!   (looser: a five-marker sketch is an approximation by design).

use proptest::prelude::*;

use burstcap_stats::descriptive::percentile_of_sorted;
use burstcap_stats::dispersion::{aggregate_counts, DispersionEstimator};
use burstcap_stats::regression::estimate_demand;
use burstcap_stats::streaming::{
    P2Quantile, StreamingDemand, StreamingDispersion, StreamingServicePercentile,
};

/// A random monitoring stream: paired (utilization, completions) windows
/// with enough busy mass that every estimator has material to work on.
fn window_stream() -> impl Strategy<Value = Vec<(f64, u64)>> {
    prop::collection::vec((0.05f64..1.0, 0u64..120), 150..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental regressor reproduces the batch normal-equation sums
    /// bit-for-bit, hence the identical slope.
    #[test]
    fn streaming_demand_sums_are_exact(windows in window_stream(), resolution in 0.5f64..60.0) {
        let mut stream = StreamingDemand::new(resolution);
        let mut util = Vec::with_capacity(windows.len());
        let mut counts = Vec::with_capacity(windows.len());
        for &(u, n) in &windows {
            stream.push(u, n).unwrap();
            util.push(u);
            counts.push(n);
        }
        prop_assume!(counts.iter().any(|&n| n > 0));

        // Reproduce the batch pass's sums: sxx over counts, sxy against busy
        // times, in window order.
        let x: Vec<f64> = counts.iter().map(|&n| n as f64).collect();
        let busy: Vec<f64> = util.iter().map(|u| u * resolution).collect();
        let sxx: f64 = x.iter().map(|v| v * v).sum();
        let sxy: f64 = x.iter().zip(&busy).map(|(a, b)| a * b).sum();
        let (stream_sxx, stream_sxy) = stream.normal_sums();
        prop_assert_eq!(stream_sxx.to_bits(), sxx.to_bits());
        prop_assert_eq!(stream_sxy.to_bits(), sxy.to_bits());

        let batch = estimate_demand(&util, &counts, resolution).unwrap();
        let online = stream.estimate().unwrap();
        prop_assert_eq!(
            online.mean_service_time.to_bits(),
            batch.mean_service_time.to_bits()
        );
        // R^2 is computed one-pass vs two-pass: same quantity up to rounding.
        prop_assert!((online.r_squared - batch.r_squared).abs() < 1e-6);
    }

    /// Every streaming aggregation level holds exactly the multiset of
    /// aggregated counts the batch sliding-window pass emits.
    #[test]
    fn streaming_dispersion_levels_are_exact(windows in window_stream()) {
        let resolution = 2.0;
        let mut stream = StreamingDispersion::new(resolution).max_levels(24);
        let mut util = Vec::with_capacity(windows.len());
        let mut counts = Vec::with_capacity(windows.len());
        for &(u, n) in &windows {
            stream.push(u, n).unwrap();
            util.push(u);
            counts.push(n);
        }
        let busy: Vec<f64> = util.iter().map(|u| u * resolution).collect();
        for level in 1..=24usize {
            let t = level as f64 * resolution;
            let batch = aggregate_counts(&busy, &counts, t);
            let stats = stream.level_stats(level).unwrap();
            prop_assert!(
                stats.windows as usize == batch.len(),
                "window count diverged at level {}", level
            );
            let sum: u64 = batch.iter().map(|&c| c as u64).sum();
            let sum_sq: u128 = batch.iter().map(|&c| {
                let c = c as u128;
                c * c
            }).sum();
            prop_assert!(stats.sum == sum, "count sum diverged at level {}", level);
            prop_assert!(stats.sum_sq == sum_sq, "count sum of squares diverged at level {}", level);
        }
    }

    /// The full streaming estimate — curve, convergence flag, and final I —
    /// matches the batch Figure 2 estimator on the same stream.
    #[test]
    fn streaming_dispersion_estimate_matches_batch(windows in window_stream()) {
        let resolution = 5.0;
        let mut stream = StreamingDispersion::new(resolution).tolerance(0.1);
        let mut util = Vec::with_capacity(windows.len());
        let mut counts = Vec::with_capacity(windows.len());
        for &(u, n) in &windows {
            stream.push(u, n).unwrap();
            util.push(u);
            counts.push(n);
        }
        prop_assume!(counts.iter().any(|&n| n > 0));
        let batch = DispersionEstimator::new(resolution)
            .tolerance(0.1)
            .estimate(&util, &counts);
        let online = stream.estimate();
        match (batch, online) {
            (Ok(b), Ok(o)) => {
                prop_assert_eq!(o.converged(), b.converged());
                prop_assert_eq!(o.curve().len(), b.curve().len());
                for (po, pb) in o.curve().iter().zip(b.curve()) {
                    prop_assert_eq!(po.windows, pb.windows);
                    prop_assert!((po.t - pb.t).abs() < 1e-12);
                    let tol = 1e-9 * (1.0 + pb.y.abs());
                    prop_assert!((po.y - pb.y).abs() < tol, "Y {} vs {}", po.y, pb.y);
                }
                let tol = 1e-9 * (1.0 + b.index_of_dispersion().abs());
                prop_assert!((o.index_of_dispersion() - b.index_of_dispersion()).abs() < tol);
            }
            (Err(_), Err(_)) => {}
            (b, o) => prop_assert!(false, "batch {:?} vs streaming {:?} disagree on failure", b, o),
        }
    }

    /// The P² sketch lands within a bounded band of the exact quantile on
    /// long streams.
    #[test]
    fn p2_sketch_error_is_bounded(
        seeds in prop::collection::vec(0.0f64..1.0, 3000..8000),
        p in 0.5f64..0.97,
    ) {
        // Smooth heavy-ish tail: inverse-CDF of an exponential keeps the
        // order statistics well separated.
        let data: Vec<f64> = seeds.iter().map(|&u| -(1.0 - u * 0.9999).ln()).collect();
        let mut sketch = P2Quantile::new(p);
        data.iter().for_each(|&x| sketch.push(x));
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = percentile_of_sorted(&sorted, p);
        let est = sketch.quantile().unwrap();
        // Five markers on thousands of smooth samples: ~percent-level error;
        // additionally the estimate must sit inside a neighbouring-quantile
        // band of the exact distribution.
        prop_assert!((est - exact).abs() / exact < 0.10, "sketch {} vs exact {}", est, exact);
        let lo = percentile_of_sorted(&sorted, (p - 0.05).max(0.0));
        let hi = percentile_of_sorted(&sorted, (p + 0.03).min(1.0));
        prop_assert!(est >= lo && est <= hi, "sketch {} outside [{}, {}]", est, lo, hi);
    }

    /// The streaming tail estimator tracks the batch Section 4.1 estimator:
    /// exact mean, sketch-bounded p95.
    #[test]
    fn streaming_tail_tracks_batch(windows in window_stream()) {
        let resolution = 3.0;
        let mut stream = StreamingServicePercentile::new(resolution);
        let mut util = Vec::with_capacity(windows.len());
        let mut counts = Vec::with_capacity(windows.len());
        for &(u, n) in &windows {
            stream.push(u, n).unwrap();
            util.push(u);
            counts.push(n);
        }
        prop_assume!(windows.iter().filter(|&&(_, n)| n > 0).count() >= 200);
        let batch = burstcap_stats::busy::ServicePercentileEstimator::new(resolution)
            .estimate(&util, &counts)
            .unwrap();
        let online = stream.estimate().unwrap();
        // The running totals add the same busy times in the same order.
        prop_assert_eq!(
            online.mean_service_time.to_bits(),
            batch.mean_service_time.to_bits()
        );
        prop_assert_eq!(online.busy_windows, batch.busy_windows);
        // Both quantile sketches are approximations; allow their combined
        // error. Uniform busy times and counts make this a mild target.
        let rel = (online.p95_service_time - batch.p95_service_time).abs()
            / batch.p95_service_time;
        prop_assert!(rel < 0.25, "p95 {} vs {}", online.p95_service_time, batch.p95_service_time);
    }
}
