//! The paper's Section 4.1 MAP(2) fitting pipeline.
//!
//! The methodology characterizes a service process by exactly three measured
//! numbers — **mean**, **index of dispersion `I`**, and **95th percentile** —
//! and asks for a MAP(2) matching them: *"we generate a set of MAP(2)s that
//! have ±20% maximal error on I. Among this set of MAP(2)s, we choose the one
//! with its 95th percentile closest to the trace"*, breaking ties toward the
//! largest lag-1 autocorrelation (footnote 8: a slightly more aggressive
//! burstiness profile gives conservative capacity estimates).
//!
//! [`Map2Fitter`] implements that search over the *mixed-phase family*
//! ([`Map2::from_hyper_marginal`]): candidates are two-phase hyperexponential
//! marginals parameterized by `(scv, p)` — the mixture weight `p` is a free
//! third degree of freedom beyond mean and SCV — and for each marginal the
//! phase-persistence `gamma` is bisected so the candidate's asymptotic index
//! of dispersion hits the target *exactly* (well inside the paper's ±20%
//! band). The p95 of the marginal then ranks the candidates. Because the
//! family keeps the marginal invariant in `gamma`, the search is
//! well-conditioned: `I` and p95 are controlled by separate knobs.

use serde::{Deserialize, Serialize};

use crate::map2::Map2;
use crate::ph::Ph2;
use crate::MapError;

/// Default relative tolerance on the index of dispersion (the paper's ±20%).
pub const DEFAULT_I_TOLERANCE: f64 = 0.2;

/// The smallest index-of-dispersion target the opt-in
/// [`Map2Fitter::i_floor`] raises infeasible requests to: slightly above
/// the `I = 1/2` floor of two-phase processes.
pub const MIN_FEASIBLE_I: f64 = 0.51;

/// One candidate examined by the fitter, retained for diagnostics and
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// SCV of the candidate's marginal.
    pub scv: f64,
    /// Mixture weight of the fast phase in the marginal.
    pub p: f64,
    /// Phase persistence selected by the bisection.
    pub gamma: f64,
    /// Index of dispersion achieved.
    pub achieved_i: f64,
    /// 95th percentile of the candidate's stationary inter-event time.
    pub achieved_p95: f64,
    /// Lag-1 autocorrelation (the tie-break criterion).
    pub rho1: f64,
}

/// A fitted MAP(2) together with fit diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedMap2 {
    map: Map2,
    chosen: Candidate,
    target_mean: f64,
    target_i: f64,
    target_p95: f64,
    floored_target_i: Option<f64>,
    candidates: Vec<Candidate>,
}

impl FittedMap2 {
    /// The fitted process.
    pub fn map(&self) -> Map2 {
        self.map
    }

    /// The winning candidate's parameters and achieved descriptors.
    pub fn chosen(&self) -> &Candidate {
        &self.chosen
    }

    /// Every candidate that survived the ±tolerance filter on `I`, sorted by
    /// p95 distance (the selection order).
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Relative error of the achieved index of dispersion vs the target.
    pub fn i_error(&self) -> f64 {
        (self.chosen.achieved_i - self.target_i).abs() / self.target_i
    }

    /// Relative error of the achieved p95 vs the target.
    pub fn p95_error(&self) -> f64 {
        (self.chosen.achieved_p95 - self.target_p95).abs() / self.target_p95
    }

    /// When the requested index of dispersion was below the two-phase
    /// feasibility floor and the opt-in [`Map2Fitter::i_floor`] raised it to
    /// [`MIN_FEASIBLE_I`], this records the **original** request; `None`
    /// means the fit targeted the requested `I` unmodified. The adjustment
    /// used to happen silently in callers (`.max(0.51)`); it is now an
    /// explicit, queryable part of the fit diagnostics.
    pub fn floored_target_i(&self) -> Option<f64> {
        self.floored_target_i
    }
}

/// Builder implementing the Section 4.1 fitting search.
///
/// # Example
/// ```
/// use burstcap_map::fit::Map2Fitter;
///
/// let fitted = Map2Fitter::new(1.0, 50.0, 3.5).fit()?;
/// assert!(fitted.i_error() < 0.2, "I within the paper's band");
/// assert!((fitted.map().mean() - 1.0).abs() < 1e-9);
/// # Ok::<(), burstcap_map::MapError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Map2Fitter {
    mean: f64,
    index_of_dispersion: f64,
    p95: f64,
    i_tolerance: f64,
    scv_grid_size: usize,
    p_grid_size: usize,
    max_scv: f64,
    floor_low_i: bool,
}

impl Map2Fitter {
    /// Target the three descriptors of the paper's methodology: mean service
    /// time, index of dispersion, and 95th percentile of service times.
    pub fn new(mean: f64, index_of_dispersion: f64, p95: f64) -> Self {
        Map2Fitter {
            mean,
            index_of_dispersion,
            p95,
            i_tolerance: DEFAULT_I_TOLERANCE,
            scv_grid_size: 16,
            p_grid_size: 12,
            max_scv: 512.0,
            floor_low_i: false,
        }
    }

    /// Relative tolerance on `I` (default ±20%, the paper's band).
    pub fn i_tolerance(mut self, tol: f64) -> Self {
        self.i_tolerance = tol;
        self
    }

    /// Number of SCV grid points searched (default 16).
    pub fn scv_grid_size(mut self, n: usize) -> Self {
        self.scv_grid_size = n;
        self
    }

    /// Number of mixture-weight grid points per SCV (default 12).
    pub fn p_grid_size(mut self, n: usize) -> Self {
        self.p_grid_size = n;
        self
    }

    /// Upper cap on marginal SCV explored (default 512).
    pub fn max_scv(mut self, cap: f64) -> Self {
        self.max_scv = cap;
        self
    }

    /// Opt into raising an infeasibly low index-of-dispersion target to
    /// [`MIN_FEASIBLE_I`] instead of failing. The adjustment is recorded in
    /// [`FittedMap2::floored_target_i`] — nothing is clamped silently.
    /// Intended for pipeline callers (the capacity planner) whose estimators
    /// can wobble below `1/2` on nearly deterministic tiers, where
    /// burstiness is irrelevant anyway. Default: disabled, so
    /// genuinely underdispersed targets surface as
    /// [`MapError::FitInfeasible`].
    pub fn i_floor(mut self, enable: bool) -> Self {
        self.floor_low_i = enable;
        self
    }

    /// Run the search.
    ///
    /// # Errors
    /// * [`MapError::InvalidParameter`] for non-positive targets or
    ///   tolerance.
    /// * [`MapError::FitInfeasible`] if no candidate lands within the `I`
    ///   tolerance band (e.g. `I < 1/2`, unreachable by any MAP(2) built on
    ///   a two-phase marginal).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (3 reachable
    /// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn fit(&self) -> Result<FittedMap2, MapError> {
        // Opt-in floor for infeasibly low targets: rerun the search at the
        // floor and record the original request instead of clamping
        // silently. Runs before positivity validation — a deterministic
        // tier legitimately measures I = 0, and the floor exists precisely
        // for such callers.
        if self.floor_low_i
            && self.index_of_dispersion.is_finite()
            && self.index_of_dispersion < MIN_FEASIBLE_I
        {
            let mut raised = self.clone();
            raised.index_of_dispersion = MIN_FEASIBLE_I;
            raised.floor_low_i = false;
            let mut fitted = raised.fit()?;
            fitted.floored_target_i = Some(self.index_of_dispersion);
            return Ok(fitted);
        }

        for (name, v) in [
            ("mean", self.mean),
            ("index_of_dispersion", self.index_of_dispersion),
            ("p95", self.p95),
            ("i_tolerance", self.i_tolerance),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(MapError::InvalidParameter {
                    name: match name {
                        "mean" => "mean",
                        "index_of_dispersion" => "index_of_dispersion",
                        "p95" => "p95",
                        _ => "i_tolerance",
                    },
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }

        let mut candidates: Vec<Candidate> = Vec::new();

        // Low-variability targets: a renewal process already provides
        // I = SCV, including SCV < 1 via a hypoexponential marginal.
        if self.index_of_dispersion < 1.0 {
            if self.index_of_dispersion < 0.5 * (1.0 - self.i_tolerance) {
                return Err(MapError::FitInfeasible {
                    reason: format!(
                        "index of dispersion {} below the 1/2 floor of two-phase processes",
                        self.index_of_dispersion
                    ),
                });
            }
            // burstcap-lint: allow(silent-clamp) — infeasible I < 1/2 already rejected above; the clamp projects onto the SCV range this two-phase candidate family can represent
            let scv = self.index_of_dispersion.clamp(0.5, 1.0);
            let marginal = Ph2::from_mean_scv(self.mean, scv)?;
            let map = renewal_map2(marginal)?;
            let cand = Candidate {
                scv,
                p: 1.0,
                gamma: 0.0,
                achieved_i: map.index_of_dispersion(),
                achieved_p95: map.quantile(0.95)?,
                rho1: 0.0,
            };
            return Ok(FittedMap2 {
                map,
                chosen: cand,
                target_mean: self.mean,
                target_i: self.index_of_dispersion,
                target_p95: self.p95,
                floored_target_i: None,
                candidates: vec![cand],
            });
        }

        // Hyperexponential candidate grid: scv in (1, min(I, max_scv)],
        // geometric spacing; mixture weight p on an interior grid.
        let scv_hi = self.index_of_dispersion.min(self.max_scv).max(1.1);
        let scv_lo = 1.05_f64.min(scv_hi);
        for gi in 0..self.scv_grid_size {
            let f = gi as f64 / (self.scv_grid_size.saturating_sub(1)).max(1) as f64;
            let scv = scv_lo * (scv_hi / scv_lo).powf(f);
            for pj in 0..self.p_grid_size {
                let p = 0.5 + 0.499 * (pj as f64 + 0.5) / self.p_grid_size as f64;
                let Some(marginal) = h2_with_weight(self.mean, scv, p) else {
                    continue;
                };
                let Some(cand) = self.tune_gamma(marginal, scv, p) else {
                    continue;
                };
                if (cand.achieved_i - self.index_of_dispersion).abs()
                    <= self.i_tolerance * self.index_of_dispersion
                {
                    candidates.push(cand);
                }
            }
        }

        if candidates.is_empty() {
            return Err(MapError::FitInfeasible {
                reason: format!(
                    "no MAP(2) candidate within ±{:.0}% of I = {}",
                    self.i_tolerance * 100.0,
                    self.index_of_dispersion
                ),
            });
        }

        let chosen =
            select_candidate(&mut candidates, self.p95).ok_or_else(|| MapError::FitInfeasible {
                reason: format!(
                    "every candidate within ±{:.0}% of I = {} carried a non-finite \
                     p95 or lag-1 autocorrelation",
                    self.i_tolerance * 100.0,
                    self.index_of_dispersion
                ),
            })?;

        let marginal = h2_with_weight(self.mean, chosen.scv, chosen.p)
            // burstcap-lint: allow(panic-in-lib) — the chosen candidate was built from this same feasible marginal during search
            .expect("chosen candidate was constructed from a feasible marginal");
        let map = Map2::from_hyper_marginal(marginal, chosen.gamma)?;
        Ok(FittedMap2 {
            map,
            chosen,
            target_mean: self.mean,
            target_i: self.index_of_dispersion,
            target_p95: self.p95,
            floored_target_i: None,
            candidates,
        })
    }

    /// Bisect `gamma` so the candidate's asymptotic `I` matches the target.
    /// Returns `None` when the target is below the candidate's feasible floor.
    fn tune_gamma(&self, marginal: Ph2, scv: f64, p: f64) -> Option<Candidate> {
        let target = self.index_of_dispersion;
        let i_of = |gamma: f64| -> Option<f64> {
            Map2::from_hyper_marginal(marginal, gamma)
                .ok()
                .map(|m| m.index_of_dispersion())
        };
        // gamma = 0 gives I = scv; I is monotone increasing in gamma.
        let (mut lo, mut hi) = (0.0_f64, 1.0 - 1e-12);
        let i_lo = i_of(lo)?;
        if target < i_lo {
            // Try the negative-correlation range down to the feasibility
            // floor of D1 >= 0.
            let q = 1.0 - p;
            let gamma_min = -(p / q).min(q / p) + 1e-9;
            let i_min = i_of(gamma_min)?;
            if target < i_min {
                return None;
            }
            lo = gamma_min;
            hi = 0.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let i_mid = i_of(mid)?;
            if i_mid < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let gamma = 0.5 * (lo + hi);
        let map = Map2::from_hyper_marginal(marginal, gamma).ok()?;
        let cand = Candidate {
            scv,
            p,
            gamma,
            achieved_i: map.index_of_dispersion(),
            achieved_p95: map.quantile(0.95).ok()?,
            rho1: map.lag1_correlation(),
        };
        // Extreme marginals can push the descriptors to NaN/inf; such a
        // candidate must never reach the ranking stage.
        (cand.achieved_i.is_finite() && cand.achieved_p95.is_finite() && cand.rho1.is_finite())
            .then_some(cand)
    }
}

/// Rank candidates by p95 distance (footnote 8 of the paper: ties break
/// toward the largest lag-1 autocorrelation) and return the winner, leaving
/// the list sorted in selection order.
///
/// Candidates with a non-finite achieved `I`, p95, or `rho1` are discarded
/// before ranking — the tuned `gamma` of an extreme marginal can push the
/// quantile inversion or autocorrelation into NaN/inf territory, and the
/// old comparator panicked (`.expect("p95 distances are finite")`) instead
/// of skipping them. Returns `None` when nothing survives.
fn select_candidate(candidates: &mut Vec<Candidate>, target_p95: f64) -> Option<Candidate> {
    candidates
        .retain(|c| c.achieved_i.is_finite() && c.achieved_p95.is_finite() && c.rho1.is_finite());
    if candidates.is_empty() {
        return None;
    }
    // Rank: p95 distance first, then (footnote 8) largest rho1 among
    // near-ties. total_cmp: every retained value is finite, but the order
    // must not be able to panic again.
    candidates.sort_by(|a, b| {
        let da = (a.achieved_p95 - target_p95).abs();
        let db = (b.achieved_p95 - target_p95).abs();
        da.total_cmp(&db).then(b.rho1.total_cmp(&a.rho1))
    });
    let best_d = (candidates[0].achieved_p95 - target_p95).abs();
    let tie_band = best_d * 1.001 + 1e-15;
    candidates
        .iter()
        .filter(|c| (c.achieved_p95 - target_p95).abs() <= tie_band)
        .max_by(|a, b| a.rho1.total_cmp(&b.rho1))
        .copied()
}

/// A renewal MAP(2) (i.i.d. inter-event times) with the given two-phase
/// marginal; its index of dispersion equals the marginal's SCV.
///
/// # Errors
/// Propagates construction errors for degenerate marginals.
///
/// # Panics
///
/// Only if a justified internal invariant is violated (1 reachable
/// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn renewal_map2(marginal: Ph2) -> Result<Map2, MapError> {
    match marginal {
        Ph2::Hyper { .. } => Map2::from_hyper_marginal(marginal, 0.0),
        Ph2::Hypo { rate1, rate2 } => {
            // Sequential phases; every event restarts in phase 1.
            Map2::new([[-rate1, rate1], [0.0, -rate2]], [[0.0, 0.0], [rate2, 0.0]])
        }
    }
}

/// General (non-balanced) two-phase hyperexponential with mean `m`, SCV
/// `c2 > 1`, and fast-phase weight `p`. Returns `None` outside the feasible
/// region.
fn h2_with_weight(m: f64, c2: f64, p: f64) -> Option<Ph2> {
    if !(0.0 < p && p < 1.0) || c2 <= 1.0 {
        return None;
    }
    let q = 1.0 - p;
    // Solve for normalized phase means a = u1/m, b = u2/m:
    //   p a + q b = 1,  2 p a^2 + 2 q b^2 = c2 + 1.
    let disc = 1.0 - (2.0 - p * (c2 + 1.0)) / (2.0 * q);
    if disc < 0.0 {
        return None;
    }
    let b = 1.0 + disc.sqrt();
    let a = (1.0 - q * b) / p;
    if a <= 1e-9 || b <= 0.0 {
        return None;
    }
    let (u1, u2) = (a * m, b * m);
    // Convention: phase 1 is the fast phase.
    if u1 >= u2 {
        return None;
    }
    Some(Ph2::Hyper {
        p,
        rate1: 1.0 / u1,
        rate2: 1.0 / u2,
    })
}

/// Fit a MAP(2) directly from a raw service-time trace: estimates the mean,
/// the index of dispersion (counting-process estimator over busy windows of
/// `window` seconds with stopping tolerance `tolerance`), and the empirical
/// 95th percentile, then runs [`Map2Fitter`].
///
/// A tight tolerance (0.02-0.05) is recommended when the trace is long: the
/// `Y(t)` curve of strongly bursty processes climbs slowly, and a loose
/// stopping rule (the paper's illustrative 0.2) cuts the climb short and
/// underestimates `I`.
///
/// The estimated index of dispersion is passed to the fitter **unmodified**:
/// a genuinely underdispersed trace (`I` at or below the `1/2` floor of
/// two-phase processes) surfaces as [`MapError::FitInfeasible`] instead of
/// being silently clamped to the floor, which used to hide the evidence
/// that the trace is *less* variable than any MAP(2) this family can
/// produce. Callers that prefer a best-effort floor can run [`Map2Fitter`]
/// themselves with [`Map2Fitter::i_floor`], which records the adjustment.
///
/// # Errors
/// Propagates estimation errors (trace too short for the Figure 2 algorithm)
/// and underdispersed traces as [`MapError::FitInfeasible`], plus fitting
/// errors.
///
/// # Panics
///
/// Only if a justified internal invariant is violated (9 reachable
/// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn fit_from_trace(
    service_times: &[f64],
    window: f64,
    tolerance: f64,
) -> Result<FittedMap2, MapError> {
    let est =
        burstcap_stats::dispersion::index_of_dispersion_counting(service_times, window, tolerance)
            .map_err(|e| MapError::FitInfeasible {
                reason: format!("I estimation failed: {e}"),
            })?;
    let mean =
        burstcap_stats::descriptive::mean(service_times).map_err(|e| MapError::FitInfeasible {
            reason: e.to_string(),
        })?;
    let p95 = burstcap_stats::descriptive::percentile(service_times, 0.95).map_err(|e| {
        MapError::FitInfeasible {
            reason: e.to_string(),
        }
    })?;
    let i = est.index_of_dispersion();
    if !(i > 0.0) || !i.is_finite() {
        return Err(MapError::FitInfeasible {
            reason: format!(
                "estimated index of dispersion {i} is outside the MAP(2) feasible range \
                 (the trace's counting process is effectively deterministic)"
            ),
        });
    }
    Map2Fitter::new(mean, i, p95).fit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_bursty_target_exactly_on_i() {
        let fitted = Map2Fitter::new(1.0, 300.0, 2.0).fit().unwrap();
        assert!(
            fitted.i_error() < 1e-6,
            "bisection should nail I, err = {}",
            fitted.i_error()
        );
        assert!((fitted.map().mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fits_moderate_target() {
        let fitted = Map2Fitter::new(0.005, 40.0, 0.02).fit().unwrap();
        let m = fitted.map();
        assert!((m.mean() - 0.005).abs() / 0.005 < 1e-9);
        assert!((m.index_of_dispersion() - 40.0).abs() / 40.0 < 0.2);
    }

    #[test]
    fn p95_selection_prefers_closer_candidates() {
        // Same mean and I, very different p95 targets: the chosen marginals
        // must differ and each approach its own target.
        let low = Map2Fitter::new(1.0, 100.0, 1.8).fit().unwrap();
        let high = Map2Fitter::new(1.0, 100.0, 4.5).fit().unwrap();
        assert!(
            low.chosen().achieved_p95 < high.chosen().achieved_p95,
            "p95 selection must differentiate candidates: {} vs {}",
            low.chosen().achieved_p95,
            high.chosen().achieved_p95
        );
    }

    #[test]
    fn near_poisson_target() {
        let fitted = Map2Fitter::new(2.0, 1.05, 6.0).fit().unwrap();
        let m = fitted.map();
        assert!((m.index_of_dispersion() - 1.05).abs() / 1.05 < 0.2);
    }

    #[test]
    fn sub_exponential_target_uses_renewal_hypo() {
        let fitted = Map2Fitter::new(1.0, 0.7, 2.0).fit().unwrap();
        let m = fitted.map();
        assert!((m.index_of_dispersion() - 0.7).abs() < 0.05);
        assert!((m.mean() - 1.0).abs() < 1e-9);
        assert!(m.lag1_correlation().abs() < 1e-9);
    }

    #[test]
    fn infeasible_dispersion_rejected() {
        assert!(matches!(
            Map2Fitter::new(1.0, 0.1, 1.0).fit(),
            Err(MapError::FitInfeasible { .. })
        ));
    }

    #[test]
    fn invalid_targets_rejected() {
        assert!(Map2Fitter::new(-1.0, 10.0, 1.0).fit().is_err());
        assert!(Map2Fitter::new(1.0, 0.0, 1.0).fit().is_err());
        assert!(Map2Fitter::new(1.0, 10.0, f64::NAN).fit().is_err());
    }

    #[test]
    fn candidate_list_is_ranked_by_p95_distance() {
        let fitted = Map2Fitter::new(1.0, 50.0, 3.0).fit().unwrap();
        let target = 3.0;
        let dists: Vec<f64> = fitted
            .candidates()
            .iter()
            .map(|c| (c.achieved_p95 - target).abs())
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(
            fitted.candidates().len() > 3,
            "grid should yield multiple candidates"
        );
    }

    #[test]
    fn tie_break_prefers_larger_rho1() {
        let fitted = Map2Fitter::new(1.0, 80.0, 2.5).fit().unwrap();
        let best_d = (fitted.chosen().achieved_p95 - 2.5).abs();
        for c in fitted.candidates() {
            let d = (c.achieved_p95 - 2.5).abs();
            if d <= best_d * 1.001 + 1e-15 {
                assert!(c.rho1 <= fitted.chosen().rho1 + 1e-12);
            }
        }
    }

    #[test]
    fn renewal_hypo_map_is_valid() {
        let ph = Ph2::from_mean_scv(1.0, 0.6).unwrap();
        let m = renewal_map2(ph).unwrap();
        assert!((m.mean() - 1.0).abs() < 1e-9);
        assert!((m.scv() - 0.6).abs() < 1e-9);
        assert!((m.index_of_dispersion() - 0.6).abs() < 1e-8);
    }

    #[test]
    fn weighted_h2_hits_requested_moments() {
        for &(m, c2, p) in &[(1.0, 3.0, 0.6), (2.0, 10.0, 0.9), (0.004, 50.0, 0.75)] {
            if let Some(ph) = h2_with_weight(m, c2, p) {
                assert!((ph.mean() - m).abs() / m < 1e-9, "mean p={p}");
                assert!((ph.scv() - c2).abs() / c2 < 1e-9, "scv p={p}");
            }
        }
    }

    #[test]
    fn weighted_h2_rejects_infeasible() {
        assert!(h2_with_weight(1.0, 0.9, 0.5).is_none(), "needs scv > 1");
        assert!(h2_with_weight(1.0, 3.0, 0.0).is_none());
        assert!(h2_with_weight(1.0, 3.0, 1.0).is_none());
    }

    #[test]
    fn fit_from_trace_roundtrip() {
        // Generate a trace from a known bursty MAP and re-fit: I should land
        // in the right decade.
        use crate::sampler::MapSampler;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let truth = Map2Fitter::new(1.0, 60.0, 3.0).fit().unwrap().map();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sampler = MapSampler::new(truth, &mut rng);
        let trace: Vec<f64> = (0..400_000).map(|_| sampler.next_event(&mut rng)).collect();
        let fitted = fit_from_trace(&trace, 40.0, 0.02).unwrap();
        let i = fitted.map().index_of_dispersion();
        assert!(
            (20.0..180.0).contains(&i),
            "refit I = {i}, expected same order of magnitude as 60"
        );
    }

    #[test]
    fn fit_from_trace_rejects_tiny_trace() {
        assert!(fit_from_trace(&[1.0, 2.0, 1.5], 1.0, 0.2).is_err());
    }

    fn cand(p95: f64, rho1: f64) -> Candidate {
        Candidate {
            scv: 4.0,
            p: 0.7,
            gamma: 0.5,
            achieved_i: 10.0,
            achieved_p95: p95,
            rho1,
        }
    }

    #[test]
    fn selection_discards_non_finite_candidates() {
        // Regression for the `.expect("p95 distances are finite")` panic:
        // a NaN p95 or rho1 used to poison the sort comparator; it must be
        // filtered out, not crash the fit.
        let mut list = vec![
            cand(f64::NAN, 0.1),
            cand(3.0, 0.2),
            cand(f64::INFINITY, 0.3),
            cand(2.9, f64::NAN),
            cand(2.5, 0.05),
        ];
        let chosen = select_candidate(&mut list, 2.6).unwrap();
        assert_eq!(chosen.achieved_p95, 2.5);
        assert_eq!(list.len(), 2, "non-finite candidates must be dropped");
        assert!(list
            .iter()
            .all(|c| c.achieved_p95.is_finite() && c.rho1.is_finite()));
    }

    #[test]
    fn selection_of_only_non_finite_candidates_is_none() {
        // If nothing survives the finiteness filter the fit must surface
        // FitInfeasible (select_candidate returns None), not panic.
        let mut list = vec![cand(f64::NAN, 0.1), cand(1.0, f64::INFINITY)];
        assert!(select_candidate(&mut list, 2.0).is_none());
        assert!(list.is_empty());
    }

    #[test]
    fn selection_tie_break_still_prefers_larger_rho1() {
        let mut list = vec![cand(3.0, 0.1), cand(3.0, 0.4), cand(5.0, 0.9)];
        let chosen = select_candidate(&mut list, 3.0).unwrap();
        assert_eq!(chosen.rho1, 0.4);
    }

    #[test]
    fn i_floor_records_the_adjustment() {
        // Opt-in floor: an infeasible target is raised to MIN_FEASIBLE_I and
        // the original request is preserved in the diagnostics.
        let fitted = Map2Fitter::new(1.0, 0.2, 1.5).i_floor(true).fit().unwrap();
        assert_eq!(fitted.floored_target_i(), Some(0.2));
        assert!((fitted.map().index_of_dispersion() - MIN_FEASIBLE_I).abs() < 0.05);
        // Even I = 0 (a deterministic tier) is accepted with the floor —
        // the planner's estimators produce exactly that on constant counts.
        let zero = Map2Fitter::new(1.0, 0.0, 1.5).i_floor(true).fit().unwrap();
        assert_eq!(zero.floored_target_i(), Some(0.0));
        // NaN is still a hard parameter error, floor or not.
        assert!(Map2Fitter::new(1.0, f64::NAN, 1.5)
            .i_floor(true)
            .fit()
            .is_err());
        // Feasible targets pass through unflagged, floor enabled or not.
        let ok = Map2Fitter::new(1.0, 0.7, 2.0).i_floor(true).fit().unwrap();
        assert_eq!(ok.floored_target_i(), None);
        let plain = Map2Fitter::new(1.0, 40.0, 3.0).fit().unwrap();
        assert_eq!(plain.floored_target_i(), None);
        // Without the opt-in, the same infeasible target still errors.
        assert!(matches!(
            Map2Fitter::new(1.0, 0.2, 1.5).fit(),
            Err(MapError::FitInfeasible { .. })
        ));
    }

    #[test]
    fn fit_from_trace_surfaces_underdispersed_traces() {
        // A deterministic trace has I = 0: any MAP(2) is *more* variable,
        // and the old `.max(0.51)` clamp hid that. It must now fail loudly.
        let trace = vec![1.0; 40_000];
        match fit_from_trace(&trace, 25.0, 0.2) {
            Err(MapError::FitInfeasible { reason }) => {
                assert!(
                    reason.contains("index of dispersion") || reason.contains("I ="),
                    "reason should name the dispersion: {reason}"
                );
            }
            other => panic!("expected FitInfeasible, got {other:?}"),
        }
    }

    #[test]
    fn fit_from_trace_accepts_feasible_low_variability() {
        // Just above the boundary: an i.i.d. hypoexponential trace with
        // SCV ~ 0.7 has I ~ 0.7 > 1/2 and must fit (via the renewal
        // branch), with no floor adjustment recorded.
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let ph = Ph2::from_mean_scv(1.0, 0.7).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let trace: Vec<f64> = (0..200_000).map(|_| ph.sample(&mut rng)).collect();
        let fitted = fit_from_trace(&trace, 30.0, 0.1).unwrap();
        assert_eq!(fitted.floored_target_i(), None);
        let i = fitted.map().index_of_dispersion();
        assert!((0.4..1.1).contains(&i), "refit I = {i}, expected ~0.7");
    }
}
