//! Exact simulation of MAP event sequences.
//!
//! A MAP is simulated phase by phase: in phase `i` the process sojourns for
//! an `Exp(-D0[i][i])` time, then either takes a hidden transition (rates
//! `D0[i][j]`, `j != i`) or an event transition (rates `D1[i][j]`), which
//! emits an inter-event time. The simulator below powers trace generation and
//! the discrete-event service processes of `burstcap-sim`.

use rand::Rng;

use crate::map2::Map2;
use crate::ph::sample_exp;

/// Stateful sampler of inter-event times of a [`Map2`].
///
/// The initial phase is drawn from the embedded stationary distribution, so
/// the emitted sequence is stationary from the first sample.
///
/// # Example
/// ```
/// use burstcap_map::{Map2, sampler::MapSampler};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let map = Map2::poisson(4.0)?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut s = MapSampler::new(map, &mut rng);
/// let mean: f64 = (0..10_000).map(|_| s.next_event(&mut rng)).sum::<f64>() / 10_000.0;
/// assert!((mean - 0.25).abs() < 0.02);
/// # Ok::<(), burstcap_map::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MapSampler {
    map: Map2,
    phase: usize,
}

impl MapSampler {
    /// Create a sampler starting from the stationary phase distribution.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn new<R: Rng + ?Sized>(map: Map2, rng: &mut R) -> Self {
        let pi = map.embedded_stationary();
        let phase = usize::from(rng.random::<f64>() >= pi[0]);
        MapSampler { map, phase }
    }

    /// Create a sampler pinned to a specific starting phase (0 or 1).
    ///
    /// # Panics
    /// Panics if `phase > 1`; the phase index is structural, not data.
    pub fn with_phase(map: Map2, phase: usize) -> Self {
        assert!(phase < 2, "MAP(2) has phases 0 and 1");
        MapSampler { map, phase }
    }

    /// The current phase (0 or 1).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// The underlying process.
    pub fn map(&self) -> &Map2 {
        &self.map
    }

    /// Draw the next inter-event time, advancing the hidden phase.
    pub fn next_event<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let d0 = self.map.d0();
        let d1 = self.map.d1();
        let mut elapsed = 0.0;
        loop {
            let i = self.phase;
            let total = -d0[i][i];
            elapsed += sample_exp(rng, total);
            // Split the exit rate between hidden and event transitions.
            let hidden = d0[i][1 - i];
            let u = rng.random::<f64>() * total;
            if u < hidden {
                self.phase = 1 - i;
                continue;
            }
            let mut acc = hidden;
            for (j, &rate) in d1[i].iter().enumerate() {
                acc += rate;
                if u < acc {
                    self.phase = j;
                    return elapsed;
                }
            }
            // Floating-point slack: attribute to the last positive event rate.
            self.phase = if d1[i][1] > 0.0 { 1 } else { 0 };
            return elapsed;
        }
    }

    /// Sample a trace of `n` inter-event times.
    pub fn sample_trace<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.next_event(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::Map2Fitter;
    use crate::ph::Ph2;
    use burstcap_stats::descriptive::{mean, scv};
    use burstcap_stats::dispersion::index_of_dispersion_counting;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_sampler_matches_rate() {
        let map = Map2::poisson(2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = MapSampler::new(map, &mut rng);
        let trace = s.sample_trace(100_000, &mut rng);
        assert!((mean(&trace).unwrap() - 0.5).abs() < 0.01);
        assert!((scv(&trace).unwrap() - 1.0).abs() < 0.05);
    }

    #[test]
    fn sampler_matches_analytic_moments() {
        let marginal = Ph2::from_mean_scv(1.0, 3.0).unwrap();
        let map = Map2::from_hyper_marginal(marginal, 0.9).unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut s = MapSampler::new(map, &mut rng);
        let trace = s.sample_trace(400_000, &mut rng);
        assert!(
            (mean(&trace).unwrap() - 1.0).abs() < 0.02,
            "mean {}",
            mean(&trace).unwrap()
        );
        assert!(
            (scv(&trace).unwrap() - 3.0).abs() < 0.25,
            "scv {}",
            scv(&trace).unwrap()
        );
    }

    #[test]
    fn sampler_reproduces_index_of_dispersion() {
        // The empirical I of a sampled trace must match the analytic I.
        let map = Map2Fitter::new(1.0, 30.0, 3.0).fit().unwrap().map();
        let mut rng = SmallRng::seed_from_u64(23);
        let mut s = MapSampler::new(map, &mut rng);
        let trace = s.sample_trace(500_000, &mut rng);
        let est = index_of_dispersion_counting(&trace, 50.0, 0.1).unwrap();
        let i = est.index_of_dispersion();
        assert!(
            (12.0..70.0).contains(&i),
            "empirical I = {i}, analytic I = {}",
            map.index_of_dispersion()
        );
    }

    #[test]
    fn sampler_reproduces_lag1_sign() {
        let marginal = Ph2::from_mean_scv(1.0, 3.0).unwrap();
        let map = Map2::from_hyper_marginal(marginal, 0.95).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut s = MapSampler::new(map, &mut rng);
        let trace = s.sample_trace(300_000, &mut rng);
        let rho1 = burstcap_stats::acf::autocorrelation(&trace, 1).unwrap();
        let analytic = map.lag1_correlation();
        assert!(rho1 > 0.0);
        assert!(
            (rho1 - analytic).abs() < 0.1,
            "rho1 {rho1} vs analytic {analytic}"
        );
    }

    #[test]
    fn with_phase_pins_start() {
        let map = Map2::poisson(1.0).unwrap();
        let s = MapSampler::with_phase(map, 1);
        assert_eq!(s.phase(), 1);
    }

    #[test]
    #[should_panic(expected = "phases 0 and 1")]
    fn with_phase_rejects_out_of_range() {
        let map = Map2::poisson(1.0).unwrap();
        let _ = MapSampler::with_phase(map, 2);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let map = Map2::poisson(1.0).unwrap();
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut s = MapSampler::new(map, &mut rng);
            s.sample_trace(100, &mut rng)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
