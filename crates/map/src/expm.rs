//! Small-matrix exponentials.
//!
//! MAP(2) marginals are two-phase phase-type distributions, whose CDF is
//! `F(x) = 1 - pi * exp(D0 x) * 1`. The 2×2 exponential has a closed form via
//! the eigenvalues of `D0`; for the sub-generators arising in MAPs the
//! discriminant is always non-negative, so the eigenvalues are real. A
//! scaling-and-squaring fallback covers general small matrices used by the
//! n-state extensions.

/// Closed-form exponential of a 2×2 matrix with real eigenvalues,
/// `exp(a * t)`.
///
/// Uses spectral decomposition for distinct eigenvalues and the confluent
/// (Jordan) form otherwise. For matrices with complex eigenvalues (impossible
/// for MAP sub-generators, whose off-diagonal entries are non-negative) the
/// routine falls back to [`expm_small`].
///
/// # Example
/// ```
/// // exp(0) = I.
/// let e = burstcap_map::expm::expm2(&[[0.0, 0.0], [0.0, 0.0]], 1.0);
/// assert_eq!(e, [[1.0, 0.0], [0.0, 1.0]]);
/// ```
pub fn expm2(a: &[[f64; 2]; 2], t: f64) -> [[f64; 2]; 2] {
    let tr = a[0][0] + a[1][1];
    let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
    let disc = tr * tr - 4.0 * det;
    if disc < 0.0 {
        // Complex pair: defer to the series-based routine.
        return expm_small_2(a, t);
    }
    let sq = disc.sqrt();
    let l1 = (tr + sq) / 2.0;
    let l2 = (tr - sq) / 2.0;
    if sq > 1e-12 * tr.abs().max(1.0) {
        // Distinct eigenvalues: exp(At) = e^{l1 t} (A - l2 I)/(l1 - l2)
        //                               + e^{l2 t} (A - l1 I)/(l2 - l1).
        let e1 = (l1 * t).exp();
        let e2 = (l2 * t).exp();
        let mut out = [[0.0; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                let id = if i == j { 1.0 } else { 0.0 };
                let m1 = (a[i][j] - l2 * id) / (l1 - l2);
                let m2 = (a[i][j] - l1 * id) / (l2 - l1);
                out[i][j] = e1 * m1 + e2 * m2;
            }
        }
        out
    } else {
        // Coincident eigenvalue l: exp(At) = e^{l t} (I + t (A - l I)).
        let l = tr / 2.0;
        let el = (l * t).exp();
        let mut out = [[0.0; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                let id = if i == j { 1.0 } else { 0.0 };
                out[i][j] = el * (id + t * (a[i][j] - l * id));
            }
        }
        out
    }
}

fn expm_small_2(a: &[[f64; 2]; 2], t: f64) -> [[f64; 2]; 2] {
    let flat = vec![vec![a[0][0], a[0][1]], vec![a[1][0], a[1][1]]];
    let e = expm_small(&flat, t);
    [[e[0][0], e[0][1]], [e[1][0], e[1][1]]]
}

/// Dense matrix exponential `exp(a * t)` by scaling and squaring with a Taylor
/// core, suitable for the small (n ≤ ~50) matrices in this workspace.
///
/// # Panics
/// Panics if `a` is empty or ragged; matrix shape is a programming error,
/// not an input condition.
pub fn expm_small(a: &[Vec<f64>], t: f64) -> Vec<Vec<f64>> {
    let n = a.len();
    assert!(n > 0, "matrix must be non-empty");
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");

    // Scale so that ||A t / 2^s||_inf <= 0.5.
    let norm: f64 = a
        .iter()
        .map(|row| row.iter().map(|x| (x * t).abs()).sum::<f64>())
        .fold(0.0, f64::max);
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scale = t / (2.0f64).powi(s as i32);

    // Taylor series on the scaled matrix.
    let mut result = identity(n);
    let mut term = identity(n);
    for k in 1..=24 {
        term = mat_mul(&term, a);
        let f = scale / k as f64;
        for row in term.iter_mut() {
            for x in row.iter_mut() {
                *x *= f;
            }
        }
        for i in 0..n {
            for j in 0..n {
                result[i][j] += term[i][j];
            }
        }
    }
    // Square back up.
    for _ in 0..s {
        result = mat_mul(&result, &result);
    }
    result
}

fn identity(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect()
}

fn mat_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for (k, &aik) in a[i].iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let e = expm2(&[[0.0, 0.0], [0.0, 0.0]], 5.0);
        assert_eq!(e, [[1.0, 0.0], [0.0, 1.0]]);
    }

    #[test]
    fn diagonal_matrix_exponentiates_entrywise() {
        let e = expm2(&[[-1.0, 0.0], [0.0, -2.0]], 0.7);
        assert!(close(e[0][0], (-0.7f64).exp(), 1e-12));
        assert!(close(e[1][1], (-1.4f64).exp(), 1e-12));
        assert_eq!(e[0][1], 0.0);
        assert_eq!(e[1][0], 0.0);
    }

    #[test]
    fn coincident_eigenvalues_jordan_block() {
        // A = [[l, 1], [0, l]] has exp(At) = e^{lt} [[1, t], [0, 1]].
        let l = -0.5;
        let e = expm2(&[[l, 1.0], [0.0, l]], 2.0);
        let elt = (l * 2.0f64).exp();
        assert!(close(e[0][0], elt, 1e-10));
        assert!(close(e[0][1], 2.0 * elt, 1e-10));
        assert!(close(e[1][0], 0.0, 1e-10));
        assert!(close(e[1][1], elt, 1e-10));
    }

    #[test]
    fn generator_exponential_is_stochastic() {
        // exp(Qt) of a CTMC generator must have rows summing to 1.
        let q = [[-2.0, 2.0], [3.0, -3.0]];
        let e = expm2(&q, 1.3);
        for row in e {
            assert!(close(row[0] + row[1], 1.0, 1e-10));
            assert!(row[0] >= 0.0 && row[1] >= 0.0);
        }
    }

    #[test]
    fn closed_form_matches_series_fallback() {
        let a = [[-1.7, 0.4], [1.1, -2.2]];
        let c = expm2(&a, 0.9);
        let s = expm_small(&[vec![-1.7, 0.4], vec![1.1, -2.2]], 0.9);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    close(c[i][j], s[i][j], 1e-9),
                    "({i},{j}): {} vs {}",
                    c[i][j],
                    s[i][j]
                );
            }
        }
    }

    #[test]
    fn semigroup_property_holds() {
        // exp(A(t+s)) = exp(At) exp(As).
        let a = [[-0.8, 0.3], [0.5, -1.1]];
        let whole = expm2(&a, 1.5);
        let p1 = expm2(&a, 0.9);
        let p2 = expm2(&a, 0.6);
        for i in 0..2 {
            for j in 0..2 {
                let prod = p1[i][0] * p2[0][j] + p1[i][1] * p2[1][j];
                assert!(close(whole[i][j], prod, 1e-9));
            }
        }
    }

    #[test]
    fn series_handles_larger_matrices() {
        // 3x3 generator: rows of exp must sum to one.
        let q = vec![
            vec![-1.0, 0.6, 0.4],
            vec![0.2, -0.9, 0.7],
            vec![0.5, 0.5, -1.0],
        ];
        let e = expm_small(&q, 2.0);
        for row in &e {
            let sum: f64 = row.iter().sum();
            assert!(close(sum, 1.0, 1e-9), "row sum {sum}");
        }
    }

    #[test]
    fn large_time_scaling_is_stable() {
        let a = [[-3.0, 3.0], [4.0, -4.0]];
        let e = expm2(&a, 100.0);
        // Long-run limit is the stationary distribution (4/7, 3/7) per row.
        for row in e {
            assert!(close(row[0], 4.0 / 7.0, 1e-6));
            assert!(close(row[1], 3.0 / 7.0, 1e-6));
        }
    }
}
