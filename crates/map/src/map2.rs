//! Two-phase Markovian Arrival Processes and their closed-form analysis.
//!
//! A MAP(2) is a pair of 2×2 matrices `(D0, D1)`: `D0` holds the rates of
//! *hidden* phase transitions (negative diagonal), `D1` the rates of
//! transitions that *mark an event* (a service completion, in the paper's
//! usage), and `D0 + D1` is the generator of the underlying two-state Markov
//! chain. The active phase modulates the event rate, which is exactly the
//! mechanism the paper uses to reproduce service burstiness: one phase serves
//! fast, the other slow, and the switching frequency controls how long bursts
//! persist (Section 4.1).
//!
//! All first- and second-order descriptors have closed forms for two phases:
//! the embedded phase chain at events `P = (-D0)^{-1} D1` is stochastic with
//! eigenvalues `{1, gamma}`, lag-k autocorrelations decay geometrically as
//! `rho_k = rho_1 * gamma^{k-1}`, and the asymptotic index of dispersion is
//! `I = SCV * (1 + 2 rho_1 / (1 - gamma))` — the quantity the paper's Figure 2
//! algorithm estimates from measurements.

use serde::{Deserialize, Serialize};

use crate::expm::expm2;
use crate::ph::Ph2;
use crate::MapError;

/// Tolerance used when validating generator row sums.
const ROW_SUM_TOL: f64 = 1e-8;

/// A validated two-phase Markovian Arrival Process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Map2 {
    d0: [[f64; 2]; 2],
    d1: [[f64; 2]; 2],
}

impl Map2 {
    /// Construct a MAP(2) from its `(D0, D1)` representation.
    ///
    /// # Errors
    /// Returns [`MapError::InvalidRepresentation`] unless all of the
    /// following hold:
    /// * `D0` has strictly negative diagonal and non-negative off-diagonal;
    /// * `D1` is entrywise non-negative with at least one positive entry;
    /// * each row of `D0 + D1` sums to zero (within tolerance);
    /// * the process is irreducible (the embedded event chain must not be
    ///   absorbing in a phase that never produces events).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn new(d0: [[f64; 2]; 2], d1: [[f64; 2]; 2]) -> Result<Self, MapError> {
        for i in 0..2 {
            if !(d0[i][i] < 0.0) || !d0[i][i].is_finite() {
                return Err(MapError::InvalidRepresentation {
                    reason: format!(
                        "D0 diagonal must be negative, got D0[{i}][{i}] = {}",
                        d0[i][i]
                    ),
                });
            }
            for j in 0..2 {
                if i != j && (d0[i][j] < 0.0 || !d0[i][j].is_finite()) {
                    return Err(MapError::InvalidRepresentation {
                        reason: format!(
                            "D0 off-diagonal must be non-negative, got D0[{i}][{j}] = {}",
                            d0[i][j]
                        ),
                    });
                }
                if d1[i][j] < 0.0 || !d1[i][j].is_finite() {
                    return Err(MapError::InvalidRepresentation {
                        reason: format!("D1 must be non-negative, got D1[{i}][{j}] = {}", d1[i][j]),
                    });
                }
            }
            let row_sum = d0[i][0] + d0[i][1] + d1[i][0] + d1[i][1];
            let scale = d0[i][i].abs().max(1.0);
            if row_sum.abs() > ROW_SUM_TOL * scale {
                return Err(MapError::InvalidRepresentation {
                    reason: format!("row {i} of D0 + D1 must sum to 0, got {row_sum}"),
                });
            }
        }
        if d1.iter().flatten().all(|&x| x == 0.0) {
            return Err(MapError::InvalidRepresentation {
                reason: "D1 must contain at least one positive rate".into(),
            });
        }
        let map = Map2 { d0, d1 };
        // Irreducibility of the embedded chain: its stationary vector must be
        // a proper probability vector.
        let pi = map.embedded_stationary();
        if !(pi[0] >= -1e-12 && pi[1] >= -1e-12) {
            return Err(MapError::InvalidRepresentation {
                reason: "embedded event chain is not irreducible".into(),
            });
        }
        Ok(map)
    }

    /// Degenerate MAP(2) representing a Poisson process with the given rate
    /// (both phases identical).
    ///
    /// # Errors
    /// Rejects non-positive rates.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn poisson(rate: f64) -> Result<Self, MapError> {
        if rate <= 0.0 || !rate.is_finite() {
            return Err(MapError::InvalidParameter {
                name: "rate",
                reason: format!("must be positive and finite, got {rate}"),
            });
        }
        // Jump to a uniformly random phase at each event: both phases are
        // identical, but the embedded chain stays irreducible (gamma = 0).
        let half = rate / 2.0;
        Map2::new([[-rate, 0.0], [0.0, -rate]], [[half, half], [half, half]])
    }

    /// Build a MAP(2) from a two-phase marginal and a phase-persistence
    /// parameter `gamma` — the **mixed-phase family** used by the fitting
    /// pipeline of Section 4.1.
    ///
    /// The marginal must be hyperexponential (or exponential); the embedded
    /// event chain is `P = (1 - gamma) * Pi + gamma * I`, where `Pi` has both
    /// rows equal to the mixture weights. For every `gamma` in the feasible
    /// range the stationary inter-event distribution is exactly the given
    /// marginal, while `gamma` alone controls the burst persistence:
    /// `gamma = 0` gives an i.i.d. (renewal) process with `I = SCV`, and
    /// `gamma -> 1` drives the index of dispersion to infinity.
    ///
    /// # Errors
    /// Rejects hypoexponential marginals (their phases are sequential, not
    /// modal) and `gamma` outside `[gamma_min, 1)` where
    /// `gamma_min = -min(p/(1-p), (1-p)/p)` keeps `D1` non-negative.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn from_hyper_marginal(marginal: Ph2, gamma: f64) -> Result<Self, MapError> {
        let Ph2::Hyper { p, rate1, rate2 } = marginal else {
            return Err(MapError::InvalidParameter {
                name: "marginal",
                reason: "mixed-phase family requires a hyperexponential marginal".into(),
            });
        };
        // burstcap-lint: allow(float-eq) — p == 1.0 is an exact boundary sentinel, not a computed value
        if !(0.0..1.0).contains(&p) && p != 1.0 {
            return Err(MapError::InvalidParameter {
                name: "marginal",
                reason: format!("mixture weight must lie in (0, 1], got {p}"),
            });
        }
        // burstcap-lint: allow(float-eq) — exact sentinel: caller-supplied boundary weight selects the degenerate family
        if p == 1.0 {
            // Degenerate single-phase marginal: gamma is irrelevant.
            return Map2::poisson(rate1);
        }
        let gamma_min = -(p / (1.0 - p)).min((1.0 - p) / p);
        if !(gamma < 1.0 && gamma >= gamma_min) {
            return Err(MapError::InvalidParameter {
                name: "gamma",
                reason: format!("must lie in [{gamma_min:.6}, 1), got {gamma}"),
            });
        }
        // P = (1 - gamma) * [p, 1-p; p, 1-p] + gamma * I.
        let p_mat = [
            [(1.0 - gamma) * p + gamma, (1.0 - gamma) * (1.0 - p)],
            [(1.0 - gamma) * p, (1.0 - gamma) * (1.0 - p) + gamma],
        ];
        // D0 diagonal (no hidden transitions), D1 = diag(rates) * P.
        let d0 = [[-rate1, 0.0], [0.0, -rate2]];
        let d1 = [
            [rate1 * p_mat[0][0], rate1 * p_mat[0][1]],
            [rate2 * p_mat[1][0], rate2 * p_mat[1][1]],
        ];
        Map2::new(d0, d1)
    }

    /// The hidden-transition rate matrix `D0`.
    pub fn d0(&self) -> &[[f64; 2]; 2] {
        &self.d0
    }

    /// The event-transition rate matrix `D1`.
    pub fn d1(&self) -> &[[f64; 2]; 2] {
        &self.d1
    }

    /// `M = (-D0)^{-1}`.
    fn m_matrix(&self) -> [[f64; 2]; 2] {
        let a = [
            [-self.d0[0][0], -self.d0[0][1]],
            [-self.d0[1][0], -self.d0[1][1]],
        ];
        let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
        debug_assert!(det > 0.0, "(-D0) of a valid MAP is a nonsingular M-matrix");
        [
            [a[1][1] / det, -a[0][1] / det],
            [-a[1][0] / det, a[0][0] / det],
        ]
    }

    /// Embedded phase-transition matrix at event epochs,
    /// `P = (-D0)^{-1} D1` (stochastic).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn embedded_chain(&self) -> [[f64; 2]; 2] {
        let m = self.m_matrix();
        let mut p = [[0.0; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                p[i][j] = m[i][0] * self.d1[0][j] + m[i][1] * self.d1[1][j];
            }
        }
        p
    }

    /// Stationary distribution of the embedded chain (phase seen just after
    /// an event).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn embedded_stationary(&self) -> [f64; 2] {
        let p = self.embedded_chain();
        // pi P = pi with pi1 + pi2 = 1 => pi1 = p21 / (p12 + p21).
        let p12 = p[0][1];
        let p21 = p[1][0];
        if p12 + p21 <= f64::EPSILON {
            // Diagonal embedded chain: phases never communicate at events.
            // Valid only when the two phases are statistically identical
            // (e.g. the Poisson construction); split evenly.
            return [0.5, 0.5];
        }
        [p21 / (p12 + p21), p12 / (p12 + p21)]
    }

    /// Second eigenvalue `gamma` of the embedded chain — the geometric decay
    /// rate of the autocorrelation function (`rho_k = rho_1 gamma^{k-1}`).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn gamma(&self) -> f64 {
        let p = self.embedded_chain();
        p[0][0] + p[1][1] - 1.0
    }

    /// Raw moment `E[X^k]` of the stationary inter-event time, for
    /// `k = 1, 2, 3` (`k! * pi * M^k * 1`).
    ///
    /// # Panics
    /// Panics for `k = 0` or `k > 3`; higher moments are not needed by the
    /// methodology and keeping the contract narrow avoids silent misuse.
    pub fn moment(&self, k: u32) -> f64 {
        assert!((1..=3).contains(&k), "supported moments: 1..=3");
        let pi = self.embedded_stationary();
        let m = self.m_matrix();
        let mut v = pi;
        let mut factorial = 1.0;
        for i in 1..=k {
            v = [
                v[0] * m[0][0] + v[1] * m[1][0],
                v[0] * m[0][1] + v[1] * m[1][1],
            ];
            factorial *= i as f64;
        }
        factorial * (v[0] + v[1])
    }

    /// Mean inter-event time (mean service time when the MAP models a
    /// service process).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn mean(&self) -> f64 {
        self.moment(1)
    }

    /// Stationary event rate (`1 / mean`).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean()
    }

    /// Variance of the stationary inter-event time.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn variance(&self) -> f64 {
        let m1 = self.moment(1);
        self.moment(2) - m1 * m1
    }

    /// Squared coefficient of variation of inter-event times.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn scv(&self) -> f64 {
        let m1 = self.moment(1);
        self.variance() / (m1 * m1)
    }

    /// Lag-k autocorrelation coefficient of inter-event times:
    /// `rho_k = (pi M P^k M 1 - m1^2) / Var`.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn lag_correlation(&self, k: u32) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let rho1 = self.lag1_correlation();
        rho1 * self.gamma().powi((k - 1) as i32)
    }

    /// Lag-1 autocorrelation coefficient.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn lag1_correlation(&self) -> f64 {
        let pi = self.embedded_stationary();
        let m = self.m_matrix();
        let p = self.embedded_chain();
        // pi * M
        let v = [
            pi[0] * m[0][0] + pi[1] * m[1][0],
            pi[0] * m[0][1] + pi[1] * m[1][1],
        ];
        // (pi M) * P
        let w = [
            v[0] * p[0][0] + v[1] * p[1][0],
            v[0] * p[0][1] + v[1] * p[1][1],
        ];
        // (pi M P) * M * 1
        let e_x0x1 = w[0] * (m[0][0] + m[0][1]) + w[1] * (m[1][0] + m[1][1]);
        let m1 = self.moment(1);
        let var = self.variance();
        if var <= f64::EPSILON * m1 * m1 {
            return 0.0;
        }
        (e_x0x1 - m1 * m1) / var
    }

    /// Asymptotic index of dispersion for counts (the paper's Eq. (1)/(2)):
    /// `I = SCV * (1 + 2 * sum_k rho_k) = SCV * (1 + 2 rho_1 / (1 - gamma))`.
    ///
    /// For a Poisson process this is exactly 1; values in the hundreds signal
    /// strong burstiness (paper, Section 2.1).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn index_of_dispersion(&self) -> f64 {
        let g = self.gamma();
        let scv = self.scv();
        let rho1 = self.lag1_correlation();
        if (1.0 - g).abs() < 1e-12 {
            // Degenerate persistence: uncorrelated phases mean a renewal
            // process (I = SCV); any residual correlation diverges.
            return if rho1.abs() < 1e-12 {
                scv
            } else {
                f64::INFINITY
            };
        }
        scv * (1.0 + 2.0 * rho1 / (1.0 - g))
    }

    /// CDF of the stationary inter-event time:
    /// `F(x) = 1 - pi exp(D0 x) 1`.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn interval_cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let pi = self.embedded_stationary();
        let e = expm2(&self.d0, x);
        let survival = pi[0] * (e[0][0] + e[0][1]) + pi[1] * (e[1][0] + e[1][1]);
        // burstcap-lint: allow(silent-clamp) — expm roundoff can push a CDF value 1e-16 outside [0,1]; clamp restores the probability axioms
        (1.0 - survival).clamp(0.0, 1.0)
    }

    /// Quantile of the stationary inter-event time by bisection on
    /// [`interval_cdf`](Self::interval_cdf); `quantile(0.95)` is the p95 the
    /// fitting pipeline matches against measurements.
    ///
    /// # Errors
    /// Rejects `q` outside `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn quantile(&self, q: f64) -> Result<f64, MapError> {
        if !(q > 0.0 && q < 1.0) {
            return Err(MapError::InvalidParameter {
                name: "q",
                reason: format!("must lie strictly in (0, 1), got {q}"),
            });
        }
        let mut hi = self.mean();
        let mut guard = 0;
        while self.interval_cdf(hi) < q {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return Err(MapError::NoConvergence {
                    what: "quantile bracketing",
                });
            }
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.interval_cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-12 * hi.max(1e-300) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Rescale time so the mean inter-event time becomes `mean`, preserving
    /// SCV, autocorrelations, and the index of dispersion (all scale-free).
    ///
    /// # Errors
    /// Rejects non-positive target means.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn with_mean(&self, mean: f64) -> Result<Self, MapError> {
        if mean <= 0.0 || !mean.is_finite() {
            return Err(MapError::InvalidParameter {
                name: "mean",
                reason: format!("must be positive and finite, got {mean}"),
            });
        }
        let f = self.mean() / mean;
        let scale = |m: &[[f64; 2]; 2]| [[m[0][0] * f, m[0][1] * f], [m[1][0] * f, m[1][1] * f]];
        Map2::new(scale(&self.d0), scale(&self.d1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ph::Ph2;

    fn h2(mean: f64, scv: f64) -> Ph2 {
        Ph2::from_mean_scv(mean, scv).unwrap()
    }

    #[test]
    fn poisson_is_valid_and_memoryless() {
        let m = Map2::poisson(2.0).unwrap();
        assert!((m.mean() - 0.5).abs() < 1e-12);
        assert!((m.scv() - 1.0).abs() < 1e-10);
        assert!(m.lag1_correlation().abs() < 1e-10);
        assert!((m.index_of_dispersion() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_positive_d0_diagonal() {
        assert!(Map2::new([[1.0, 0.0], [0.0, -1.0]], [[0.0, 0.0], [0.5, 0.5]]).is_err());
    }

    #[test]
    fn rejects_negative_d1() {
        assert!(Map2::new([[-1.0, 0.0], [0.0, -1.0]], [[1.5, -0.5], [0.0, 1.0]]).is_err());
    }

    #[test]
    fn rejects_bad_row_sums() {
        assert!(Map2::new([[-1.0, 0.0], [0.0, -1.0]], [[0.5, 0.0], [0.0, 1.0]]).is_err());
    }

    #[test]
    fn rejects_zero_d1() {
        assert!(Map2::new([[-1.0, 1.0], [1.0, -1.0]], [[0.0, 0.0], [0.0, 0.0]]).is_err());
    }

    #[test]
    fn embedded_chain_is_stochastic() {
        let m = Map2::from_hyper_marginal(h2(1.0, 3.0), 0.9).unwrap();
        let p = m.embedded_chain();
        for row in p {
            assert!((row[0] + row[1] - 1.0).abs() < 1e-10);
            assert!(row[0] >= 0.0 && row[1] >= 0.0);
        }
    }

    #[test]
    fn mixed_phase_family_preserves_marginal() {
        let marginal = h2(1.0, 3.0);
        let p95 = marginal.quantile(0.95).unwrap();
        for &gamma in &[0.0, 0.3, 0.9, 0.99] {
            let m = Map2::from_hyper_marginal(marginal, gamma).unwrap();
            assert!((m.mean() - 1.0).abs() < 1e-9, "gamma={gamma}");
            assert!(
                (m.scv() - 3.0).abs() < 1e-8,
                "gamma={gamma}, scv={}",
                m.scv()
            );
            let q = m.quantile(0.95).unwrap();
            assert!(
                (q - p95).abs() / p95 < 1e-6,
                "gamma={gamma}: p95 {q} vs {p95}"
            );
        }
    }

    #[test]
    fn gamma_matches_construction() {
        for &g in &[0.0, 0.5, 0.95] {
            let m = Map2::from_hyper_marginal(h2(1.0, 4.0), g).unwrap();
            assert!((m.gamma() - g).abs() < 1e-10, "gamma={g} got {}", m.gamma());
        }
    }

    #[test]
    fn renewal_case_has_scv_dispersion() {
        // gamma = 0: iid hyperexponential, so I = SCV.
        let m = Map2::from_hyper_marginal(h2(1.0, 3.0), 0.0).unwrap();
        assert!(m.lag1_correlation().abs() < 1e-10);
        assert!((m.index_of_dispersion() - 3.0).abs() < 1e-8);
    }

    #[test]
    fn dispersion_grows_monotonically_with_gamma() {
        let mut last = 0.0;
        for &g in &[0.0, 0.5, 0.9, 0.99, 0.999] {
            let m = Map2::from_hyper_marginal(h2(1.0, 3.0), g).unwrap();
            let i = m.index_of_dispersion();
            assert!(i > last, "I({g}) = {i} not > {last}");
            last = i;
        }
        assert!(
            last > 1000.0,
            "gamma=0.999 should be extremely bursty, I = {last}"
        );
    }

    #[test]
    fn lag_correlations_decay_geometrically() {
        let m = Map2::from_hyper_marginal(h2(1.0, 3.0), 0.8).unwrap();
        let r1 = m.lag_correlation(1);
        let r2 = m.lag_correlation(2);
        let r3 = m.lag_correlation(3);
        assert!(r1 > 0.0);
        assert!((r2 / r1 - 0.8).abs() < 1e-9);
        assert!((r3 / r2 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn interval_cdf_monotone() {
        let m = Map2::from_hyper_marginal(h2(2.0, 5.0), 0.7).unwrap();
        let mut last = 0.0;
        for k in 1..=50 {
            let f = m.interval_cdf(k as f64 * 0.3);
            assert!(f >= last - 1e-12);
            last = f;
        }
        assert!(last > 0.9);
    }

    #[test]
    fn quantile_inverts_interval_cdf() {
        let m = Map2::from_hyper_marginal(h2(1.0, 3.0), 0.5).unwrap();
        for &q in &[0.1, 0.5, 0.95] {
            let x = m.quantile(q).unwrap();
            assert!((m.interval_cdf(x) - q).abs() < 1e-9);
        }
    }

    #[test]
    fn quantile_rejects_bad_q() {
        let m = Map2::poisson(1.0).unwrap();
        assert!(m.quantile(1.0).is_err());
        assert!(m.quantile(-0.5).is_err());
    }

    #[test]
    fn with_mean_rescales_only_time() {
        let m = Map2::from_hyper_marginal(h2(1.0, 3.0), 0.9).unwrap();
        let scaled = m.with_mean(0.004).unwrap();
        assert!((scaled.mean() - 0.004).abs() < 1e-12);
        assert!((scaled.scv() - m.scv()).abs() < 1e-9);
        assert!((scaled.index_of_dispersion() - m.index_of_dispersion()).abs() < 1e-6);
        assert!((scaled.gamma() - m.gamma()).abs() < 1e-10);
    }

    #[test]
    fn with_mean_rejects_bad_target() {
        let m = Map2::poisson(1.0).unwrap();
        assert!(m.with_mean(0.0).is_err());
    }

    #[test]
    fn hypo_marginal_rejected_by_family() {
        let hypo = Ph2::from_mean_scv(1.0, 0.7).unwrap();
        assert!(Map2::from_hyper_marginal(hypo, 0.5).is_err());
    }

    #[test]
    fn gamma_out_of_range_rejected() {
        assert!(Map2::from_hyper_marginal(h2(1.0, 3.0), 1.0).is_err());
        assert!(Map2::from_hyper_marginal(h2(1.0, 3.0), -0.99).is_err());
    }

    #[test]
    fn negative_gamma_gives_negative_correlation() {
        let marginal = h2(1.0, 3.0);
        // Feasible small negative gamma.
        let m = Map2::from_hyper_marginal(marginal, -0.1).unwrap();
        assert!(m.lag1_correlation() < 0.0);
        assert!(m.index_of_dispersion() < 3.0, "I must drop below SCV");
    }

    #[test]
    fn moment_contract_is_narrow() {
        let m = Map2::poisson(1.0).unwrap();
        // Exponential moments: E[X^k] = k! for rate 1.
        assert!((m.moment(1) - 1.0).abs() < 1e-10);
        assert!((m.moment(2) - 2.0).abs() < 1e-10);
        assert!((m.moment(3) - 6.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "supported moments")]
    fn moment_zero_panics() {
        let _ = Map2::poisson(1.0).unwrap().moment(0);
    }
}
