//! Markovian Arrival Processes (MAPs) for bursty-workload modeling.
//!
//! This crate implements the stochastic-process substrate of the `burstcap`
//! workspace, the reproduction of *"Burstiness in Multi-tier Applications:
//! Symptoms, Causes, and New Models"* (MIDDLEWARE 2008):
//!
//! * [`ph`] — phase-type distributions, including the balanced-means
//!   two-phase hyperexponential the paper uses as marginal;
//! * [`map2`] — validated two-phase MAPs ([`Map2`]) with closed-form
//!   stationary analysis: inter-event moments, lag-k autocorrelations, the
//!   geometric decay rate, and the asymptotic **index of dispersion**;
//! * [`fit`] — the paper's Section 4.1 fitting pipeline: given a mean
//!   service time, an index of dispersion `I`, and a 95th percentile, search
//!   a family of MAP(2)s with at most ±20% error on `I` and pick the
//!   candidate whose p95 is closest (ties to the largest lag-1
//!   autocorrelation, per the paper's footnote 8);
//! * [`sampler`] — exact simulation of MAP event sequences;
//! * [`trace`] — the Figure 1 trace workshop: identically distributed
//!   hyperexponential samples with increasing imposed burstiness;
//! * [`general`] — n-state MAPs for extensions beyond two phases.
//!
//! # Example: fit a MAP(2) from the paper's three descriptors
//!
//! ```
//! use burstcap_map::fit::Map2Fitter;
//!
//! // A bursty service process: mean 1 ms, I = 100, p95 = 3 ms.
//! let fitted = Map2Fitter::new(0.001, 100.0, 0.003).fit()?;
//! let map = fitted.map();
//! assert!((map.mean() - 0.001).abs() / 0.001 < 1e-6);
//! assert!((map.index_of_dispersion() - 100.0).abs() / 100.0 < 0.2);
//! # Ok::<(), burstcap_map::MapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bare `.unwrap()` is banned in library targets; burstcap-lint's
// `panic-in-lib` is the lexical twin (it also covers expect/panic!, with
// justification markers), clippy the type-aware backstop. The test target
// compiles with the allow, so unit tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod error;
pub mod expm;
pub mod fit;
pub mod general;
pub mod map2;
pub mod ph;
pub mod sampler;
pub mod trace;

pub use error::MapError;
pub use map2::Map2;
