//! The Figure 1 trace workshop: identical marginals, increasing burstiness.
//!
//! The paper's Figure 1 shows four traces of 20,000 service times drawn from
//! the *same* hyperexponential distribution (mean 1, SCV 3) whose only
//! difference is how the large samples aggregate into bursts, yielding
//! indices of dispersion from ~3 (i.i.d.) to ~489 (every large sample in one
//! burst). This module reproduces that construction **multiset-exactly**: the
//! bursty variants are permutations of the i.i.d. sample, so the empirical
//! distribution is identical by construction and only the temporal order —
//! hence `I` — changes.

use burstcap_seeds as seeds;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::ph::Ph2;
use crate::MapError;

/// How to arrange a sample into a temporal order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BurstProfile {
    /// Uniformly random order (the paper's Figure 1(a)): `I ≈ SCV`.
    Iid,
    /// Two-state modulated order with phase persistence `gamma` (Figures
    /// 1(b)-(c)): samples are split into a "small" and a "large" pool at the
    /// `p_small` quantile and emitted following a persistent two-state chain,
    /// clustering large samples into bursts. Larger `gamma` means longer
    /// bursts and larger `I`.
    Modulated {
        /// Stationary fraction of windows in the small-sample state.
        p_small: f64,
        /// Phase persistence in `[0, 1)`.
        gamma: f64,
    },
    /// Ascending sort (Figure 1(d)): every large sample lands in one terminal
    /// burst — the maximal-burstiness arrangement for a given multiset.
    Sorted,
}

/// Draw `n` i.i.d. samples from the balanced-means hyperexponential with the
/// given mean and SCV — the raw material of Figure 1.
///
/// # Errors
/// Propagates [`Ph2::from_mean_scv`] domain errors.
pub fn hyperexp_trace(n: usize, mean: f64, scv: f64, seed: u64) -> Result<Vec<f64>, MapError> {
    let ph = Ph2::from_mean_scv(mean, scv)?;
    let mut rng = SmallRng::seed_from_u64(seeds::derive(seed, seeds::TRACE_DRAW_STREAM, 0));
    Ok((0..n).map(|_| ph.sample(&mut rng)).collect())
}

/// Rearrange `samples` according to `profile`, preserving the multiset of
/// values exactly.
///
/// # Errors
/// Rejects empty input and invalid profile parameters.
///
/// # Example
/// ```
/// use burstcap_map::trace::{hyperexp_trace, impose_burstiness, BurstProfile};
///
/// let base = hyperexp_trace(5_000, 1.0, 3.0, 7)?;
/// let bursty = impose_burstiness(&base, BurstProfile::Sorted, 7)?;
/// let mut sorted = base.clone();
/// sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// assert_eq!(bursty, sorted); // same multiset, maximal clustering
/// # Ok::<(), burstcap_map::MapError>(())
/// ```
///
/// # Panics
///
/// Only if a justified internal invariant is violated (2 reachable
/// panic sites, e.g. `crates/map/src/trace.rs:141`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn impose_burstiness(
    samples: &[f64],
    profile: BurstProfile,
    seed: u64,
) -> Result<Vec<f64>, MapError> {
    if samples.is_empty() {
        return Err(MapError::InvalidParameter {
            name: "samples",
            reason: "empty trace".into(),
        });
    }
    // Shuffle stream derived separately from the draw stream, so imposing a
    // profile with the same user seed that produced the base trace never
    // replays the draw stream (formerly an ad-hoc `seed ^ 0xB17B17` salt —
    // the PR-3 cross-stream collision class).
    let mut rng = SmallRng::seed_from_u64(seeds::derive(seed, seeds::TRACE_SHUFFLE_STREAM, 0));
    match profile {
        BurstProfile::Iid => {
            let mut out = samples.to_vec();
            out.shuffle(&mut rng);
            Ok(out)
        }
        BurstProfile::Sorted => {
            let mut out = samples.to_vec();
            out.sort_by(f64::total_cmp);
            Ok(out)
        }
        BurstProfile::Modulated { p_small, gamma } => {
            if !(0.0 < p_small && p_small < 1.0) {
                return Err(MapError::InvalidParameter {
                    name: "p_small",
                    reason: format!("must lie in (0, 1), got {p_small}"),
                });
            }
            if !(0.0..1.0).contains(&gamma) {
                return Err(MapError::InvalidParameter {
                    name: "gamma",
                    reason: format!("must lie in [0, 1), got {gamma}"),
                });
            }
            Ok(modulated_order(samples, p_small, gamma, &mut rng))
        }
    }
}

/// Split the sorted sample at the `p_small` quantile into small/large pools,
/// then emit values following a two-state chain with persistence `gamma` and
/// stationary distribution `(p_small, 1 - p_small)`. Pools are shuffled so
/// within-burst order is random; when a pool runs dry the other supplies the
/// remainder (preserving the multiset).
fn modulated_order(samples: &[f64], p_small: f64, gamma: f64, rng: &mut SmallRng) -> Vec<f64> {
    let n = samples.len();
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let cut = ((n as f64) * p_small).round() as usize;
    let cut = cut.clamp(1, n - 1);
    let mut small: Vec<f64> = sorted[..cut].to_vec();
    let mut large: Vec<f64> = sorted[cut..].to_vec();
    small.shuffle(rng);
    large.shuffle(rng);

    // Two-state chain: stay with prob gamma + (1-gamma) * pi(state).
    let mut state_small = rng.random::<f64>() < p_small;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let pool = if state_small { &mut small } else { &mut large };
        match pool.pop() {
            Some(v) => out.push(v),
            None => {
                let other = if state_small { &mut large } else { &mut small };
                // burstcap-lint: allow(panic-in-lib) — the two pools jointly hold exactly n samples, so one is non-empty while out is short
                out.push(other.pop().expect("pools jointly hold n samples"));
            }
        }
        let stay_target = if state_small { p_small } else { 1.0 - p_small };
        let stay_prob = gamma + (1.0 - gamma) * stay_target;
        if rng.random::<f64>() >= stay_prob {
            state_small = !state_small;
        }
    }
    out
}

/// Choose the `gamma` of [`BurstProfile::Modulated`] that targets a given
/// index of dispersion, using the closed-form `I(gamma)` of the matching
/// mixed-phase MAP(2) family as the calibration curve.
///
/// The returned `gamma` reproduces the target `I` exactly in the analytic
/// family; on a finite reordered trace the *measured* `I` tracks it closely
/// (the workspace's Figure 1 experiment demonstrates the agreement).
///
/// # Errors
/// Rejects targets below the marginal's SCV (reordering cannot reduce `I`
/// below the i.i.d. level) and invalid marginals.
///
/// # Panics
///
/// Only if a justified internal invariant is violated (2 reachable
/// panic sites, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn gamma_for_target_dispersion(mean: f64, scv: f64, target_i: f64) -> Result<f64, MapError> {
    if target_i < scv {
        return Err(MapError::FitInfeasible {
            reason: format!("target I = {target_i} below the SCV = {scv} floor of reordering"),
        });
    }
    let marginal = Ph2::from_mean_scv(mean, scv)?;
    let i_of = |g: f64| -> Result<f64, MapError> {
        Ok(crate::Map2::from_hyper_marginal(marginal, g)?.index_of_dispersion())
    };
    let (mut lo, mut hi) = (0.0, 1.0 - 1e-12);
    if i_of(lo)? >= target_i {
        return Ok(0.0);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if i_of(mid)? < target_i {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// The mixing probability of the balanced-means H2 with the given SCV —
/// the natural `p_small` for [`BurstProfile::Modulated`].
///
/// # Errors
/// Rejects `scv <= 1` (no hyperexponential exists).
pub fn balanced_p_small(scv: f64) -> Result<f64, MapError> {
    if scv <= 1.0 {
        return Err(MapError::InvalidParameter {
            name: "scv",
            reason: format!("hyperexponential needs scv > 1, got {scv}"),
        });
    }
    Ok((1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt()) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use burstcap_stats::descriptive::{mean as smean, scv as sscv};
    use burstcap_stats::dispersion::index_of_dispersion_counting;

    fn measured_i(trace: &[f64]) -> f64 {
        index_of_dispersion_counting(trace, 30.0, 0.2)
            .unwrap()
            .index_of_dispersion()
    }

    #[test]
    fn hyperexp_trace_matches_marginal() {
        let t = hyperexp_trace(100_000, 1.0, 3.0, 1).unwrap();
        assert!((smean(&t).unwrap() - 1.0).abs() < 0.02);
        assert!((sscv(&t).unwrap() - 3.0).abs() < 0.2);
    }

    #[test]
    fn profiles_preserve_multiset() {
        let base = hyperexp_trace(10_000, 1.0, 3.0, 2).unwrap();
        let mut expect = base.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for profile in [
            BurstProfile::Iid,
            BurstProfile::Modulated {
                p_small: 0.85,
                gamma: 0.95,
            },
            BurstProfile::Sorted,
        ] {
            let mut got = impose_burstiness(&base, profile, 3).unwrap();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got, expect, "profile {profile:?} must permute, not alter");
        }
    }

    #[test]
    fn dispersion_orders_like_figure_1() {
        let base = hyperexp_trace(20_000, 1.0, 3.0, 42).unwrap();
        let p = balanced_p_small(3.0).unwrap();
        let iid = impose_burstiness(&base, BurstProfile::Iid, 1).unwrap();
        let mild = impose_burstiness(
            &base,
            BurstProfile::Modulated {
                p_small: p,
                gamma: 0.95,
            },
            1,
        )
        .unwrap();
        let strong = impose_burstiness(
            &base,
            BurstProfile::Modulated {
                p_small: p,
                gamma: 0.995,
            },
            1,
        )
        .unwrap();
        let sorted = impose_burstiness(&base, BurstProfile::Sorted, 1).unwrap();

        let (i_a, i_b, i_c, i_d) = (
            measured_i(&iid),
            measured_i(&mild),
            measured_i(&strong),
            measured_i(&sorted),
        );
        assert!(i_a < i_b, "iid {i_a} !< mild {i_b}");
        assert!(i_b < i_c, "mild {i_b} !< strong {i_c}");
        assert!(i_c < i_d, "strong {i_c} !< sorted {i_d}");
        assert!(
            (1.0..12.0).contains(&i_a),
            "iid I = {i_a}, expected near SCV = 3"
        );
        assert!(i_d > 100.0, "sorted I = {i_d}, expected hundreds");
    }

    #[test]
    fn sorted_profile_sorts() {
        let out = impose_burstiness(&[3.0, 1.0, 2.0], BurstProfile::Sorted, 0).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn rejects_empty_trace() {
        assert!(impose_burstiness(&[], BurstProfile::Iid, 0).is_err());
    }

    #[test]
    fn rejects_bad_modulation_parameters() {
        let t = [1.0, 2.0, 3.0];
        assert!(impose_burstiness(
            &t,
            BurstProfile::Modulated {
                p_small: 0.0,
                gamma: 0.5
            },
            0
        )
        .is_err());
        assert!(impose_burstiness(
            &t,
            BurstProfile::Modulated {
                p_small: 0.5,
                gamma: 1.0
            },
            0
        )
        .is_err());
    }

    #[test]
    fn gamma_calibration_is_monotone() {
        let g_low = gamma_for_target_dispersion(1.0, 3.0, 20.0).unwrap();
        let g_high = gamma_for_target_dispersion(1.0, 3.0, 400.0).unwrap();
        assert!(g_low < g_high);
        assert!((0.0..1.0).contains(&g_low));
        assert!((0.0..1.0).contains(&g_high));
    }

    #[test]
    fn gamma_calibration_floor() {
        assert!((gamma_for_target_dispersion(1.0, 3.0, 3.0).unwrap() - 0.0).abs() < 1e-9);
        assert!(gamma_for_target_dispersion(1.0, 3.0, 2.0).is_err());
    }

    #[test]
    fn balanced_p_small_matches_h2() {
        let p = balanced_p_small(3.0).unwrap();
        assert!((p - 0.8535533905932737).abs() < 1e-12);
        assert!(balanced_p_small(1.0).is_err());
    }

    #[test]
    fn reorder_is_deterministic_per_seed() {
        let base = hyperexp_trace(1_000, 1.0, 3.0, 5).unwrap();
        let a = impose_burstiness(&base, BurstProfile::Iid, 9).unwrap();
        let b = impose_burstiness(&base, BurstProfile::Iid, 9).unwrap();
        let c = impose_burstiness(&base, BurstProfile::Iid, 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
