use std::error::Error;
use std::fmt;

/// Errors produced by MAP construction, analysis, and fitting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MapError {
    /// The `(D0, D1)` pair is not a valid MAP representation (sign pattern,
    /// generator row sums, or reducibility violated).
    InvalidRepresentation {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A distribution parameter is outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The requested target is outside what the searched MAP(2) family can
    /// represent (e.g. SCV below 1/2, index of dispersion below the feasible
    /// floor, or a p95/mean ratio no two-phase marginal achieves).
    FitInfeasible {
        /// Description of why no candidate qualified.
        reason: String,
    },
    /// A numeric routine (bisection, quantile inversion) failed to converge.
    NoConvergence {
        /// Name of the routine that failed.
        what: &'static str,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::InvalidRepresentation { reason } => {
                write!(f, "invalid MAP representation: {reason}")
            }
            MapError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MapError::FitInfeasible { reason } => write!(f, "fit infeasible: {reason}"),
            MapError::NoConvergence { what } => write!(f, "no convergence in {what}"),
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_reason() {
        let e = MapError::FitInfeasible {
            reason: "I below SCV floor".into(),
        };
        assert!(e.to_string().contains("I below SCV floor"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<MapError>();
    }
}
