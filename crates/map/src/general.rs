//! General n-state Markovian Arrival Processes.
//!
//! The paper's methodology only needs MAP(2)s, but the library exposes the
//! n-state generalization so downstream users can experiment with richer
//! processes (e.g. KPC-style compositions). Analysis follows the same
//! matrix-analytic identities as [`crate::map2`], implemented with dense
//! linear algebra sized for small n.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::map2::Map2;
use crate::ph::sample_exp;
use crate::MapError;

/// An n-state MAP given by dense `(D0, D1)` matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Map {
    d0: Vec<Vec<f64>>,
    d1: Vec<Vec<f64>>,
}

impl Map {
    /// Construct and validate an n-state MAP.
    ///
    /// # Errors
    /// Mirrors [`Map2::new`]: sign pattern, square shape, zero row sums of
    /// `D0 + D1`, and a non-trivial `D1`.
    pub fn new(d0: Vec<Vec<f64>>, d1: Vec<Vec<f64>>) -> Result<Self, MapError> {
        let n = d0.len();
        if n == 0 {
            return Err(MapError::InvalidRepresentation {
                reason: "empty matrices".into(),
            });
        }
        if d1.len() != n || d0.iter().any(|r| r.len() != n) || d1.iter().any(|r| r.len() != n) {
            return Err(MapError::InvalidRepresentation {
                reason: "D0 and D1 must be square with matching size".into(),
            });
        }
        for i in 0..n {
            if !(d0[i][i] < 0.0) || !d0[i][i].is_finite() {
                return Err(MapError::InvalidRepresentation {
                    reason: format!("D0[{i}][{i}] must be negative"),
                });
            }
            for j in 0..n {
                if i != j && (d0[i][j] < 0.0 || !d0[i][j].is_finite()) {
                    return Err(MapError::InvalidRepresentation {
                        reason: format!("D0[{i}][{j}] must be non-negative"),
                    });
                }
                if d1[i][j] < 0.0 || !d1[i][j].is_finite() {
                    return Err(MapError::InvalidRepresentation {
                        reason: format!("D1[{i}][{j}] must be non-negative"),
                    });
                }
            }
            let row: f64 = (0..n).map(|j| d0[i][j] + d1[i][j]).sum();
            if row.abs() > 1e-8 * d0[i][i].abs().max(1.0) {
                return Err(MapError::InvalidRepresentation {
                    reason: format!("row {i} of D0 + D1 sums to {row}, expected 0"),
                });
            }
        }
        if d1.iter().flatten().all(|&x| x == 0.0) {
            return Err(MapError::InvalidRepresentation {
                reason: "D1 must contain at least one positive rate".into(),
            });
        }
        Ok(Map { d0, d1 })
    }

    /// Number of phases.
    pub fn order(&self) -> usize {
        self.d0.len()
    }

    /// The hidden-transition matrix `D0`.
    pub fn d0(&self) -> &[Vec<f64>] {
        &self.d0
    }

    /// The event-transition matrix `D1`.
    pub fn d1(&self) -> &[Vec<f64>] {
        &self.d1
    }

    /// `M = (-D0)^{-1}` by Gaussian elimination.
    fn m_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.order();
        let mut a: Vec<Vec<f64>> = self
            .d0
            .iter()
            .map(|r| r.iter().map(|x| -x).collect())
            .collect();
        let mut inv = identity(n);
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
                // burstcap-lint: allow(panic-in-lib) — col < n keeps the pivot range non-empty
                .expect("non-empty");
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let d = a[col][col];
            debug_assert!(d.abs() > 1e-14, "(-D0) must be nonsingular for a valid MAP");
            for k in 0..n {
                a[col][k] /= d;
                inv[col][k] /= d;
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let f = a[row][col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..n {
                    a[row][k] -= f * a[col][k];
                    inv[row][k] -= f * inv[col][k];
                }
            }
        }
        inv
    }

    /// Embedded phase chain at events, `P = (-D0)^{-1} D1`.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn embedded_chain(&self) -> Vec<Vec<f64>> {
        mat_mul(&self.m_matrix(), &self.d1)
    }

    /// Stationary distribution of the embedded chain by power iteration.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn embedded_stationary(&self) -> Vec<f64> {
        let p = self.embedded_chain();
        let n = self.order();
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..20_000 {
            let next = vec_mat(&pi, &p);
            let diff: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            // Renormalize against drift.
            let s: f64 = pi.iter().sum();
            for x in pi.iter_mut() {
                *x /= s;
            }
            if diff < 1e-14 {
                break;
            }
        }
        pi
    }

    /// Raw inter-event moment `E[X^k] = k! pi M^k 1` for `k = 1..=3`.
    ///
    /// # Panics
    /// Panics for unsupported `k`, as in [`Map2::moment`].
    pub fn moment(&self, k: u32) -> f64 {
        assert!((1..=3).contains(&k), "supported moments: 1..=3");
        let m = self.m_matrix();
        let mut v = self.embedded_stationary();
        let mut factorial = 1.0;
        for i in 1..=k {
            v = vec_mat(&v, &m);
            factorial *= i as f64;
        }
        factorial * v.iter().sum::<f64>()
    }

    /// Mean inter-event time.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn mean(&self) -> f64 {
        self.moment(1)
    }

    /// Squared coefficient of variation of inter-event times.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn scv(&self) -> f64 {
        let m1 = self.moment(1);
        self.moment(2) / (m1 * m1) - 1.0
    }

    /// Asymptotic index of dispersion via the fundamental matrix:
    /// `I = SCV + 2 * pi M (Z - I) M 1 / m1^2` with
    /// `Z = (I - P + 1 pi)^{-1}`.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn index_of_dispersion(&self) -> f64 {
        let n = self.order();
        let p = self.embedded_chain();
        let pi = self.embedded_stationary();
        let m = self.m_matrix();
        // A = I - P + 1*pi.
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = if i == j { 1.0 } else { 0.0 } - p[i][j] + pi[j];
            }
        }
        let z = invert(&a);
        // pi M (Z - I) M 1.
        let pim = vec_mat(&pi, &m);
        let mut zmi = z;
        for (i, row) in zmi.iter_mut().enumerate() {
            row[i] -= 1.0;
        }
        let w = vec_mat(&pim, &zmi);
        let wm = vec_mat(&w, &m);
        let cross: f64 = wm.iter().sum();
        let m1 = self.moment(1);
        self.scv() + 2.0 * cross / (m1 * m1)
    }
}

impl From<Map2> for Map {
    fn from(m: Map2) -> Self {
        let to_vec = |a: &[[f64; 2]; 2]| vec![vec![a[0][0], a[0][1]], vec![a[1][0], a[1][1]]];
        Map {
            d0: to_vec(m.d0()),
            d1: to_vec(m.d1()),
        }
    }
}

/// Stateful sampler for n-state MAPs, mirroring
/// [`crate::sampler::MapSampler`].
#[derive(Debug, Clone)]
pub struct GeneralSampler {
    map: Map,
    phase: usize,
}

impl GeneralSampler {
    /// Create a sampler starting from the embedded stationary distribution.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn new<R: Rng + ?Sized>(map: Map, rng: &mut R) -> Self {
        let pi = map.embedded_stationary();
        let u = rng.random::<f64>();
        let mut acc = 0.0;
        let mut phase = 0;
        for (i, &w) in pi.iter().enumerate() {
            acc += w;
            if u < acc {
                phase = i;
                break;
            }
            phase = i;
        }
        GeneralSampler { map, phase }
    }

    /// Draw the next inter-event time.
    pub fn next_event<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let n = self.map.order();
        let mut elapsed = 0.0;
        loop {
            let i = self.phase;
            let total = -self.map.d0[i][i];
            elapsed += sample_exp(rng, total);
            let u = rng.random::<f64>() * total;
            let mut acc = 0.0;
            for j in 0..n {
                if j != i {
                    acc += self.map.d0[i][j];
                    if u < acc {
                        self.phase = j;
                        break;
                    }
                }
            }
            if u < acc {
                continue;
            }
            for j in 0..n {
                acc += self.map.d1[i][j];
                if u < acc {
                    self.phase = j;
                    return elapsed;
                }
            }
            // Floating-point slack: stay in place and emit.
            return elapsed;
        }
    }
}

fn identity(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..n).map(|j| f64::from(u8::from(i == j))).collect())
        .collect()
}

fn mat_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for (k, &aik) in a[i].iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

fn vec_mat(v: &[f64], m: &[Vec<f64>]) -> Vec<f64> {
    let n = v.len();
    let mut out = vec![0.0; n];
    for (k, &vk) in v.iter().enumerate() {
        if vk == 0.0 {
            continue;
        }
        for j in 0..n {
            out[j] += vk * m[k][j];
        }
    }
    out
}

fn invert(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut work: Vec<Vec<f64>> = a.to_vec();
    let mut inv = identity(n);
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| work[i][col].abs().total_cmp(&work[j][col].abs()))
            // burstcap-lint: allow(panic-in-lib) — col < n keeps the pivot range non-empty
            .expect("non-empty");
        work.swap(col, pivot);
        inv.swap(col, pivot);
        let d = work[col][col];
        for k in 0..n {
            work[col][k] /= d;
            inv[col][k] /= d;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let f = work[row][col];
            if f == 0.0 {
                continue;
            }
            for k in 0..n {
                work[row][k] -= f * work[col][k];
                inv[row][k] -= f * inv[col][k];
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::Map2Fitter;
    use crate::ph::Ph2;

    fn poisson_map(rate: f64) -> Map {
        Map::new(vec![vec![-rate]], vec![vec![rate]]).unwrap()
    }

    #[test]
    fn one_state_poisson_analysis() {
        let m = poisson_map(2.0);
        assert!((m.mean() - 0.5).abs() < 1e-12);
        assert!((m.scv() - 1.0).abs() < 1e-10);
        assert!((m.index_of_dispersion() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn general_agrees_with_map2_closed_forms() {
        let marginal = Ph2::from_mean_scv(1.0, 3.0).unwrap();
        let m2 = Map2::from_hyper_marginal(marginal, 0.9).unwrap();
        let gen: Map = m2.into();
        assert!((gen.mean() - m2.mean()).abs() < 1e-10);
        assert!((gen.scv() - m2.scv()).abs() < 1e-8);
        assert!(
            (gen.index_of_dispersion() - m2.index_of_dispersion()).abs() / m2.index_of_dispersion()
                < 1e-6,
            "I general {} vs map2 {}",
            gen.index_of_dispersion(),
            m2.index_of_dispersion()
        );
    }

    #[test]
    fn fitted_map_roundtrips_through_general() {
        let m2 = Map2Fitter::new(0.01, 120.0, 0.03).fit().unwrap().map();
        let gen: Map = m2.into();
        assert!((gen.index_of_dispersion() - 120.0).abs() / 120.0 < 0.01);
    }

    #[test]
    fn three_state_map_is_analyzable() {
        // Ring of three phases with distinct rates.
        let d0 = vec![
            vec![-3.0, 0.5, 0.0],
            vec![0.0, -1.0, 0.2],
            vec![0.1, 0.0, -5.0],
        ];
        let d1 = vec![
            vec![2.5, 0.0, 0.0],
            vec![0.0, 0.8, 0.0],
            vec![0.0, 4.9, 0.0],
        ];
        let m = Map::new(d0, d1).unwrap();
        assert_eq!(m.order(), 3);
        assert!(m.mean() > 0.0);
        assert!(m.index_of_dispersion().is_finite());
        let pi = m.embedded_stationary();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn validation_rejects_ragged() {
        assert!(Map::new(vec![vec![-1.0, 1.0]], vec![vec![0.0, 0.0]]).is_err());
    }

    #[test]
    fn validation_rejects_bad_rows() {
        assert!(Map::new(vec![vec![-1.0]], vec![vec![0.5]]).is_err());
    }

    #[test]
    fn sampler_mean_matches_analysis() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let marginal = Ph2::from_mean_scv(1.0, 3.0).unwrap();
        let gen: Map = Map2::from_hyper_marginal(marginal, 0.8).unwrap().into();
        let expected = gen.mean();
        let mut rng = SmallRng::seed_from_u64(77);
        let mut s = GeneralSampler::new(gen, &mut rng);
        let n = 200_000;
        let mean = (0..n).map(|_| s.next_event(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "{mean} vs {expected}"
        );
    }
}
