//! Two-phase phase-type (PH) distributions.
//!
//! The paper's MAP(2)s are built around a two-phase marginal: a
//! **hyperexponential** (`H2`) when the squared coefficient of variation
//! exceeds 1 (the bursty regime of interest) or a **hypoexponential** when it
//! lies in `[1/2, 1)`. This module provides moment-matched constructors, the
//! exact CDF/quantiles, and samplers.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::MapError;

/// A two-phase acyclic phase-type distribution in mixture/series normal form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Ph2 {
    /// Hyperexponential: with probability `p` an `Exp(rate1)` sample,
    /// otherwise `Exp(rate2)`. Reaches any SCV ≥ 1.
    Hyper {
        /// Probability of drawing from phase 1.
        p: f64,
        /// Rate of phase 1 (by convention the *fast* phase, `rate1 >= rate2`).
        rate1: f64,
        /// Rate of phase 2.
        rate2: f64,
    },
    /// Hypoexponential: the sum `Exp(rate1) + Exp(rate2)`. Reaches SCV in
    /// `[1/2, 1)`.
    Hypo {
        /// Rate of the first stage.
        rate1: f64,
        /// Rate of the second stage.
        rate2: f64,
    },
}

impl Ph2 {
    /// Exponential distribution with the given mean, as the degenerate
    /// hyperexponential (`p = 1`, equal rates).
    ///
    /// # Errors
    /// Rejects non-positive means.
    pub fn exponential(mean: f64) -> Result<Self, MapError> {
        if mean <= 0.0 || !mean.is_finite() {
            return Err(MapError::InvalidParameter {
                name: "mean",
                reason: format!("must be positive and finite, got {mean}"),
            });
        }
        Ok(Ph2::Hyper {
            p: 1.0,
            rate1: 1.0 / mean,
            rate2: 1.0 / mean,
        })
    }

    /// Moment-match a two-phase PH to a mean and SCV.
    ///
    /// * `scv > 1` — balanced-means hyperexponential (the construction used
    ///   throughout the paper's examples):
    ///   `p = (1 + sqrt((scv-1)/(scv+1)))/2`, `rate1 = 2p/mean`,
    ///   `rate2 = 2(1-p)/mean`.
    /// * `scv == 1` — exponential.
    /// * `1/2 <= scv < 1` — hypoexponential with
    ///   `1/rate_{1,2} = mean/2 * (1 ± sqrt(2*scv - 1))`.
    ///
    /// # Errors
    /// Rejects non-positive mean and `scv < 1/2` (unreachable with two
    /// phases).
    ///
    /// # Example
    /// ```
    /// use burstcap_map::ph::Ph2;
    /// let ph = Ph2::from_mean_scv(1.0, 3.0)?;
    /// assert!((ph.mean() - 1.0).abs() < 1e-12);
    /// assert!((ph.scv() - 3.0).abs() < 1e-12);
    /// # Ok::<(), burstcap_map::MapError>(())
    /// ```
    pub fn from_mean_scv(mean: f64, scv: f64) -> Result<Self, MapError> {
        if mean <= 0.0 || !mean.is_finite() {
            return Err(MapError::InvalidParameter {
                name: "mean",
                reason: format!("must be positive and finite, got {mean}"),
            });
        }
        if !scv.is_finite() || scv < 0.5 {
            return Err(MapError::InvalidParameter {
                name: "scv",
                reason: format!("two-phase PH requires scv >= 1/2, got {scv}"),
            });
        }
        if (scv - 1.0).abs() < 1e-12 {
            return Self::exponential(mean);
        }
        if scv > 1.0 {
            let s = ((scv - 1.0) / (scv + 1.0)).sqrt();
            let p = (1.0 + s) / 2.0;
            Ok(Ph2::Hyper {
                p,
                rate1: 2.0 * p / mean,
                rate2: 2.0 * (1.0 - p) / mean,
            })
        } else {
            let s = (2.0 * scv - 1.0).sqrt();
            let u = mean / 2.0 * (1.0 + s);
            let v = mean / 2.0 * (1.0 - s);
            Ok(Ph2::Hypo {
                rate1: 1.0 / v,
                rate2: 1.0 / u,
            })
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Ph2::Hyper { p, rate1, rate2 } => p / rate1 + (1.0 - p) / rate2,
            Ph2::Hypo { rate1, rate2 } => 1.0 / rate1 + 1.0 / rate2,
        }
    }

    /// Raw second moment `E[X^2]`.
    pub fn second_moment(&self) -> f64 {
        match *self {
            Ph2::Hyper { p, rate1, rate2 } => {
                2.0 * p / (rate1 * rate1) + 2.0 * (1.0 - p) / (rate2 * rate2)
            }
            Ph2::Hypo { rate1, rate2 } => {
                let (u, v) = (1.0 / rate1, 1.0 / rate2);
                // Var = u^2 + v^2; E[X]^2 = (u + v)^2.
                2.0 * (u * u + v * v) + 2.0 * u * v
            }
        }
    }

    /// Variance.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.second_moment() - m * m
    }

    /// Squared coefficient of variation.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }

    /// Cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        match *self {
            Ph2::Hyper { p, rate1, rate2 } => {
                1.0 - p * (-rate1 * x).exp() - (1.0 - p) * (-rate2 * x).exp()
            }
            Ph2::Hypo { rate1, rate2 } => {
                if (rate1 - rate2).abs() < 1e-12 * rate1.max(rate2) {
                    // Erlang-2 limit.
                    let l = rate1;
                    1.0 - (1.0 + l * x) * (-l * x).exp()
                } else {
                    1.0 - (rate2 * (-rate1 * x).exp() - rate1 * (-rate2 * x).exp())
                        / (rate2 - rate1)
                }
            }
        }
    }

    /// Quantile function (inverse CDF) by bracketed bisection.
    ///
    /// # Errors
    /// Rejects `q` outside `(0, 1)`; returns [`MapError::NoConvergence`] only
    /// if bisection exhausts its iteration budget (practically unreachable
    /// for these smooth CDFs).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn quantile(&self, q: f64) -> Result<f64, MapError> {
        if !(q > 0.0 && q < 1.0) {
            return Err(MapError::InvalidParameter {
                name: "q",
                reason: format!("must lie strictly in (0, 1), got {q}"),
            });
        }
        // Bracket: grow upper bound until the CDF exceeds q.
        let mut hi = self.mean();
        let mut guard = 0;
        while self.cdf(hi) < q {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return Err(MapError::NoConvergence {
                    what: "quantile bracketing",
                });
            }
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-12 * hi.max(1e-300) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Ph2::Hyper { p, rate1, rate2 } => {
                let rate = if rng.random::<f64>() < p {
                    rate1
                } else {
                    rate2
                };
                sample_exp(rng, rate)
            }
            Ph2::Hypo { rate1, rate2 } => sample_exp(rng, rate1) + sample_exp(rng, rate2),
        }
    }
}

/// Draw an `Exp(rate)` sample via inversion.
pub(crate) fn sample_exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    // 1 - U in (0, 1] avoids ln(0).
    -(1.0 - rng.random::<f64>()).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_has_scv_one() {
        let ph = Ph2::exponential(2.0).unwrap();
        assert!((ph.mean() - 2.0).abs() < 1e-12);
        assert!((ph.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hyper_matches_mean_and_scv() {
        for &(m, c2) in &[(1.0, 3.0), (0.005, 10.0), (4.2, 1.5), (1.0, 100.0)] {
            let ph = Ph2::from_mean_scv(m, c2).unwrap();
            assert!((ph.mean() - m).abs() / m < 1e-10, "mean for scv={c2}");
            assert!((ph.scv() - c2).abs() / c2 < 1e-10, "scv for scv={c2}");
        }
    }

    #[test]
    fn hypo_matches_mean_and_scv() {
        for &(m, c2) in &[(1.0, 0.5), (2.0, 0.75), (0.01, 0.9)] {
            let ph = Ph2::from_mean_scv(m, c2).unwrap();
            assert!((ph.mean() - m).abs() / m < 1e-10);
            assert!(
                (ph.scv() - c2).abs() < 1e-10,
                "scv {} target {}",
                ph.scv(),
                c2
            );
        }
    }

    #[test]
    fn scv_below_half_rejected() {
        assert!(matches!(
            Ph2::from_mean_scv(1.0, 0.3),
            Err(MapError::InvalidParameter { name: "scv", .. })
        ));
    }

    #[test]
    fn invalid_mean_rejected() {
        assert!(Ph2::from_mean_scv(0.0, 3.0).is_err());
        assert!(Ph2::from_mean_scv(-1.0, 3.0).is_err());
        assert!(Ph2::exponential(f64::NAN).is_err());
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let ph = Ph2::from_mean_scv(1.0, 3.0).unwrap();
        let mut last = 0.0;
        for k in 0..100 {
            let x = k as f64 * 0.2;
            let f = ph.cdf(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= last);
            last = f;
        }
        assert_eq!(ph.cdf(-1.0), 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &c2 in &[0.6, 1.0, 3.0, 20.0] {
            let ph = Ph2::from_mean_scv(1.0, c2).unwrap();
            for &q in &[0.05, 0.5, 0.95, 0.999] {
                let x = ph.quantile(q).unwrap();
                assert!((ph.cdf(x) - q).abs() < 1e-9, "c2={c2}, q={q}");
            }
        }
    }

    #[test]
    fn quantile_rejects_bad_q() {
        let ph = Ph2::exponential(1.0).unwrap();
        assert!(ph.quantile(0.0).is_err());
        assert!(ph.quantile(1.0).is_err());
    }

    #[test]
    fn exponential_quantile_closed_form() {
        let ph = Ph2::exponential(1.0).unwrap();
        let x = ph.quantile(0.95).unwrap();
        assert!(
            (x - (20.0f64).ln()).abs() < 1e-9,
            "p95 of Exp(1) is ln 20, got {x}"
        );
    }

    #[test]
    fn sampling_matches_moments() {
        let ph = Ph2::from_mean_scv(1.0, 3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| ph.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "sample mean {mean}");
        assert!(
            (var / (mean * mean) - 3.0).abs() < 0.25,
            "sample scv {}",
            var / (mean * mean)
        );
    }

    #[test]
    fn hypo_sampling_matches_mean() {
        let ph = Ph2::from_mean_scv(2.0, 0.7).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let mean = (0..n).map(|_| ph.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.03, "sample mean {mean}");
    }

    #[test]
    fn balanced_means_property() {
        // The construction balances p/rate1 = (1-p)/rate2.
        if let Ph2::Hyper { p, rate1, rate2 } = Ph2::from_mean_scv(1.0, 5.0).unwrap() {
            assert!((p / rate1 - (1.0 - p) / rate2).abs() < 1e-12);
        } else {
            panic!("expected hyperexponential for scv > 1");
        }
    }

    #[test]
    fn erlang2_limit_cdf() {
        let ph = Ph2::from_mean_scv(1.0, 0.5).unwrap();
        // SCV exactly 1/2 is the Erlang-2: rates equal (2/mean each).
        if let Ph2::Hypo { rate1, rate2 } = ph {
            assert!((rate1 - rate2).abs() < 1e-9, "rates {rate1} vs {rate2}");
        } else {
            panic!("expected hypoexponential");
        }
        let f = ph.cdf(1.0);
        // Erlang-2 with rate 2: F(1) = 1 - (1 + 2) e^{-2}.
        assert!((f - (1.0 - 3.0 * (-2.0f64).exp())).abs() < 1e-9);
    }
}
