//! Property-based tests for the MAP substrate.

use proptest::prelude::*;

use burstcap_map::expm::expm2;
use burstcap_map::fit::{renewal_map2, Map2Fitter};
use burstcap_map::ph::Ph2;
use burstcap_map::trace::{impose_burstiness, BurstProfile};
use burstcap_map::Map2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// exp(Q t) of any 2x2 generator is a stochastic matrix.
    #[test]
    fn generator_exponential_is_stochastic(
        a in 0.01f64..50.0,
        b in 0.01f64..50.0,
        t in 0.0f64..10.0,
    ) {
        let e = expm2(&[[-a, a], [b, -b]], t);
        for row in e {
            prop_assert!((row[0] + row[1] - 1.0).abs() < 1e-8);
            prop_assert!(row[0] >= -1e-10 && row[1] >= -1e-10);
        }
    }

    /// PH2 CDF is a proper distribution function on a coarse grid.
    #[test]
    fn ph2_cdf_proper(mean in 0.01f64..100.0, c2 in 0.5f64..200.0) {
        let ph = Ph2::from_mean_scv(mean, c2).unwrap();
        let mut last = 0.0;
        for k in 1..=30 {
            let x = mean * k as f64 / 3.0;
            let f = ph.cdf(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
        // Far tail approaches 1.
        prop_assert!(ph.cdf(mean * 200.0) > 0.95);
    }

    /// Quantile and CDF are mutually inverse for any valid PH2.
    #[test]
    fn ph2_quantile_inverts(mean in 0.01f64..10.0, c2 in 0.5f64..100.0, q in 0.01f64..0.99) {
        let ph = Ph2::from_mean_scv(mean, c2).unwrap();
        let x = ph.quantile(q).unwrap();
        prop_assert!((ph.cdf(x) - q).abs() < 1e-7);
    }

    /// Renewal MAPs built from any marginal have I = SCV and zero lag-1
    /// autocorrelation.
    #[test]
    fn renewal_map_dispersion_equals_scv(mean in 0.01f64..10.0, c2 in 0.55f64..100.0) {
        let ph = Ph2::from_mean_scv(mean, c2).unwrap();
        let map = renewal_map2(ph).unwrap();
        prop_assert!((map.index_of_dispersion() - c2).abs() / c2 < 1e-6);
        prop_assert!(map.lag1_correlation().abs() < 1e-8);
    }

    /// Time rescaling preserves all scale-free descriptors.
    #[test]
    fn rescaling_preserves_shape(
        c2 in 1.05f64..100.0,
        gamma in 0.0f64..0.99,
        new_mean in 0.001f64..100.0,
    ) {
        let marginal = Ph2::from_mean_scv(1.0, c2).unwrap();
        let map = Map2::from_hyper_marginal(marginal, gamma).unwrap();
        let scaled = map.with_mean(new_mean).unwrap();
        prop_assert!((scaled.mean() - new_mean).abs() / new_mean < 1e-9);
        prop_assert!((scaled.scv() - map.scv()).abs() < 1e-6);
        prop_assert!((scaled.gamma() - map.gamma()).abs() < 1e-9);
        let rel_i = (scaled.index_of_dispersion() - map.index_of_dispersion()).abs()
            / map.index_of_dispersion();
        prop_assert!(rel_i < 1e-6);
    }

    /// The fitter's chosen candidate always satisfies the paper's +-20% band
    /// and exact mean.
    #[test]
    fn fitter_respects_band(
        mean in 1e-3f64..10.0,
        i in 0.6f64..400.0,
        p95_factor in 1.1f64..6.0,
    ) {
        let fitted = Map2Fitter::new(mean, i, mean * p95_factor).fit().unwrap();
        prop_assert!(fitted.i_error() <= 0.2 + 1e-9);
        prop_assert!((fitted.map().mean() - mean).abs() / mean < 1e-6);
    }

    /// Every constructor in the MAP(2) family yields a *valid* MAP: D0 has
    /// nonnegative off-diagonals and a strictly negative diagonal, D1 is
    /// entrywise nonnegative, and each row of D0 + D1 sums to zero (the pair
    /// is a partitioned generator).
    #[test]
    fn map2_generator_validity(
        c2 in 1.05f64..200.0,
        gamma in 0.0f64..0.999,
        mean in 1e-3f64..1e2,
    ) {
        let marginal = Ph2::from_mean_scv(mean, c2).unwrap();
        for map in [
            Map2::from_hyper_marginal(marginal, gamma).unwrap(),
            renewal_map2(marginal).unwrap(),
            Map2::poisson(1.0 / mean).unwrap(),
        ] {
            let (d0, d1) = (map.d0(), map.d1());
            for i in 0..2 {
                prop_assert!(d0[i][i] < 0.0, "D0 diagonal must be negative");
                prop_assert!(d0[i][1 - i] >= 0.0, "D0 off-diagonal must be nonnegative");
                let row_sum: f64 = d0[i][0] + d0[i][1] + d1[i][0] + d1[i][1];
                prop_assert!(
                    row_sum.abs() < 1e-8 * d0[i][i].abs().max(1.0),
                    "row {i} of D0 + D1 sums to {row_sum}, not 0"
                );
                for &v in &d1[i] {
                    prop_assert!(v >= 0.0, "D1 must be entrywise nonnegative, got {v}");
                }
            }
        }
    }

    /// Moment-matching round-trip: rebuilding a MAP(2) from its own measured
    /// descriptors (mean, I, p95) through the Section 4.1 fitter recovers the
    /// mean exactly and the index of dispersion within the fitter's ±20%
    /// contract.
    #[test]
    fn map2_moment_matching_roundtrip(
        c2 in 1.2f64..80.0,
        gamma in 0.0f64..0.98,
        mean in 1e-2f64..10.0,
    ) {
        let marginal = Ph2::from_mean_scv(mean, c2).unwrap();
        let original = Map2::from_hyper_marginal(marginal, gamma).unwrap();
        let (m1, i, p95) = (
            original.mean(),
            original.index_of_dispersion(),
            original.quantile(0.95).unwrap(),
        );
        let rebuilt = Map2Fitter::new(m1, i, p95).fit().unwrap().map();
        prop_assert!((rebuilt.mean() - m1).abs() / m1 < 1e-6);
        prop_assert!(
            (rebuilt.index_of_dispersion() - i).abs() / i <= 0.2 + 1e-9,
            "round-trip I {} vs original {i}",
            rebuilt.index_of_dispersion()
        );
    }

    /// Sorting maximizes the measured index of dispersion over random
    /// reorderings (spot-check with one random permutation).
    #[test]
    fn sorted_is_most_bursty(seed in any::<u64>()) {
        let base = burstcap_map::trace::hyperexp_trace(6_000, 1.0, 3.0, seed).unwrap();
        let shuffled = impose_burstiness(&base, BurstProfile::Iid, seed).unwrap();
        let sorted = impose_burstiness(&base, BurstProfile::Sorted, seed).unwrap();
        let i_of = |t: &[f64]| {
            burstcap_stats::dispersion::index_of_dispersion_counting(t, 20.0, 0.2)
                .unwrap()
                .index_of_dispersion()
        };
        prop_assert!(i_of(&sorted) > i_of(&shuffled));
    }
}
