//! Online-pipeline trace tests: the planner's event stream across a regime
//! shift is pinned exactly, and the deterministic export is byte-stable
//! across repeat runs — the trace is a pure function of the window stream.

use burstcap_obs::{EventKind, FieldValue, Recorder};
use burstcap_online::detector::CusumOptions;
use burstcap_online::{MonitorWindow, OnlinePlanner, OnlinePlannerOptions, TierSample};

fn window(front: (f64, u64), db: (f64, u64)) -> MonitorWindow {
    MonitorWindow {
        tiers: vec![
            TierSample {
                utilization: front.0,
                completions: front.1,
            },
            TierSample {
                utilization: db.0,
                completions: db.1,
            },
        ],
    }
}

fn quick_options() -> OnlinePlannerOptions {
    let mut options = OnlinePlannerOptions::new(20, 0.5);
    options.min_windows = 120;
    options.replan_every = 20;
    options.detector = CusumOptions {
        warmup_windows: 30,
        slack: 0.25,
        threshold: 6.0,
    };
    options
}

/// Drive the injected-shift scenario (400 stable windows, then a 3x db
/// demand shift) through a traced planner and return the recorder.
fn shift_run() -> Recorder {
    let recorder = Recorder::new();
    let mut planner = OnlinePlanner::new(5.0, 2, quick_options())
        .unwrap()
        .with_trace(recorder.trace());
    let stable = window((0.5, 250), (0.25, 250));
    let shifted = window((0.5, 250), (0.75, 250));
    for k in 0..900 {
        let w = if k < 400 { &stable } else { &shifted };
        planner.ingest(w).unwrap();
    }
    recorder
}

fn field_u64(fields: &[(&'static str, FieldValue)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        FieldValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

fn field_bool(fields: &[(&'static str, FieldValue)], key: &str) -> Option<bool> {
    fields.iter().find_map(|(k, v)| match v {
        FieldValue::Bool(b) if *k == key => Some(*b),
        _ => None,
    })
}

#[test]
fn regime_shift_event_sequence_is_pinned() {
    let recorder = shift_run();
    // The lifecycle events (alarm / reset / refit), in emission order.
    let lifecycle: Vec<(String, Option<u64>, Option<bool>)> = recorder
        .events()
        .iter()
        .filter(|e| matches!(e.name, "online.alarm" | "online.reset" | "online.refit"))
        .map(|e| {
            (
                e.name.to_owned(),
                field_u64(&e.fields, "tier"),
                field_bool(&e.fields, "warm"),
            )
        })
        .collect();
    // Exactly four lifecycle events: the cold first fit once estimators
    // mature, the CUSUM alarm on the shifted db tier, that tier's
    // estimator reset, and the warm post-shift re-fit.
    assert_eq!(
        lifecycle,
        vec![
            ("online.refit".to_owned(), None, Some(false)),
            ("online.alarm".to_owned(), Some(1), None),
            ("online.reset".to_owned(), Some(1), None),
            ("online.refit".to_owned(), None, Some(true)),
        ],
        "full lifecycle: {lifecycle:?}"
    );
    // The alarm fires shortly after the shift at window 400.
    let alarm = recorder
        .events()
        .into_iter()
        .find(|e| e.name == "online.alarm")
        .unwrap();
    let w = field_u64(&alarm.fields, "window").unwrap();
    assert!((400..440).contains(&w), "alarm at window {w}");
    // Ticks carry the CUSUM statistic for both tiers on every replan.
    let ticks = recorder
        .events()
        .iter()
        .filter(|e| e.name == "online.tick")
        .count();
    let cusums = recorder
        .events()
        .iter()
        .filter(|e| e.name == "online.cusum")
        .count();
    assert!(ticks > 0);
    assert_eq!(cusums, 2 * ticks, "two cusum samples per tick");
    // The solver spans nested under the planner's refits made it into the
    // same recorder: two refits, each one qn.solve span.
    let solves = recorder
        .events()
        .iter()
        .filter(|e| e.name == "qn.solve" && e.kind == EventKind::SpanStart)
        .count();
    assert_eq!(solves, 2, "one traced solve per refit");
}

#[test]
fn repeat_runs_export_byte_identical_logs() {
    let a = shift_run();
    let b = shift_run();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.full_json(), b.full_json());
}
