//! Per-tier streaming characterization: the paper's three descriptors,
//! maintained window by window.
//!
//! [`TierEstimator`] bundles the three one-pass estimators of
//! [`burstcap_stats::streaming`] — demand regression, index of dispersion,
//! and the p95 tail — and materializes a
//! [`ServiceCharacterization`] on demand, mirroring the batch
//! [`burstcap::characterize::characterize`] stage of the offline pipeline.

use serde::{Deserialize, Serialize};

use burstcap::characterize::ServiceCharacterization;
use burstcap_stats::streaming::{StreamingDemand, StreamingDispersion, StreamingServicePercentile};

use crate::window::TierSample;
use crate::OnlineError;

/// Knobs of the streaming characterization stage; defaults mirror the batch
/// [`burstcap::characterize::CharacterizeOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierEstimatorOptions {
    /// Stopping tolerance of the streaming Figure 2 estimator.
    pub dispersion_tolerance: f64,
    /// Minimum windows per aggregation level (the paper's 100).
    pub dispersion_min_windows: usize,
    /// Cap on maintained aggregation levels.
    pub dispersion_max_levels: usize,
    /// Quantile tracked by the tail sketch (0.95 in the paper).
    pub quantile: f64,
}

impl Default for TierEstimatorOptions {
    fn default() -> Self {
        TierEstimatorOptions {
            dispersion_tolerance: 0.05,
            dispersion_min_windows: 100,
            // The batch default of 512 levels exists for very long traces;
            // a live feed replans long before it could fill them, and every
            // maintained level costs work per arriving window.
            dispersion_max_levels: 64,
            quantile: 0.95,
        }
    }
}

/// Streaming characterizer for one tier.
///
/// # Example
/// ```
/// use burstcap_online::estimator::{TierEstimator, TierEstimatorOptions};
/// use burstcap_online::window::TierSample;
///
/// let mut tier = TierEstimator::new(5.0, TierEstimatorOptions::default());
/// for _ in 0..200 {
///     tier.push(&TierSample { utilization: 0.4, completions: 200 })?;
/// }
/// let c = tier.characterize()?;
/// assert!((c.mean_service_time - 0.01).abs() < 1e-9); // 2 s busy / 200 jobs
/// # Ok::<(), burstcap_online::OnlineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TierEstimator {
    demand: StreamingDemand,
    dispersion: StreamingDispersion,
    tail: StreamingServicePercentile,
    windows: usize,
}

impl TierEstimator {
    /// Create an estimator for monitoring windows of `resolution` seconds.
    ///
    /// # Panics
    /// Panics if `resolution` is not strictly positive or the options carry
    /// an invalid quantile/level cap (deployment constants).
    pub fn new(resolution: f64, options: TierEstimatorOptions) -> Self {
        TierEstimator {
            demand: StreamingDemand::new(resolution),
            dispersion: StreamingDispersion::new(resolution)
                .tolerance(options.dispersion_tolerance)
                .min_windows(options.dispersion_min_windows)
                .max_levels(options.dispersion_max_levels),
            tail: StreamingServicePercentile::new(resolution).quantile(options.quantile),
            windows: 0,
        }
    }

    /// Ingest one window.
    ///
    /// # Errors
    /// Rejects invalid samples (utilization outside `[0, 1]`); the window
    /// is not ingested by any of the estimators.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (3 reachable
    /// panic sites, e.g. `crates/stats/src/streaming.rs:317`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn push(&mut self, sample: &TierSample) -> Result<(), OnlineError> {
        // Validate once up front so a bad sample cannot leave the three
        // estimators out of sync.
        if !(0.0..=1.0).contains(&sample.utilization) || sample.utilization.is_nan() {
            return Err(OnlineError::InvalidWindow {
                reason: format!("utilization {} outside [0, 1]", sample.utilization),
            });
        }
        self.demand.push(sample.utilization, sample.completions)?;
        self.dispersion
            .push(sample.utilization, sample.completions)?;
        self.tail.push(sample.utilization, sample.completions)?;
        self.windows += 1;
        Ok(())
    }

    /// Number of windows ingested.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Current three-descriptor characterization of the tier.
    ///
    /// # Errors
    /// Propagates estimator failures (stream too short for the Figure 2
    /// levels, no completions yet, ...).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (5 reachable
    /// panic sites, e.g. `crates/stats/src/streaming.rs:419`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn characterize(&self) -> Result<ServiceCharacterization, OnlineError> {
        let demand = self.demand.estimate()?;
        let dispersion = self.dispersion.estimate()?;
        let tail = self.tail.estimate()?;
        Ok(ServiceCharacterization {
            mean_service_time: demand.mean_service_time,
            index_of_dispersion: dispersion.index_of_dispersion(),
            p95_service_time: tail.p95_service_time,
            dispersion_converged: dispersion.converged(),
            regression_r_squared: demand.r_squared,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burstcap::characterize::{characterize, CharacterizeOptions};
    use burstcap::measurements::TierMeasurements;

    #[test]
    fn streaming_characterization_tracks_batch_pipeline() {
        // Regime-switching counts: the same fixture the batch characterize
        // tests use.
        let mut util = Vec::new();
        let mut n = Vec::new();
        for block in 0..40 {
            for _ in 0..20 {
                util.push(0.8);
                n.push(if block % 2 == 0 { 10u64 } else { 90 });
            }
        }
        let mut tier = TierEstimator::new(5.0, TierEstimatorOptions::default());
        for (&u, &c) in util.iter().zip(&n) {
            tier.push(&TierSample {
                utilization: u,
                completions: c,
            })
            .unwrap();
        }
        let online = tier.characterize().unwrap();
        let m = TierMeasurements::new(5.0, util, n).unwrap();
        let batch = characterize(&m, CharacterizeOptions::default()).unwrap();
        // Demand regression: identical sums, identical slope.
        assert_eq!(
            online.mean_service_time.to_bits(),
            batch.mean_service_time.to_bits()
        );
        // Dispersion: integer-exact level statistics, rounding-level gap.
        assert!(
            (online.index_of_dispersion - batch.index_of_dispersion).abs()
                / batch.index_of_dispersion
                < 1e-9
        );
        assert_eq!(online.dispersion_converged, batch.dispersion_converged);
        // Tail: the P2 median marker settles *between* the two count modes
        // of this deliberately bimodal fixture (a five-marker sketch cannot
        // resolve a two-point median exactly), so only bracket it: the
        // estimate must lie between the per-mode extremes B/90 and B/10.
        let busy = 0.8 * 5.0;
        assert!(
            online.p95_service_time >= busy / 90.0 && online.p95_service_time <= busy / 10.0,
            "p95 {} outside [{}, {}] (batch {})",
            online.p95_service_time,
            busy / 90.0,
            busy / 10.0,
            batch.p95_service_time
        );
        assert_eq!(tier.windows(), 800);
    }

    #[test]
    fn streaming_p95_is_tight_on_unimodal_counts() {
        // A smooth count distribution: the sketches track the batch
        // estimator closely.
        let mut util = Vec::new();
        let mut n = Vec::new();
        for k in 0..800u64 {
            let c = 40 + (k * 29) % 41; // 40..=80, spread out
            util.push((c as f64 * 0.01).min(1.0));
            n.push(c);
        }
        let mut tier = TierEstimator::new(5.0, TierEstimatorOptions::default());
        for (&u, &c) in util.iter().zip(&n) {
            tier.push(&TierSample {
                utilization: u,
                completions: c,
            })
            .unwrap();
        }
        let online = tier.characterize().unwrap();
        let m = TierMeasurements::new(5.0, util, n).unwrap();
        let batch = characterize(&m, CharacterizeOptions::default()).unwrap();
        assert!(
            (online.p95_service_time - batch.p95_service_time).abs() / batch.p95_service_time < 0.1,
            "p95 {} vs {}",
            online.p95_service_time,
            batch.p95_service_time
        );
    }

    #[test]
    fn invalid_sample_leaves_estimators_consistent() {
        let mut tier = TierEstimator::new(1.0, TierEstimatorOptions::default());
        tier.push(&TierSample {
            utilization: 0.5,
            completions: 10,
        })
        .unwrap();
        assert!(tier
            .push(&TierSample {
                utilization: 1.5,
                completions: 10,
            })
            .is_err());
        assert_eq!(tier.windows(), 1);
    }

    #[test]
    fn characterize_before_data_fails_cleanly() {
        let tier = TierEstimator::new(1.0, TierEstimatorOptions::default());
        assert!(tier.characterize().is_err());
    }
}
