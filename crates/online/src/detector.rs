//! CUSUM regime-change detection on per-window service statistics.
//!
//! The online planner must distinguish *estimator refinement* (descriptors
//! wobbling as the streaming estimates converge) from a genuine *regime
//! change* (the paper's contention episodes turning a tier's service process
//! into a different one — e.g. a database slowdown inflating per-request
//! demand). A two-sided CUSUM on the normalized per-window demand
//! (`U_k * T / n_k`) does exactly that: small zero-mean noise cancels in the
//! cumulative sums, a sustained mean shift accumulates linearly until the
//! decision threshold trips.

use serde::{Deserialize, Serialize};

use crate::OnlineError;

/// CUSUM tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumOptions {
    /// Windows used to learn the in-control baseline mean before the test
    /// arms itself (re-learned after every [`CusumDetector::reset`]).
    pub warmup_windows: usize,
    /// Slack `kappa` per observation, in baseline-relative units: deviations
    /// below `kappa * baseline` are absorbed. Half the smallest shift worth
    /// detecting is the classical choice.
    pub slack: f64,
    /// Decision threshold `h` on the cumulative statistic, in
    /// baseline-relative units.
    pub threshold: f64,
}

impl Default for CusumOptions {
    fn default() -> Self {
        CusumOptions {
            warmup_windows: 40,
            slack: 0.25,
            threshold: 8.0,
        }
    }
}

impl CusumOptions {
    /// Validate the tuning.
    ///
    /// # Errors
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), OnlineError> {
        if self.warmup_windows < 2 {
            return Err(OnlineError::InvalidConfig {
                name: "warmup_windows",
                reason: format!("need at least 2, got {}", self.warmup_windows),
            });
        }
        if self.slack < 0.0 || !self.slack.is_finite() {
            return Err(OnlineError::InvalidConfig {
                name: "slack",
                reason: format!("must be non-negative and finite, got {}", self.slack),
            });
        }
        if self.threshold <= 0.0 || !self.threshold.is_finite() {
            return Err(OnlineError::InvalidConfig {
                name: "threshold",
                reason: format!("must be positive and finite, got {}", self.threshold),
            });
        }
        Ok(())
    }
}

/// Two-sided CUSUM detector with a self-learned baseline.
///
/// Feed it one statistic per monitoring window; it returns `true` on the
/// update that crosses the decision threshold. After a regime change is
/// acted upon (the planner re-fits), call [`CusumDetector::reset`] so the
/// baseline re-learns from the new regime.
///
/// # Example
/// ```
/// use burstcap_online::detector::{CusumDetector, CusumOptions};
///
/// let mut det = CusumDetector::new(CusumOptions {
///     warmup_windows: 10,
///     slack: 0.25,
///     threshold: 4.0,
/// })?;
/// // Learn a baseline of 1.0, then inject a sustained 2x shift.
/// let mut fired_at = None;
/// for k in 0..100 {
///     let x = if k < 50 { 1.0 } else { 2.0 };
///     if det.update(x) && fired_at.is_none() {
///         fired_at = Some(k);
///     }
/// }
/// let fired = fired_at.expect("a 2x shift must trip the detector");
/// assert!(fired >= 50 && fired < 65, "fired at {fired}");
/// # Ok::<(), burstcap_online::OnlineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CusumDetector {
    options: CusumOptions,
    baseline_sum: f64,
    baseline_count: usize,
    baseline: Option<f64>,
    g_pos: f64,
    g_neg: f64,
}

impl CusumDetector {
    /// Create a detector.
    ///
    /// # Errors
    /// Propagates [`CusumOptions::validate`].
    pub fn new(options: CusumOptions) -> Result<Self, OnlineError> {
        options.validate()?;
        Ok(CusumDetector {
            options,
            baseline_sum: 0.0,
            baseline_count: 0,
            baseline: None,
            g_pos: 0.0,
            g_neg: 0.0,
        })
    }

    /// Ingest one per-window statistic; returns `true` if the cumulative
    /// statistic crossed the threshold on this update. Non-finite
    /// observations are ignored.
    pub fn update(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        let Some(mu0) = self.baseline else {
            self.baseline_sum += x;
            self.baseline_count += 1;
            if self.baseline_count >= self.options.warmup_windows {
                self.baseline = Some(self.baseline_sum / self.baseline_count as f64);
            }
            return false;
        };
        // Baseline-relative deviation; an (almost) idle baseline degenerates
        // to absolute deviations.
        let scale = mu0.abs().max(1e-12);
        let z = (x - mu0) / scale;
        // burstcap-lint: allow(silent-clamp) — reflection at zero is the CUSUM recursion's definition (Page's test), not an error mask
        self.g_pos = (self.g_pos + z - self.options.slack).max(0.0);
        // burstcap-lint: allow(silent-clamp) — same: definitional CUSUM reflection at zero
        self.g_neg = (self.g_neg - z - self.options.slack).max(0.0);
        self.g_pos > self.options.threshold || self.g_neg > self.options.threshold
    }

    /// Whether the detector is still learning its baseline.
    pub fn in_warmup(&self) -> bool {
        self.baseline.is_none()
    }

    /// The learned in-control mean, once warmup completed.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Current value of the (larger) one-sided cumulative statistic.
    pub fn statistic(&self) -> f64 {
        self.g_pos.max(self.g_neg)
    }

    /// Forget the baseline and the cumulative sums: the next
    /// `warmup_windows` observations re-learn the in-control mean. Call
    /// after acting on an alarm.
    pub fn reset(&mut self) {
        self.baseline_sum = 0.0;
        self.baseline_count = 0;
        self.baseline = None;
        self.g_pos = 0.0;
        self.g_neg = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(warmup: usize, slack: f64, threshold: f64) -> CusumDetector {
        CusumDetector::new(CusumOptions {
            warmup_windows: warmup,
            slack,
            threshold,
        })
        .unwrap()
    }

    #[test]
    fn stays_quiet_on_zero_mean_noise() {
        let mut det = detector(20, 0.3, 6.0);
        // Deterministic bounded "noise" well inside the slack.
        for k in 0..2000u64 {
            let x = 1.0 + 0.2 * (((k * 37) % 17) as f64 / 17.0 - 0.5);
            assert!(!det.update(x), "false alarm at window {k}");
        }
        assert!(!det.in_warmup());
        assert!((det.baseline().unwrap() - 1.0).abs() < 0.1);
    }

    #[test]
    fn detects_downward_shifts_too() {
        let mut det = detector(10, 0.25, 4.0);
        let mut fired = None;
        for k in 0..200 {
            let x = if k < 60 { 1.0 } else { 0.4 };
            if det.update(x) && fired.is_none() {
                fired = Some(k);
            }
        }
        let fired = fired.expect("a 60% drop must fire");
        assert!((60..75).contains(&fired), "fired at {fired}");
    }

    #[test]
    fn reset_relearns_the_new_regime() {
        let mut det = detector(10, 0.25, 4.0);
        let mut fired = false;
        for k in 0..100 {
            let x = if k < 50 { 1.0 } else { 3.0 };
            fired |= det.update(x);
        }
        assert!(fired);
        det.reset();
        assert!(det.in_warmup());
        assert!(det.statistic() == 0.0);
        // The new regime becomes the baseline: no further alarms.
        for _ in 0..500 {
            assert!(!det.update(3.0));
        }
        assert!((det.baseline().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ignores_non_finite_observations() {
        let mut det = detector(2, 0.25, 4.0);
        det.update(1.0);
        det.update(f64::NAN);
        det.update(f64::INFINITY);
        assert!(det.in_warmup());
        det.update(1.0);
        assert!(!det.in_warmup());
    }

    #[test]
    fn options_are_validated() {
        assert!(CusumDetector::new(CusumOptions {
            warmup_windows: 1,
            ..CusumOptions::default()
        })
        .is_err());
        assert!(CusumDetector::new(CusumOptions {
            slack: -0.1,
            ..CusumOptions::default()
        })
        .is_err());
        assert!(CusumDetector::new(CusumOptions {
            threshold: 0.0,
            ..CusumOptions::default()
        })
        .is_err());
    }
}
