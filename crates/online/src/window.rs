//! Monitoring windows and the sources that produce them.
//!
//! A [`MonitorWindow`] is one monitoring interval's worth of the coarse data
//! the paper's methodology consumes — per-tier utilization and completion
//! count — and a [`WindowSource`] hands them out one at a time, which is the
//! only ingestion shape the online planner accepts: no look-ahead, no
//! rescans.
//!
//! Two sources ship here and one in [`crate::sar`]:
//!
//! * [`ReplaySource`] — replays recorded monitoring series window by window;
//!   its [`ReplaySource::from_run`] constructor adapts a TPC-W testbed run
//!   (via [`burstcap_tpcw::monitor::TestbedRun::tandem_monitoring`]), and
//!   [`ReplaySource::append_run`] splices further runs onto the feed — the
//!   standard way to inject a regime shift in experiments;
//! * [`crate::sar::SarTextSource`] — parses a plain-text `sar`-style log.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use burstcap_tpcw::monitor::{MonitoringSeries, TestbedRun};

use crate::OnlineError;

/// One tier's slice of a monitoring window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSample {
    /// Fraction of the window the tier's server was busy, in `[0, 1]`.
    pub utilization: f64,
    /// Requests the tier completed during the window.
    pub completions: u64,
}

/// One monitoring interval across all tiers, in tandem order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorWindow {
    /// Per-tier samples, in tandem (request-flow) order.
    pub tiers: Vec<TierSample>,
}

/// A producer of monitoring windows, one at a time.
///
/// `Ok(None)` means the feed is (currently) exhausted; a live
/// implementation may later produce more windows, so exhaustion is not
/// necessarily final.
pub trait WindowSource {
    /// Window length in seconds, constant over the feed.
    fn resolution(&self) -> f64;

    /// Number of tiers per window, constant over the feed.
    fn tier_count(&self) -> usize;

    /// Produce the next window, or `None` if the feed has nothing buffered.
    ///
    /// # Errors
    /// Implementation-specific (parse failures, adapter errors).
    fn next_window(&mut self) -> Result<Option<MonitorWindow>, OnlineError>;
}

/// Replays recorded monitoring series as a window feed.
///
/// # Example
/// ```
/// use burstcap_online::window::{ReplaySource, WindowSource};
/// use burstcap_tpcw::monitor::MonitoringSeries;
///
/// let tier = MonitoringSeries {
///     resolution: 5.0,
///     utilization: vec![0.4, 0.5],
///     completions: vec![20, 25],
/// };
/// let mut feed = ReplaySource::from_tier_series(&[tier])?;
/// assert_eq!(feed.tier_count(), 1);
/// assert_eq!(feed.remaining(), 2);
/// let w = feed.next_window()?.expect("two windows buffered");
/// assert_eq!(w.tiers[0].completions, 20);
/// # Ok::<(), burstcap_online::OnlineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySource {
    resolution: f64,
    tier_count: usize,
    windows: VecDeque<MonitorWindow>,
}

impl ReplaySource {
    /// Build a feed from one recorded series per tier (tandem order). The
    /// series are zipped window by window; if they differ in length the
    /// feed stops at the shortest.
    ///
    /// # Errors
    /// Rejects an empty tier list and mismatched resolutions.
    pub fn from_tier_series(series: &[MonitoringSeries]) -> Result<Self, OnlineError> {
        let first = series.first().ok_or(OnlineError::InvalidConfig {
            name: "series",
            reason: "need at least one tier".into(),
        })?;
        if first.resolution <= 0.0 || !first.resolution.is_finite() {
            return Err(OnlineError::InvalidConfig {
                name: "series",
                reason: format!("resolution must be positive, got {}", first.resolution),
            });
        }
        let mut feed = ReplaySource {
            resolution: first.resolution,
            tier_count: series.len(),
            windows: VecDeque::new(),
        };
        feed.append_tier_series(series)?;
        Ok(feed)
    }

    /// Build a feed from a TPC-W testbed run: the tiers come out in tandem
    /// order via [`TestbedRun::tandem_monitoring`].
    ///
    /// # Errors
    /// Propagates monitoring-extraction failures.
    pub fn from_run(run: &TestbedRun) -> Result<Self, OnlineError> {
        Self::from_tier_series(&run.tandem_monitoring()?)
    }

    /// Append more recorded series to the feed (e.g. the post-shift phase
    /// of a drifting workload).
    ///
    /// # Errors
    /// Rejects a tier count or resolution different from the feed's.
    pub fn append_tier_series(&mut self, series: &[MonitoringSeries]) -> Result<(), OnlineError> {
        if series.len() != self.tier_count {
            return Err(OnlineError::InvalidConfig {
                name: "series",
                reason: format!(
                    "feed has {} tiers, appended series has {}",
                    self.tier_count,
                    series.len()
                ),
            });
        }
        for s in series {
            if (s.resolution - self.resolution).abs() > 1e-9 {
                return Err(OnlineError::InvalidConfig {
                    name: "series",
                    reason: format!(
                        "resolution mismatch: feed {} vs appended {}",
                        self.resolution, s.resolution
                    ),
                });
            }
        }
        let windows = series
            .iter()
            .map(|s| s.utilization.len().min(s.completions.len()))
            .min()
            .unwrap_or(0);
        for k in 0..windows {
            let tiers = series
                .iter()
                .map(|s| TierSample {
                    utilization: s.utilization[k],
                    completions: s.completions[k],
                })
                .collect();
            self.windows.push_back(MonitorWindow { tiers });
        }
        Ok(())
    }

    /// Append the monitoring output of another testbed run.
    ///
    /// # Errors
    /// Propagates monitoring-extraction failures and shape mismatches.
    pub fn append_run(&mut self, run: &TestbedRun) -> Result<(), OnlineError> {
        self.append_tier_series(&run.tandem_monitoring()?)
    }

    /// Number of windows still buffered.
    pub fn remaining(&self) -> usize {
        self.windows.len()
    }
}

impl WindowSource for ReplaySource {
    fn resolution(&self) -> f64 {
        self.resolution
    }

    fn tier_count(&self) -> usize {
        self.tier_count
    }

    fn next_window(&mut self) -> Result<Option<MonitorWindow>, OnlineError> {
        Ok(self.windows.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(resolution: f64, util: Vec<f64>, completions: Vec<u64>) -> MonitoringSeries {
        MonitoringSeries {
            resolution,
            utilization: util,
            completions,
        }
    }

    #[test]
    fn replay_zips_tiers_in_order() {
        let front = series(5.0, vec![0.5, 0.6, 0.7], vec![10, 11, 12]);
        let db = series(5.0, vec![0.2, 0.3, 0.4], vec![20, 21, 22]);
        let mut feed = ReplaySource::from_tier_series(&[front, db]).unwrap();
        assert_eq!(feed.tier_count(), 2);
        assert!((feed.resolution() - 5.0).abs() < 1e-12);
        let w0 = feed.next_window().unwrap().unwrap();
        assert_eq!(w0.tiers.len(), 2);
        assert!((w0.tiers[0].utilization - 0.5).abs() < 1e-12);
        assert_eq!(w0.tiers[1].completions, 20);
        assert_eq!(feed.remaining(), 2);
    }

    #[test]
    fn replay_truncates_to_shortest_series() {
        let a = series(1.0, vec![0.5; 5], vec![1; 5]);
        let b = series(1.0, vec![0.5; 3], vec![1; 3]);
        let feed = ReplaySource::from_tier_series(&[a, b]).unwrap();
        assert_eq!(feed.remaining(), 3);
    }

    #[test]
    fn replay_validates_shape() {
        assert!(ReplaySource::from_tier_series(&[]).is_err());
        let a = series(1.0, vec![0.5], vec![1]);
        let b = series(2.0, vec![0.5], vec![1]);
        assert!(ReplaySource::from_tier_series(&[a.clone(), b.clone()]).is_err());
        let mut feed = ReplaySource::from_tier_series(std::slice::from_ref(&a)).unwrap();
        assert!(feed.append_tier_series(&[a.clone(), a.clone()]).is_err());
        assert!(feed.append_tier_series(&[b]).is_err());
        feed.append_tier_series(&[a]).unwrap();
        assert_eq!(feed.remaining(), 2);
    }

    #[test]
    fn exhausted_feed_yields_none() {
        let a = series(1.0, vec![0.5], vec![1]);
        let mut feed = ReplaySource::from_tier_series(&[a]).unwrap();
        assert!(feed.next_window().unwrap().is_some());
        assert!(feed.next_window().unwrap().is_none());
    }
}
