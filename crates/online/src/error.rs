use std::error::Error;
use std::fmt;

use burstcap::PlanError;
use burstcap_qn::QnError;
use burstcap_stats::StatsError;
use burstcap_tpcw::TpcwError;

/// Errors produced by the streaming-ingestion and online-planning pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OnlineError {
    /// A monitoring window is malformed (wrong tier count, invalid sample).
    InvalidWindow {
        /// Description of the problem.
        reason: String,
    },
    /// The planner or a source was misconfigured.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// A plain-text feed could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A streaming estimator failed.
    Estimation(StatsError),
    /// MAP fitting or planner assembly failed.
    Planning(PlanError),
    /// The what-if model could not be solved.
    Solving(QnError),
    /// The testbed feed adapter failed.
    Feed(TpcwError),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::InvalidWindow { reason } => write!(f, "invalid window: {reason}"),
            OnlineError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            OnlineError::Parse { line, reason } => {
                write!(f, "feed parse error at line {line}: {reason}")
            }
            OnlineError::Estimation(e) => write!(f, "streaming estimation failed: {e}"),
            OnlineError::Planning(e) => write!(f, "planning failed: {e}"),
            OnlineError::Solving(e) => write!(f, "model solution failed: {e}"),
            OnlineError::Feed(e) => write!(f, "testbed feed failed: {e}"),
        }
    }
}

impl Error for OnlineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OnlineError::InvalidWindow { .. }
            | OnlineError::InvalidConfig { .. }
            | OnlineError::Parse { .. } => None,
            OnlineError::Estimation(e) => Some(e),
            OnlineError::Planning(e) => Some(e),
            OnlineError::Solving(e) => Some(e),
            OnlineError::Feed(e) => Some(e),
        }
    }
}

impl From<StatsError> for OnlineError {
    fn from(e: StatsError) -> Self {
        OnlineError::Estimation(e)
    }
}

impl From<PlanError> for OnlineError {
    fn from(e: PlanError) -> Self {
        OnlineError::Planning(e)
    }
}

impl From<QnError> for OnlineError {
    fn from(e: QnError) -> Self {
        OnlineError::Solving(e)
    }
}

impl From<TpcwError> for OnlineError {
    fn from(e: TpcwError) -> Self {
        OnlineError::Feed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OnlineError::Parse {
            line: 7,
            reason: "odd token count".into(),
        };
        let text = e.to_string();
        assert!(text.contains('7'));
        assert!(text.contains("odd token count"));
    }

    #[test]
    fn error_is_send_sync_and_sources_chain() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OnlineError>();
        let e = OnlineError::from(StatsError::TraceTooShort { got: 1, needed: 2 });
        assert!(e.source().is_some());
    }
}
