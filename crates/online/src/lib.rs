//! Streaming ingestion and continuous capacity planning.
//!
//! Every other crate in the `burstcap` workspace is batch: the whole
//! monitoring trace exists before characterization, fitting, or solving
//! begins. This crate turns the pipeline into a continuously-running one — a
//! production planner that watches a live utilization/completion feed and
//! re-plans as the workload drifts:
//!
//! * [`window`] — the ingestion surface: [`window::MonitorWindow`] (one
//!   monitoring interval across all tiers) produced one at a time by a
//!   [`window::WindowSource`]. [`window::ReplaySource`] adapts recorded
//!   series and TPC-W testbed runs; [`sar::SarTextSource`] parses plain-text
//!   `sar`-style logs.
//! * [`estimator`] — per-tier streaming characterization on the one-pass
//!   estimators of [`burstcap_stats::streaming`]: incremental
//!   utilization-law regression, append-only Figure 2 dispersion levels,
//!   and P² tail sketches.
//! * [`detector`] — CUSUM regime-change detection on the per-window demand,
//!   separating estimator refinement from genuine workload shifts.
//! * [`planner`] — [`planner::OnlinePlanner`], the rolling re-fit/re-solve
//!   loop: MAP(2)s are re-fitted and the CTMC re-solved **only** when
//!   descriptors drift past a threshold or a detector fires, and
//!   consecutive sparse solves are warm-started from the previous
//!   stationary vector
//!   ([`burstcap_qn::mapqn::MapNetwork::solve_sparse_with_initial`]). Each
//!   replanning tick emits a [`burstcap::report::OnlineReport`].
//!
//! # Example
//!
//! ```
//! use burstcap_online::planner::{OnlinePlanner, OnlinePlannerOptions};
//! use burstcap_online::sar::SarTextSource;
//!
//! // Two windows of a sar-style feed won't reach a fit, but the whole
//! // pipeline wires together in a few lines.
//! let feed = "# resolution: 5\n\
//!             12:00:05 42.0% 210 18.5% 205\n\
//!             12:00:10 45.5% 221 21.0% 217\n";
//! let mut source = SarTextSource::parse(feed)?;
//! let mut planner = OnlinePlanner::new(5.0, 2, OnlinePlannerOptions::new(60, 0.5))?;
//! let reports = planner.drain(&mut source)?;
//! assert!(reports.is_empty()); // needs min_windows before the first fit
//! assert_eq!(planner.windows_ingested(), 2);
//! # Ok::<(), burstcap_online::OnlineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bare `.unwrap()` is banned in library targets; burstcap-lint's
// `panic-in-lib` is the lexical twin (it also covers expect/panic!, with
// justification markers), clippy the type-aware backstop. The test target
// compiles with the allow, so unit tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod detector;
mod error;
pub mod estimator;
pub mod planner;
pub mod sar;
pub mod window;

pub use error::OnlineError;
pub use planner::{OnlinePlanner, OnlinePlannerOptions};
pub use window::{MonitorWindow, TierSample, WindowSource};
