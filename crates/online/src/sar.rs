//! Plain-text `sar`-style feed parser.
//!
//! Production monitoring rarely arrives as typed structs: it is text — `sar`
//! prints per-interval CPU lines, request logs print per-interval counts.
//! [`SarTextSource`] accepts a minimal merged form of that output, one line
//! per monitoring window:
//!
//! ```text
//! # resolution: 5
//! # timestamp   front%  n_front   db%  n_db
//! 12:00:05      42.0%   210       18.5%   205
//! 12:00:10      45.5%   221       21.0%   217
//! ```
//!
//! Rules:
//!
//! * lines starting with `#` are comments, except the required
//!   `# resolution: <seconds>` directive, which must precede the data;
//! * an optional leading timestamp token (anything containing `:`) is
//!   skipped;
//! * the remaining tokens are `(utilization, completions)` pairs, one per
//!   tier in tandem order — utilization either as a percentage (`42.0%`,
//!   `sar`'s convention) or as a fraction in `[0, 1]`;
//! * every data line must carry the same number of tiers.

use crate::window::{MonitorWindow, TierSample, WindowSource};
use crate::OnlineError;

/// A [`WindowSource`] over parsed `sar`-style text.
///
/// # Example
/// ```
/// use burstcap_online::sar::SarTextSource;
/// use burstcap_online::window::WindowSource;
///
/// // (One string: a literal `# resolution:` line would read as a hidden
/// // doctest line here.)
/// let text = "# resolution: 5\n\
///             12:00:05 42.0% 210 18.5% 205\n\
///             12:00:10 0.455 221 0.210 217\n";
/// let mut feed = SarTextSource::parse(text)?;
/// assert_eq!(feed.tier_count(), 2);
/// assert!((feed.resolution() - 5.0).abs() < 1e-12);
/// let w = feed.next_window()?.expect("two windows parsed");
/// assert!((w.tiers[0].utilization - 0.42).abs() < 1e-12);
/// assert_eq!(w.tiers[1].completions, 205);
/// # Ok::<(), burstcap_online::OnlineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SarTextSource {
    resolution: f64,
    tier_count: usize,
    windows: Vec<MonitorWindow>,
    next: usize,
}

impl SarTextSource {
    /// Parse a complete feed from text.
    ///
    /// # Errors
    /// Rejects a missing or invalid `# resolution:` directive, malformed
    /// numbers, utilizations outside `[0, 1]` after normalization, odd token
    /// counts, inconsistent tier counts, and feeds without data lines.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (3 reachable
    /// panic sites, e.g. `crates/stats/src/streaming.rs:317`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn parse(text: &str) -> Result<Self, OnlineError> {
        let mut resolution: Option<f64> = None;
        let mut tier_count: Option<usize> = None;
        let mut windows = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let comment = comment.trim();
                if let Some(value) = comment
                    .strip_prefix("resolution:")
                    .or_else(|| comment.strip_prefix("resolution "))
                {
                    let value: f64 = value.trim().parse().map_err(|_| OnlineError::Parse {
                        line: line_no,
                        reason: format!("unparsable resolution `{}`", value.trim()),
                    })?;
                    if value <= 0.0 || !value.is_finite() {
                        return Err(OnlineError::Parse {
                            line: line_no,
                            reason: format!("resolution must be positive, got {value}"),
                        });
                    }
                    resolution = Some(value);
                }
                continue;
            }

            if resolution.is_none() {
                return Err(OnlineError::Parse {
                    line: line_no,
                    reason: "data before the `# resolution: <seconds>` directive".into(),
                });
            }
            let mut tokens = line.split_whitespace().peekable();
            // An optional leading timestamp: any token containing ':'.
            if tokens.peek().is_some_and(|t| t.contains(':')) {
                tokens.next();
            }
            let tokens: Vec<&str> = tokens.collect();
            if tokens.is_empty() || !tokens.len().is_multiple_of(2) {
                return Err(OnlineError::Parse {
                    line: line_no,
                    reason: format!(
                        "expected (utilization, completions) pairs, got {} tokens",
                        tokens.len()
                    ),
                });
            }
            let tiers_here = tokens.len() / 2;
            match tier_count {
                None => tier_count = Some(tiers_here),
                Some(t) if t != tiers_here => {
                    return Err(OnlineError::Parse {
                        line: line_no,
                        reason: format!("expected {t} tiers, line has {tiers_here}"),
                    });
                }
                Some(_) => {}
            }
            let mut tiers = Vec::with_capacity(tiers_here);
            for pair in tokens.chunks(2) {
                let utilization = parse_utilization(pair[0], line_no)?;
                let completions: u64 = pair[1].parse().map_err(|_| OnlineError::Parse {
                    line: line_no,
                    reason: format!("unparsable completion count `{}`", pair[1]),
                })?;
                tiers.push(TierSample {
                    utilization,
                    completions,
                });
            }
            windows.push(MonitorWindow { tiers });
        }

        let resolution = resolution.ok_or(OnlineError::Parse {
            line: 0,
            reason: "missing `# resolution: <seconds>` directive".into(),
        })?;
        let tier_count = tier_count.ok_or(OnlineError::Parse {
            line: 0,
            reason: "feed contains no data lines".into(),
        })?;
        Ok(SarTextSource {
            resolution,
            tier_count,
            windows,
            next: 0,
        })
    }

    /// Number of windows not yet handed out.
    pub fn remaining(&self) -> usize {
        self.windows.len() - self.next
    }
}

/// Parse one utilization token: `42.0%` (percent, `sar` style) or a plain
/// fraction in `[0, 1]`.
fn parse_utilization(token: &str, line_no: usize) -> Result<f64, OnlineError> {
    let (body, scale) = match token.strip_suffix('%') {
        Some(body) => (body, 0.01),
        None => (token, 1.0),
    };
    let value: f64 = body.parse().map_err(|_| OnlineError::Parse {
        line: line_no,
        reason: format!("unparsable utilization `{token}`"),
    })?;
    let u = value * scale;
    if !(0.0..=1.0).contains(&u) || u.is_nan() {
        return Err(OnlineError::Parse {
            line: line_no,
            reason: format!("utilization `{token}` outside [0, 1] after normalization"),
        });
    }
    Ok(u)
}

impl WindowSource for SarTextSource {
    fn resolution(&self) -> f64 {
        self.resolution
    }

    fn tier_count(&self) -> usize {
        self.tier_count
    }

    fn next_window(&mut self) -> Result<Option<MonitorWindow>, OnlineError> {
        if self.next >= self.windows.len() {
            return Ok(None);
        }
        let w = self.windows[self.next].clone();
        self.next += 1;
        Ok(Some(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_percent_and_fraction_forms() {
        let text = "# a comment\n# resolution: 2.5\n\
                    12:00:02 50% 10 0.25 5\n0.75 20 25.0% 6\n";
        let mut feed = SarTextSource::parse(text).unwrap();
        assert_eq!(feed.tier_count(), 2);
        assert_eq!(feed.remaining(), 2);
        let w0 = feed.next_window().unwrap().unwrap();
        assert!((w0.tiers[0].utilization - 0.5).abs() < 1e-12);
        assert!((w0.tiers[1].utilization - 0.25).abs() < 1e-12);
        let w1 = feed.next_window().unwrap().unwrap();
        assert!((w1.tiers[0].utilization - 0.75).abs() < 1e-12);
        assert_eq!(w1.tiers[1].completions, 6);
        assert!(feed.next_window().unwrap().is_none());
    }

    #[test]
    fn rejects_missing_resolution() {
        let err = SarTextSource::parse("0.5 10\n").unwrap_err();
        assert!(matches!(err, OnlineError::Parse { .. }));
        let err = SarTextSource::parse("# resolution: nope\n0.5 10\n").unwrap_err();
        assert!(err.to_string().contains("resolution"));
        assert!(SarTextSource::parse("# resolution: -1\n0.5 10\n").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        let head = "# resolution: 5\n";
        for bad in [
            "0.5 10 0.6\n",           // odd token count
            "1.5 10\n",               // utilization above 1
            "150% 10\n",              // percent above 100
            "abc 10\n",               // unparsable utilization
            "0.5 ten\n",              // unparsable count
            "0.5 10\n0.5 10 0.5 9\n", // tier count changes
        ] {
            let text = format!("{head}{bad}");
            assert!(SarTextSource::parse(&text).is_err(), "accepted: {bad:?}");
        }
        assert!(SarTextSource::parse(head).is_err(), "no data lines");
    }

    #[test]
    fn timestamps_are_optional() {
        let text = "# resolution: 1\n0.5 10\n12:00:01 0.5 10\n";
        let feed = SarTextSource::parse(text).unwrap();
        assert_eq!(feed.remaining(), 2);
    }
}
