//! The rolling re-fit / re-solve loop: continuous capacity planning over a
//! window stream.
//!
//! [`OnlinePlanner`] is the online counterpart of
//! [`burstcap::planner::CapacityPlanner`]. It ingests monitoring windows one
//! at a time, maintains per-tier streaming descriptors
//! ([`crate::estimator::TierEstimator`]) and a CUSUM regime-change detector
//! per tier ([`crate::detector::CusumDetector`]), and re-runs the expensive
//! stages — the Section 4.1 MAP(2) fit and the exact CTMC solve — **only**
//! when a tier's descriptors drift past a threshold or a detector fires.
//! Consecutive solves are warm-started from the previous stationary vector
//! ([`burstcap_qn::mapqn::MapNetwork::solve_sparse_with_initial`]): a
//! rolling re-fit perturbs the generator's rates but not its state space,
//! so the previous `pi` is an excellent initial iterate and the sparse
//! Gauss-Seidel sweep converges in a fraction of a cold solve.
//!
//! On a confirmed regime change the alarmed tiers' estimators are **reset**:
//! their history describes the old service process and would bias every
//! descriptor of the new one. The planner keeps predicting from the last
//! good model while the fresh estimates mature, then re-fits.

use serde::{Deserialize, Serialize};

use burstcap::characterize::ServiceCharacterization;
use burstcap::planner::{fit_characterization, Prediction};
use burstcap::report::{OnlineReport, OnlineTierStatus};
use burstcap::PlanError;
use burstcap_map::fit::FittedMap2;
use burstcap_obs::Trace;
use burstcap_qn::mapqn::{MapNetwork, AUTO_MATFREE_THRESHOLD};
use burstcap_qn::QnError;

use crate::detector::{CusumDetector, CusumOptions};
use crate::estimator::{TierEstimator, TierEstimatorOptions};
use crate::window::{MonitorWindow, WindowSource};
use crate::OnlineError;

/// Configuration of the rolling planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlinePlannerOptions {
    /// What-if population the rolling prediction targets.
    pub population: usize,
    /// Think time of the what-if model (`Z_qn`).
    pub think_time: f64,
    /// Windows to accumulate before the first fit is attempted.
    pub min_windows: usize,
    /// Replanning cadence: a report is emitted (and drift re-evaluated)
    /// every this many windows, in addition to alarm-triggered ticks.
    pub replan_every: usize,
    /// Largest relative drift of the mean and p95 descriptors tolerated
    /// before a re-fit (evaluated at every tick against the descriptors
    /// last fitted).
    pub drift_threshold: f64,
    /// Separate, wider threshold for the index of dispersion (relative,
    /// with the denominator floored at the Poisson scale `I = 1`): the `I`
    /// estimate is by far the noisiest descriptor — the Figure 2 stopping
    /// point wanders as levels fill, easily by several× at low `I` — and
    /// the fitter itself only targets `I` to ±`i_tolerance`, so chasing
    /// small `I` wobbles re-solves for nothing. Regime-scale burstiness
    /// changes (the paper's `I` in the hundreds) trip this easily; genuine
    /// shifts additionally announce themselves through the CUSUM alarm and
    /// the mean-demand drift.
    pub i_drift_threshold: f64,
    /// Relative tolerance on the fitted index of dispersion (paper: ±20%).
    pub i_tolerance: f64,
    /// Streaming characterization knobs.
    pub estimator: TierEstimatorOptions,
    /// Regime-change detector tuning.
    pub detector: CusumOptions,
}

impl OnlinePlannerOptions {
    /// Defaults for a what-if target: first fit after 150 windows, a report
    /// every 30, re-fit beyond 20% descriptor drift.
    pub fn new(population: usize, think_time: f64) -> Self {
        OnlinePlannerOptions {
            population,
            think_time,
            min_windows: 150,
            replan_every: 30,
            drift_threshold: 0.2,
            i_drift_threshold: 2.0,
            i_tolerance: 0.2,
            estimator: TierEstimatorOptions::default(),
            detector: CusumOptions::default(),
        }
    }

    fn validate(&self) -> Result<(), OnlineError> {
        if self.population == 0 {
            return Err(OnlineError::InvalidConfig {
                name: "population",
                reason: "population must be at least 1".into(),
            });
        }
        if self.think_time <= 0.0 || !self.think_time.is_finite() {
            return Err(OnlineError::InvalidConfig {
                name: "think_time",
                reason: format!("must be positive and finite, got {}", self.think_time),
            });
        }
        if self.min_windows == 0 || self.replan_every == 0 {
            return Err(OnlineError::InvalidConfig {
                name: "min_windows",
                reason: "min_windows and replan_every must be at least 1".into(),
            });
        }
        for (name, v) in [
            ("drift_threshold", self.drift_threshold),
            ("i_drift_threshold", self.i_drift_threshold),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(OnlineError::InvalidConfig {
                    name,
                    reason: format!("must be non-negative and finite, got {v}"),
                });
            }
        }
        self.detector.validate()
    }
}

/// Cumulative solver accounting of one planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SolveStats {
    /// MAP re-fits (each followed by one solve).
    pub refits: usize,
    /// Solves warm-started from the previous stationary vector.
    pub warm_solves: usize,
    /// Cold solves (first fit or state-space change).
    pub cold_solves: usize,
    /// Solves whose iterative attempt stalled and fell back to another
    /// engine (reported by [`burstcap_qn::mapqn::SolveDiagnostics`]; these
    /// also count as warm or cold above — the warm start is *kept* across
    /// the fallback, not discarded).
    pub stalled_fallbacks: usize,
    /// Regime-change alarms acted upon.
    pub regime_changes: usize,
}

/// Per-tier streaming state.
struct TierState {
    estimator: TierEstimator,
    detector: CusumDetector,
    /// Latched from the detector until the resolving re-fit.
    alarmed: bool,
    /// Most recent successful characterization (fresh or pre-reset).
    last_char: Option<ServiceCharacterization>,
}

/// The continuous planner: streaming characterization, regime-change
/// detection, and a warm-started rolling what-if solve.
///
/// # Example
/// ```
/// use burstcap_online::planner::{OnlinePlanner, OnlinePlannerOptions};
/// use burstcap_online::window::{MonitorWindow, TierSample};
///
/// let mut options = OnlinePlannerOptions::new(30, 0.5);
/// options.min_windows = 120;
/// let mut planner = OnlinePlanner::new(5.0, 2, options)?;
/// // A steady two-tier stream: front 10 ms, db 5 ms demand.
/// let window = MonitorWindow {
///     tiers: vec![
///         TierSample { utilization: 0.5, completions: 250 },
///         TierSample { utilization: 0.25, completions: 250 },
///     ],
/// };
/// let mut reports = Vec::new();
/// for _ in 0..240 {
///     reports.extend(planner.ingest(&window)?);
/// }
/// let first = reports.first().expect("first fit after min_windows");
/// assert!(first.refitted);
/// assert!(first.prediction.throughput > 0.0);
/// # Ok::<(), burstcap_online::OnlineError>(())
/// ```
pub struct OnlinePlanner {
    options: OnlinePlannerOptions,
    resolution: f64,
    tiers: Vec<TierState>,
    window: usize,
    /// Re-fit requested (alarm handled, or a previous attempt could not fit
    /// yet) but not performed.
    refit_pending: bool,
    fits: Vec<FittedMap2>,
    fitted_chars: Vec<ServiceCharacterization>,
    pi: Option<Vec<f64>>,
    prediction: Option<Prediction>,
    stats: SolveStats,
    /// Observability handle (`Trace::noop` by default): the planner emits
    /// `online.*` events — alarms with their CUSUM statistic, estimator
    /// resets, replanning ticks, re-fits with the solve diagnostics — plus
    /// an `online.windows` counter. Everything emitted is a pure function
    /// of the window stream, so a recorded trace is replay-deterministic.
    trace: Trace,
}

impl OnlinePlanner {
    /// Create a planner for windows of `resolution` seconds over
    /// `tier_count` tiers in tandem order.
    ///
    /// # Errors
    /// Rejects non-positive resolutions, a zero tier count, and invalid
    /// options.
    pub fn new(
        resolution: f64,
        tier_count: usize,
        options: OnlinePlannerOptions,
    ) -> Result<Self, OnlineError> {
        if resolution <= 0.0 || !resolution.is_finite() {
            return Err(OnlineError::InvalidConfig {
                name: "resolution",
                reason: format!("must be positive and finite, got {resolution}"),
            });
        }
        if tier_count == 0 {
            return Err(OnlineError::InvalidConfig {
                name: "tier_count",
                reason: "need at least one tier".into(),
            });
        }
        options.validate()?;
        let tiers = (0..tier_count)
            .map(|_| {
                Ok(TierState {
                    estimator: TierEstimator::new(resolution, options.estimator),
                    detector: CusumDetector::new(options.detector)?,
                    alarmed: false,
                    last_char: None,
                })
            })
            .collect::<Result<Vec<_>, OnlineError>>()?;
        Ok(OnlinePlanner {
            options,
            resolution,
            tiers,
            window: 0,
            refit_pending: false,
            fits: Vec::new(),
            fitted_chars: Vec::new(),
            pi: None,
            prediction: None,
            stats: SolveStats::default(),
            trace: Trace::noop(),
        })
    }

    /// Attach an observability handle: subsequent ingestion emits
    /// `online.*` events and counters through it (see the field docs). Use
    /// `Trace::noop()` to detach. Builder-style variant:
    /// [`OnlinePlanner::with_trace`].
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// [`OnlinePlanner::set_trace`] as a builder step.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Ingest one monitoring window. Returns a report on replanning ticks
    /// (the first fit, every `replan_every`-th window thereafter, and any
    /// window on which a regime-change alarm fires), `None` otherwise.
    ///
    /// # Errors
    /// Rejects windows with the wrong tier count or invalid samples;
    /// propagates solver failures.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (15 reachable
    /// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn ingest(&mut self, window: &MonitorWindow) -> Result<Option<OnlineReport>, OnlineError> {
        if window.tiers.len() != self.tiers.len() {
            return Err(OnlineError::InvalidWindow {
                reason: format!(
                    "planner tracks {} tiers, window has {}",
                    self.tiers.len(),
                    window.tiers.len()
                ),
            });
        }
        self.window += 1;
        self.trace.add("online.windows", 1);
        let mut alarm_now = false;
        for (index, (tier, sample)) in self.tiers.iter_mut().zip(&window.tiers).enumerate() {
            tier.estimator.push(sample)?;
            // The detector pauses while a regime re-fit is pending: the
            // alarm is already being acted upon, and re-alarming would only
            // reset the maturing estimators again (a livelock on heavily
            // bursty regimes). It resumes — re-learning its baseline on the
            // new regime — once the re-fit lands.
            if !self.refit_pending && sample.completions > 0 {
                // Per-window demand proxy: busy seconds per completion.
                let x = sample.utilization * self.resolution / sample.completions as f64;
                if tier.detector.update(x) {
                    tier.alarmed = true;
                    alarm_now = true;
                    self.trace.event(
                        "online.alarm",
                        vec![
                            ("window", self.window.into()),
                            ("tier", index.into()),
                            ("cusum", tier.detector.statistic().into()),
                        ],
                    );
                }
            }
        }

        if alarm_now {
            // The alarmed tiers' history describes the *old* regime: drop it
            // so the descriptors re-learn, and re-arm the detector on the
            // new regime. Prediction keeps serving from the last good model
            // until the fresh estimates mature.
            for (index, tier) in self.tiers.iter_mut().enumerate() {
                if !tier.alarmed {
                    continue;
                }
                tier.estimator = TierEstimator::new(self.resolution, self.options.estimator);
                tier.detector.reset();
                self.trace.event(
                    "online.reset",
                    vec![("window", self.window.into()), ("tier", index.into())],
                );
            }
            self.refit_pending = true;
            self.stats.regime_changes += 1;
        }

        if self.window < self.options.min_windows {
            return Ok(None);
        }
        // Ticks: the pending first fit (retried every window until the
        // estimators mature), any alarm (immediately), and the regular
        // cadence — a pending re-fit retries at cadence ticks rather than
        // every window.
        let cadence_tick = self.window.is_multiple_of(self.options.replan_every);
        if !(self.fits.is_empty() || alarm_now || cadence_tick) {
            return Ok(None);
        }
        self.replan(alarm_now)
    }

    /// One replanning tick: refresh descriptors, decide whether to re-fit,
    /// and assemble the report.
    fn replan(&mut self, alarm_now: bool) -> Result<Option<OnlineReport>, OnlineError> {
        self.trace.event(
            "online.tick",
            vec![("window", self.window.into()), ("alarm", alarm_now.into())],
        );
        // The per-tier CUSUM state, sampled at tick cadence (per-window
        // emission would dominate the trace for no diagnostic value).
        if self.trace.is_enabled() {
            for (index, tier) in self.tiers.iter().enumerate() {
                self.trace.event(
                    "online.cusum",
                    vec![
                        ("window", self.window.into()),
                        ("tier", index.into()),
                        ("statistic", tier.detector.statistic().into()),
                        ("warmup", tier.detector.in_warmup().into()),
                    ],
                );
            }
        }
        // Refresh what can be refreshed; recently reset tiers keep their
        // last known characterization until the new stream matures.
        let mut fresh: Vec<Option<ServiceCharacterization>> = Vec::with_capacity(self.tiers.len());
        for tier in self.tiers.iter_mut() {
            match tier.estimator.characterize() {
                Ok(c) => {
                    tier.last_char = Some(c.clone());
                    fresh.push(Some(c));
                }
                Err(_) => fresh.push(None),
            }
        }

        if self.fits.is_empty() {
            // First fit: wait until every tier characterizes.
            if fresh.iter().any(Option::is_none) {
                return Ok(None);
            }
            // burstcap-lint: allow(panic-in-lib) — every fresh entry was checked Some in the guard above
            let chars: Vec<_> = fresh.into_iter().map(|c| c.expect("checked")).collect();
            let drifts = vec![0.0; chars.len()];
            return match self.refit_and_solve(chars.clone()) {
                Ok(warm) => Ok(Some(self.report(&chars, &drifts, false, true, warm))),
                // An infeasible transient fit is not fatal: retry next tick.
                Err(OnlineError::Planning(PlanError::Fitting(_))) => Ok(None),
                Err(e) => Err(e),
            };
        }

        // Drift of every refreshed tier against its last fitted descriptors.
        let pairs: Vec<DescriptorDrift> = fresh
            .iter()
            .zip(&self.fitted_chars)
            .map(|(c, fitted)| {
                c.as_ref()
                    .map_or(DescriptorDrift::default(), |c| descriptor_drift(fitted, c))
            })
            .collect();
        let drifts: Vec<f64> = pairs.iter().map(DescriptorDrift::max).collect();
        let drift_trips = pairs.iter().any(|d| {
            d.mean_p95 > self.options.drift_threshold
                || d.dispersion > self.options.i_drift_threshold
        });
        let want_refit = self.refit_pending || drift_trips;
        let can_refit = fresh.iter().all(Option::is_some);
        let regime_change = alarm_now || self.tiers.iter().any(|t| t.alarmed);

        let mut refitted = false;
        let mut warm = false;
        if want_refit && can_refit {
            // burstcap-lint: allow(panic-in-lib) — every fresh entry was checked Some in the guard above
            let chars: Vec<_> = fresh.iter().cloned().map(|c| c.expect("checked")).collect();
            match self.refit_and_solve(chars) {
                Ok(w) => {
                    refitted = true;
                    warm = w;
                }
                Err(OnlineError::Planning(PlanError::Fitting(_))) => {
                    // Keep serving the old model; retry at the next tick.
                    self.refit_pending = true;
                }
                Err(e) => return Err(e),
            }
        }

        // Statuses fall back to the last known characterization for tiers
        // that were reset this tick.
        let status_chars: Vec<ServiceCharacterization> = self
            .tiers
            .iter()
            .map(|t| {
                t.last_char
                    .clone()
                    // burstcap-lint: allow(panic-in-lib) — refitting is only reached once every tier has been characterized
                    .expect("fits exist => all characterized once")
            })
            .collect();
        Ok(Some(self.report(
            &status_chars,
            &drifts,
            regime_change,
            refitted,
            warm,
        )))
    }

    /// Fit all tiers, rebuild the network, and solve — warm-started from the
    /// previous stationary vector when the state space is unchanged.
    fn refit_and_solve(
        &mut self,
        chars: Vec<ServiceCharacterization>,
    ) -> Result<bool, OnlineError> {
        let fits = chars
            .iter()
            .map(|c| fit_characterization(c, self.options.i_tolerance))
            .collect::<Result<Vec<_>, _>>()?;
        let net = MapNetwork::tandem(
            self.options.population,
            self.options.think_time,
            fits.iter().map(|f| f.map()).collect(),
        )?;
        let guess = self.pi.take().filter(|p| p.len() == net.state_count());
        let warm = guess.is_some();
        // Engine tier by state count, mirroring solve_auto: the CSR sweep up
        // to the matrix-free crossover, the matrix-free parallel engine
        // above it (where the CSR arrays would dominate memory).
        let attempt = if net.state_count() > AUTO_MATFREE_THRESHOLD {
            net.solve_matrix_free_with_initial_traced(0, guess.clone(), &self.trace)
        } else {
            net.solve_sparse_with_initial_traced(guess.clone(), &self.trace)
        };
        let solution = match attempt {
            Ok((solution, pi)) => {
                self.pi = Some(pi);
                solution
            }
            Err(QnError::NoConvergence { .. }) => {
                // Stiff chain: the stiffness-proof direct solver through the
                // same warm-startable seam. The stationary vector is kept,
                // so the *next* window still warm-starts — the old path
                // solved cold and discarded it, breaking the chain exactly
                // when the model got stiff.
                let (mut solution, pi) = net.solve_with_initial(guess)?;
                solution.diagnostics.fell_back = true;
                self.pi = Some(pi);
                self.stats.stalled_fallbacks += 1;
                solution
            }
            Err(e) => return Err(e.into()),
        };
        self.trace.event(
            "online.refit",
            vec![
                ("window", self.window.into()),
                ("warm", warm.into()),
                ("engine", solution.diagnostics.engine.label().into()),
                ("sweeps", solution.diagnostics.iterations.into()),
                ("fell_back", solution.diagnostics.fell_back.into()),
            ],
        );
        self.prediction = Some(Prediction::from((self.options.population, solution)));
        self.fits = fits;
        self.fitted_chars = chars;
        self.refit_pending = false;
        for tier in self.tiers.iter_mut() {
            tier.alarmed = false;
        }
        self.stats.refits += 1;
        if warm {
            self.stats.warm_solves += 1;
        } else {
            self.stats.cold_solves += 1;
        }
        Ok(warm)
    }

    fn report(
        &self,
        chars: &[ServiceCharacterization],
        drifts: &[f64],
        regime_change: bool,
        refitted: bool,
        warm_started: bool,
    ) -> OnlineReport {
        let tiers = chars
            .iter()
            .zip(drifts)
            .zip(&self.tiers)
            .map(|((c, &drift), state)| OnlineTierStatus {
                characterization: c.clone(),
                drift,
                // After a resolving re-fit the latch is already cleared;
                // the report's regime_change flag carries the event.
                alarm: state.alarmed,
            })
            .collect();
        OnlineReport {
            window: self.window,
            elapsed_seconds: self.window as f64 * self.resolution,
            tiers,
            regime_change,
            refitted,
            warm_started,
            prediction: self
                .prediction
                .clone()
                // burstcap-lint: allow(panic-in-lib) — the report path is gated on a prediction existing
                .expect("reports are only emitted once a prediction exists"),
        }
    }

    /// Drain a window source to exhaustion, collecting every replanning
    /// report.
    ///
    /// # Errors
    /// Rejects a source whose shape (resolution, tier count) differs from
    /// the planner's; propagates ingestion errors.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (15 reachable
    /// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn drain(
        &mut self,
        source: &mut impl WindowSource,
    ) -> Result<Vec<OnlineReport>, OnlineError> {
        if source.tier_count() != self.tiers.len() {
            return Err(OnlineError::InvalidConfig {
                name: "source",
                reason: format!(
                    "planner tracks {} tiers, source produces {}",
                    self.tiers.len(),
                    source.tier_count()
                ),
            });
        }
        if (source.resolution() - self.resolution).abs() > 1e-9 {
            return Err(OnlineError::InvalidConfig {
                name: "source",
                reason: format!(
                    "planner resolution {} vs source {}",
                    self.resolution,
                    source.resolution()
                ),
            });
        }
        let mut reports = Vec::new();
        while let Some(window) = source.next_window()? {
            reports.extend(self.ingest(&window)?);
        }
        Ok(reports)
    }

    /// Monitoring windows ingested so far.
    pub fn windows_ingested(&self) -> usize {
        self.window
    }

    /// Window length in seconds.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// The latest prediction, once the first fit completed.
    pub fn prediction(&self) -> Option<&Prediction> {
        self.prediction.as_ref()
    }

    /// The current per-tier fits, in tandem order (empty before the first
    /// fit).
    pub fn tier_fits(&self) -> &[FittedMap2] {
        &self.fits
    }

    /// The descriptors the current model was fitted from.
    pub fn fitted_characterizations(&self) -> &[ServiceCharacterization] {
        &self.fitted_chars
    }

    /// Cumulative solver accounting.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }
}

/// Relative descriptor drift, split by threshold class.
#[derive(Debug, Clone, Copy, Default)]
struct DescriptorDrift {
    /// Larger of the mean and p95 relative changes.
    mean_p95: f64,
    /// Index-of-dispersion relative change.
    dispersion: f64,
}

impl DescriptorDrift {
    fn max(&self) -> f64 {
        self.mean_p95.max(self.dispersion)
    }
}

/// Relative change of the three descriptors. The index of dispersion is
/// compared on the Poisson scale (`max(I, 1)` denominator): near-
/// deterministic tiers have `I ≈ 0`, where a plain relative change explodes
/// without any modeling consequence.
fn descriptor_drift(
    old: &ServiceCharacterization,
    new: &ServiceCharacterization,
) -> DescriptorDrift {
    let rel = |a: f64, b: f64, floor: f64| (b - a).abs() / a.abs().max(floor);
    DescriptorDrift {
        mean_p95: rel(old.mean_service_time, new.mean_service_time, 1e-12).max(rel(
            old.p95_service_time,
            new.p95_service_time,
            1e-12,
        )),
        dispersion: rel(old.index_of_dispersion, new.index_of_dispersion, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::TierSample;

    fn window(front: (f64, u64), db: (f64, u64)) -> MonitorWindow {
        MonitorWindow {
            tiers: vec![
                TierSample {
                    utilization: front.0,
                    completions: front.1,
                },
                TierSample {
                    utilization: db.0,
                    completions: db.1,
                },
            ],
        }
    }

    fn quick_options() -> OnlinePlannerOptions {
        let mut options = OnlinePlannerOptions::new(20, 0.5);
        options.min_windows = 120;
        options.replan_every = 20;
        options.detector = CusumOptions {
            warmup_windows: 30,
            slack: 0.25,
            threshold: 6.0,
        };
        options
    }

    #[test]
    fn steady_stream_fits_once_and_reports_on_cadence() {
        let mut planner = OnlinePlanner::new(5.0, 2, quick_options()).unwrap();
        let w = window((0.5, 250), (0.25, 250));
        let mut reports = Vec::new();
        for _ in 0..400 {
            reports.extend(planner.ingest(&w).unwrap());
        }
        assert!(!reports.is_empty());
        // Exactly one fit: a perfectly steady stream never drifts.
        assert_eq!(planner.stats().refits, 1);
        assert_eq!(planner.stats().regime_changes, 0);
        assert!(reports[0].refitted);
        assert!(!reports[0].warm_started, "first solve is cold");
        for r in &reports[1..] {
            assert!(!r.refitted);
            assert!(!r.regime_change);
        }
        // Cadence: after the first fit, one report per replan_every windows.
        let p = planner.prediction().unwrap();
        assert!(p.throughput > 0.0 && p.throughput <= 40.0 / 0.5);
        // Demand recovered: front 10 ms, db 5 ms.
        let fitted = planner.fitted_characterizations();
        assert!((fitted[0].mean_service_time - 0.01).abs() < 1e-9);
        assert!((fitted[1].mean_service_time - 0.005).abs() < 1e-9);
    }

    #[test]
    fn injected_shift_fires_detector_and_refits_warm() {
        let mut planner = OnlinePlanner::new(5.0, 2, quick_options()).unwrap();
        let stable = window((0.5, 250), (0.25, 250));
        let shifted = window((0.5, 250), (0.75, 250)); // db demand 3x
        let mut alarm_window = None;
        let mut refits_before_shift = 0;
        for k in 0..900 {
            let w = if k < 400 { &stable } else { &shifted };
            if let Some(r) = planner.ingest(w).unwrap() {
                if r.regime_change && alarm_window.is_none() {
                    alarm_window = Some(k);
                }
                if k < 400 && r.refitted {
                    refits_before_shift += 1;
                }
            }
        }
        let alarm_window = alarm_window.expect("a 3x demand shift must fire the CUSUM");
        assert!(
            (400..440).contains(&alarm_window),
            "alarm at window {alarm_window}"
        );
        assert_eq!(refits_before_shift, 1, "stable regime: only the first fit");
        assert_eq!(planner.stats().regime_changes, 1);
        // The post-shift re-fit happened once the reset estimators matured,
        // warm-started from the pre-shift stationary vector.
        assert!(planner.stats().refits >= 2);
        assert!(planner.stats().warm_solves >= 1);
        // And the new model reflects the 3x db demand.
        let db = &planner.fitted_characterizations()[1];
        assert!(
            (db.mean_service_time - 0.015).abs() < 1e-3,
            "db demand after shift: {}",
            db.mean_service_time
        );
    }

    #[test]
    fn shape_validation() {
        assert!(OnlinePlanner::new(0.0, 2, quick_options()).is_err());
        assert!(OnlinePlanner::new(1.0, 0, quick_options()).is_err());
        let mut bad = quick_options();
        bad.population = 0;
        assert!(OnlinePlanner::new(1.0, 2, bad).is_err());
        let mut bad = quick_options();
        bad.think_time = 0.0;
        assert!(OnlinePlanner::new(1.0, 2, bad).is_err());
        let mut bad = quick_options();
        bad.replan_every = 0;
        assert!(OnlinePlanner::new(1.0, 2, bad).is_err());
        let mut bad = quick_options();
        bad.drift_threshold = f64::NAN;
        assert!(OnlinePlanner::new(1.0, 2, bad).is_err());

        let mut planner = OnlinePlanner::new(1.0, 2, quick_options()).unwrap();
        let three_tiers = MonitorWindow {
            tiers: vec![
                TierSample {
                    utilization: 0.1,
                    completions: 1,
                };
                3
            ],
        };
        assert!(planner.ingest(&three_tiers).is_err());
    }

    #[test]
    fn drain_checks_source_shape() {
        use crate::window::ReplaySource;
        use burstcap_tpcw::monitor::MonitoringSeries;

        let series = MonitoringSeries {
            resolution: 5.0,
            utilization: vec![0.5; 10],
            completions: vec![10; 10],
        };
        let mut planner = OnlinePlanner::new(5.0, 2, quick_options()).unwrap();
        let mut one_tier = ReplaySource::from_tier_series(std::slice::from_ref(&series)).unwrap();
        assert!(planner.drain(&mut one_tier).is_err());
        let mut wrong_res = ReplaySource::from_tier_series(&[
            MonitoringSeries {
                resolution: 1.0,
                ..series.clone()
            },
            MonitoringSeries {
                resolution: 1.0,
                ..series.clone()
            },
        ])
        .unwrap();
        assert!(planner.drain(&mut wrong_res).is_err());
        let mut ok = ReplaySource::from_tier_series(&[series.clone(), series]).unwrap();
        // Too short for any report, but drains cleanly.
        assert!(planner.drain(&mut ok).unwrap().is_empty());
        assert_eq!(planner.windows_ingested(), 10);
    }
}
