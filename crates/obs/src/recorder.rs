//! The recorder sink and the [`Trace`] handle instrumented code holds.
//!
//! This module is one of the workspace's **sanctioned parallelism seams**
//! (with `core::experiment` and `qn::matfree` — enforced by burstcap-lint's
//! `unscoped-parallelism` rule): the recorder's interior is a
//! `Mutex<State>` behind an `Arc`, so a `Trace` handle is `Send + Sync`
//! and may be cloned into scoped solver workers. Determinism does not come
//! from the lock, though — it comes from the **emission discipline**: hot
//! parallel regions emit nothing (the matfree workers compute; the serial
//! residual pass emits), so the logical clock assigns the same sequence
//! numbers in the same order for every worker count. Anything that
//! legitimately varies with worker count or machine (partition shapes,
//! wall-clock attachments) is emitted as a *volatile* event, which does not
//! advance the logical clock and is excluded from the deterministic export.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::event::{Event, EventKind, FieldValue};
use crate::metrics::{BucketLayout, Metric};

/// Everything the recorder accumulates, behind one lock.
#[derive(Debug, Default)]
struct State {
    /// The logical clock: sequence number of the next deterministic event.
    next_seq: u64,
    /// Next span id to hand out (ids start at 1; 0 means "no span").
    next_span: u64,
    /// Stack of currently-open span ids.
    stack: Vec<u64>,
    /// The recorded event log, in emission order.
    events: Vec<Event>,
    /// Aggregated metrics, keyed by name (BTreeMap: export order is the
    /// name order, never insertion or hash order).
    metrics: BTreeMap<&'static str, Metric>,
}

impl State {
    fn current_span(&self) -> u64 {
        self.stack.last().copied().unwrap_or(0)
    }

    fn push_event(
        &mut self,
        kind: EventKind,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
        volatile: bool,
    ) {
        let seq = self.next_seq;
        if !volatile {
            self.next_seq += 1;
        }
        self.events.push(Event {
            seq,
            span: self.current_span(),
            kind,
            name,
            fields,
            volatile,
        });
    }
}

#[derive(Debug, Default)]
struct Shared {
    state: Mutex<State>,
}

impl Shared {
    /// Lock the state; a poisoned lock (a panicking emitter) still yields
    /// the data recorded so far — a trace must never add a panic path of
    /// its own to the code it observes.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// An in-memory event/metric sink.
///
/// Create one per run you want observed, hand [`Recorder::trace`] handles
/// to the code under observation, then export with
/// [`deterministic_json`](Recorder::deterministic_json) (the CI-diffable
/// artifact) or [`full_json`](Recorder::full_json) (volatile events
/// included).
///
/// # Example
/// ```
/// use burstcap_obs::Recorder;
///
/// let recorder = Recorder::new();
/// let trace = recorder.trace();
/// {
///     let span = trace.span("solve");
///     assert_eq!(span.id(), 1);
///     trace.event("sweep", vec![("iter", 0_u64.into())]);
///     trace.add("sweeps", 1);
/// }
/// let events = recorder.events();
/// assert_eq!(events.len(), 3); // span_start, sweep, span_end
/// assert_eq!(events[1].span, 1);
/// let json = recorder.deterministic_json();
/// assert!(json.contains("\"name\": \"sweep\""));
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Recorder {
    /// A fresh, empty recorder.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// A recording [`Trace`] handle feeding this recorder. Handles are
    /// cheap to clone and `Send + Sync`.
    #[must_use]
    pub fn trace(&self) -> Trace {
        Trace {
            shared: Some(Arc::clone(&self.shared)),
        }
    }

    /// Snapshot of the recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.shared.lock().events.clone()
    }

    /// Number of events recorded so far (volatile included).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.shared.lock().events.len()
    }

    /// The deterministic export: volatile events filtered out, metrics
    /// appended sorted by name, one field per line (the workspace's
    /// grep-diff contract). Byte-identical across worker counts for
    /// instrumentation that follows the serial-emission discipline.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        self.render(false)
    }

    /// The full export: volatile events included (marked
    /// `"volatile": true`), for human diagnosis — not a diffable artifact.
    #[must_use]
    pub fn full_json(&self) -> String {
        self.render(true)
    }

    fn render(&self, include_volatile: bool) -> String {
        let state = self.shared.lock();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"burstcap-obs-trace-v1\",\n");
        out.push_str(if include_volatile {
            "  \"deterministic\": false,\n"
        } else {
            "  \"deterministic\": true,\n"
        });
        let events: Vec<&Event> = state
            .events
            .iter()
            .filter(|e| include_volatile || !e.volatile)
            .collect();
        if events.is_empty() {
            out.push_str("  \"events\": [],\n");
        } else {
            out.push_str("  \"events\": [\n");
            for (i, event) in events.iter().enumerate() {
                out.push_str("    ");
                event.render_into(&mut out, 2);
                out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
            }
            out.push_str("  ],\n");
        }
        if state.metrics.is_empty() {
            out.push_str("  \"metrics\": []\n");
        } else {
            out.push_str("  \"metrics\": [\n");
            for (i, (name, metric)) in state.metrics.iter().enumerate() {
                out.push_str("    ");
                metric.render_into(name, &mut out, 2);
                out.push_str(if i + 1 == state.metrics.len() {
                    "\n"
                } else {
                    ",\n"
                });
            }
            out.push_str("  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// The handle instrumented code emits through.
///
/// A `Trace` is either recording (obtained from [`Recorder::trace`]) or a
/// no-op ([`Trace::noop`], also the `Default`). Every instrumented entry
/// point in the workspace takes a `&Trace`; uninstrumented callers pass
/// the no-op, whose every operation is a single `Option` discriminant
/// check — the `bench_obs` binary pins that cost below 3% on the hot
/// paths.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    shared: Option<Arc<Shared>>,
}

impl Trace {
    /// The no-op trace: records nothing, costs (almost) nothing.
    #[must_use]
    pub fn noop() -> Trace {
        Trace { shared: None }
    }

    /// Whether this handle records anywhere. Instrumentation may use this
    /// to skip building an expensive payload.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Open a span: emits `span_start` now and `span_end` when the
    /// returned guard drops. Guards must nest (close in reverse order of
    /// opening), which scoped usage gives for free.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_with(name, Vec::new())
    }

    /// [`span`](Trace::span) with payload fields on the `span_start` event.
    #[must_use]
    pub fn span_with(
        &self,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> SpanGuard {
        let Some(shared) = &self.shared else {
            return SpanGuard {
                trace: Trace::noop(),
                id: 0,
                name,
            };
        };
        let mut state = shared.lock();
        state.next_span += 1;
        let id = state.next_span;
        let mut all = Vec::with_capacity(fields.len() + 1);
        all.push(("id", FieldValue::U64(id)));
        all.extend(fields);
        state.push_event(EventKind::SpanStart, name, all, false);
        state.stack.push(id);
        SpanGuard {
            trace: self.clone(),
            id,
            name,
        }
    }

    /// Emit a point event inside the currently-open span.
    pub fn event(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        if let Some(shared) = &self.shared {
            shared
                .lock()
                .push_event(EventKind::Point, name, fields, false);
        }
    }

    /// Emit a **volatile** point event: recorded in the full export only,
    /// and the logical clock does not advance. Use for anything that may
    /// legitimately differ across worker counts or machines
    /// (partition shapes, wall-clock attachments via `bench::timing`).
    pub fn volatile_event(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        if let Some(shared) = &self.shared {
            shared
                .lock()
                .push_event(EventKind::Point, name, fields, true);
        }
    }

    /// Add `delta` to the counter `name` (created at zero on first use).
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(shared) = &self.shared {
            let mut state = shared.lock();
            let cell = state.metrics.entry(name).or_insert(Metric::Counter(0));
            if let Metric::Counter(v) = cell {
                *v = v.saturating_add(delta);
            }
        }
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(shared) = &self.shared {
            let mut state = shared.lock();
            let cell = state.metrics.entry(name).or_insert(Metric::Gauge(0.0));
            if let Metric::Gauge(v) = cell {
                *v = value;
            }
        }
    }

    /// Observe `value` into the fixed-layout histogram `name`. The layout
    /// is bound on first observation; later observations bin into it.
    pub fn observe(&self, name: &'static str, layout: BucketLayout, value: f64) {
        if let Some(shared) = &self.shared {
            let mut state = shared.lock();
            let cell = state
                .metrics
                .entry(name)
                .or_insert_with(|| Metric::histogram(layout));
            if let Metric::Histogram {
                layout,
                counts,
                total,
                sum,
            } = cell
            {
                counts[layout.bucket_of(value)] += 1;
                *total += 1;
                *sum += value;
            }
        }
    }
}

/// Guard for an open span; emits the matching `span_end` on drop.
#[derive(Debug)]
pub struct SpanGuard {
    trace: Trace,
    id: u64,
    name: &'static str,
}

impl SpanGuard {
    /// The span's id — 0 for a no-op trace. This is what
    /// `SolveDiagnostics::trace_id` carries to link a solution to its span
    /// tree in the recorded trace.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(shared) = &self.trace.shared {
            let mut state = shared.lock();
            if let Some(pos) = state.stack.iter().rposition(|&s| s == self.id) {
                state.stack.remove(pos);
            }
            let fields = vec![("id", FieldValue::U64(self.id))];
            state.push_event(EventKind::SpanEnd, self.name, fields, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RESIDUAL_DECADES;

    #[test]
    fn noop_trace_records_nothing() {
        let trace = Trace::noop();
        assert!(!trace.is_enabled());
        let span = trace.span("x");
        assert_eq!(span.id(), 0);
        trace.event("e", vec![]);
        trace.add("c", 1);
        trace.observe("h", RESIDUAL_DECADES, 0.5);
        drop(span);
        // Nothing to assert against — the point is that none of it panics
        // and a default Trace is the no-op.
        assert!(!Trace::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_events_attach_to_the_open_span() {
        let recorder = Recorder::new();
        let trace = recorder.trace();
        {
            let outer = trace.span("outer");
            trace.event("in_outer", vec![]);
            {
                let inner = trace.span_with("inner", vec![("k", 7_u64.into())]);
                assert_eq!((outer.id(), inner.id()), (1, 2));
                trace.event("in_inner", vec![]);
            }
            trace.event("back_in_outer", vec![]);
        }
        let events = recorder.events();
        let spans: Vec<u64> = events.iter().map(|e| e.span).collect();
        // span_start(outer) has parent 0; inner start has parent 1; the
        // inner point sits in span 2; after inner ends, span 1 again.
        assert_eq!(spans, vec![0, 1, 1, 2, 1, 1, 0]);
        assert_eq!(events[3].name, "in_inner");
        assert_eq!(events[6].kind, EventKind::SpanEnd);
        // Logical clock: consecutive, starting at 0.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn volatile_events_do_not_advance_the_clock_and_are_filtered() {
        let recorder = Recorder::new();
        let trace = recorder.trace();
        trace.event("a", vec![]);
        trace.volatile_event("partition", vec![("workers", 3_u64.into())]);
        trace.volatile_event("partition", vec![("workers", 3_u64.into())]);
        trace.event("b", vec![]);
        let events = recorder.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].seq, 1, "volatile events consumed no seq");
        let det = recorder.deterministic_json();
        assert!(!det.contains("partition"));
        let full = recorder.full_json();
        assert!(full.contains("partition") && full.contains("\"volatile\": true"));
    }

    #[test]
    fn deterministic_export_is_invariant_to_volatile_interleaving() {
        let run = |volatiles: usize| {
            let recorder = Recorder::new();
            let trace = recorder.trace();
            let span = trace.span("solve");
            for w in 0..volatiles {
                trace.volatile_event("partition", vec![("worker", w.into())]);
            }
            trace.event("sweep", vec![("iter", 0_u64.into())]);
            drop(span);
            recorder.deterministic_json()
        };
        assert_eq!(run(1), run(3), "volatile count must not skew the export");
    }

    #[test]
    fn metrics_aggregate_and_export_sorted_by_name() {
        let recorder = Recorder::new();
        let trace = recorder.trace();
        trace.add("z.counter", 2);
        trace.add("z.counter", 3);
        trace.gauge("a.gauge", 1.5);
        trace.gauge("a.gauge", 2.5);
        trace.observe("m.hist", RESIDUAL_DECADES, 1e-13);
        trace.observe("m.hist", RESIDUAL_DECADES, 0.5);
        let json = recorder.deterministic_json();
        let a = json.find("a.gauge").expect("gauge exported");
        let m = json.find("m.hist").expect("histogram exported");
        let z = json.find("z.counter").expect("counter exported");
        assert!(a < m && m < z, "metrics sort by name");
        assert!(json.contains("\"value\": 5"), "counter summed");
        assert!(json.contains("\"value\": 2.5"), "gauge last-write-wins");
        assert!(json.contains("\"le_1e-12\": 1"));
    }

    #[test]
    fn trace_handles_work_across_scoped_threads() {
        // The seam contract: handles may cross into scoped workers. (Real
        // instrumentation keeps hot parallel regions silent; this only
        // checks nothing deadlocks or drops events.)
        let recorder = Recorder::new();
        let trace = recorder.trace();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let t = trace.clone();
                scope.spawn(move || t.add("spawned", 1));
            }
        });
        let json = recorder.deterministic_json();
        assert!(json.contains("\"value\": 3"));
    }

    #[test]
    fn exports_render_valid_empty_shapes() {
        let recorder = Recorder::new();
        let json = recorder.deterministic_json();
        assert!(json.contains("\"events\": []"));
        assert!(json.contains("\"metrics\": []"));
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert_eq!(recorder.event_count(), 0);
    }
}
