//! The event model: what one recorded observation looks like.
//!
//! An [`Event`] is a named point on the recorder's **logical clock** — a
//! sequence number assigned at emission, not a wall-clock timestamp. The
//! workspace-wide `wallclock` lint rule applies here exactly as it does to
//! solver code: nothing in a recorded event may read `Instant::now`. When
//! an experiment wants wall-clock context it attaches it *outside* the
//! deterministic trace, through the sanctioned `burstcap_bench::timing`
//! seam, as a [volatile](Event::volatile) field — volatile events are kept
//! out of the deterministic export, the same convention the `BENCH_*.json`
//! CI diffs use for `_ms` lines.

use std::fmt::Write as _;

/// A typed field value attached to an event.
///
/// The variants cover everything the solvers and the planner report;
/// rendering is deterministic (integers verbatim, floats through Rust's
/// shortest-roundtrip formatter, which is a pure function of the bits).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, indices, state-space sizes).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (residuals, statistics). Rendered via `{:?}` — shortest
    /// round-trip form, bit-determined.
    F64(f64),
    /// A static label (engine names, event qualifiers).
    Str(&'static str),
    /// A boolean flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl FieldValue {
    /// Render the value as a JSON scalar (deterministic).
    pub(crate) fn render_into(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            // `{:?}` is the shortest decimal that round-trips the exact
            // bits — deterministic, and it keeps 1e-12-scale residuals
            // readable. Non-finite values have no JSON spelling; quote
            // them so the export stays parseable.
            FieldValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v:?}");
            }
            FieldValue::F64(v) => {
                let _ = write!(out, "\"{v:?}\"");
            }
            FieldValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            FieldValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

/// What kind of observation an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened: a named region of work begins. Carries the new span's
    /// `id` field; [`Event::span`] is the *parent* span.
    SpanStart,
    /// The matching span closed (emitted by the guard's `Drop`).
    SpanEnd,
    /// A point observation inside whatever span is open.
    Point,
}

impl EventKind {
    /// The stable label used in the JSON export.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
        }
    }
}

/// One recorded observation, ordered by logical clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position on the recorder's logical clock. Volatile events do not
    /// advance the clock; they carry the clock value at emission, so the
    /// deterministic event stream's numbering is independent of how many
    /// volatile events interleave it.
    pub seq: u64,
    /// The enclosing span's id at emission (0 = no open span). For
    /// [`EventKind::SpanStart`] this is the **parent** span.
    pub span: u64,
    /// What kind of observation this is.
    pub kind: EventKind,
    /// Stable event name, dot-namespaced by subsystem
    /// (`"matfree.sweep"`, `"online.alarm"`, ...).
    pub name: &'static str,
    /// Typed payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Volatile events (worker-partition shapes, wall-clock attachments)
    /// are excluded from the deterministic export: their content may
    /// legitimately differ across worker counts or machines.
    pub volatile: bool,
}

impl Event {
    /// Render the event as a one-field-per-line JSON object at `indent`
    /// 2-space levels.
    pub(crate) fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        out.push_str("{\n");
        let _ = writeln!(out, "{pad}\"seq\": {},", self.seq);
        let _ = writeln!(out, "{pad}\"span\": {},", self.span);
        let _ = writeln!(out, "{pad}\"kind\": \"{}\",", self.kind.label());
        let _ = write!(out, "{pad}\"name\": \"{}\"", escape(self.name));
        for (key, value) in &self.fields {
            let _ = write!(out, ",\n{pad}\"{}\": ", escape(key));
            value.render_into(out);
        }
        if self.volatile {
            let _ = write!(out, ",\n{pad}\"volatile\": true");
        }
        out.push('\n');
        out.push_str(&"  ".repeat(indent));
        out.push('}');
    }
}

/// Escape a string for a JSON literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_values_render_deterministically() {
        let cases: Vec<(FieldValue, &str)> = vec![
            (FieldValue::U64(42), "42"),
            (FieldValue::I64(-3), "-3"),
            (FieldValue::F64(0.1), "0.1"),
            (FieldValue::F64(1e-12), "1e-12"),
            (FieldValue::F64(f64::NAN), "\"NaN\""),
            (FieldValue::Str("jacobi"), "\"jacobi\""),
            (FieldValue::Bool(true), "true"),
        ];
        for (value, expected) in cases {
            let mut out = String::new();
            value.render_into(&mut out);
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn event_renders_one_field_per_line() {
        let e = Event {
            seq: 7,
            span: 1,
            kind: EventKind::Point,
            name: "matfree.sweep",
            fields: vec![("iter", 3_u64.into()), ("residual", 0.5.into())],
            volatile: false,
        };
        let mut out = String::new();
        e.render_into(&mut out, 0);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "{");
        assert!(lines.iter().any(|l| l.trim() == "\"seq\": 7,"));
        assert!(lines.iter().any(|l| l.trim() == "\"residual\": 0.5"));
        // One field per line: 4 header fields + 2 payload + 2 braces.
        assert_eq!(lines.len(), 8);
    }

    #[test]
    fn volatile_flag_is_rendered_only_when_set() {
        let mut e = Event {
            seq: 0,
            span: 0,
            kind: EventKind::Point,
            name: "x",
            fields: vec![],
            volatile: false,
        };
        let mut out = String::new();
        e.render_into(&mut out, 0);
        assert!(!out.contains("volatile"));
        e.volatile = true;
        out.clear();
        e.render_into(&mut out, 0);
        assert!(out.contains("\"volatile\": true"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        FieldValue::Str("a\"b\\c").render_into(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\"");
    }
}
