//! Aggregated metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Metrics complement the event stream: a per-window counter increment or
//! a per-sweep residual observation would bloat the trace as events, so
//! they aggregate in place and the [recorder](crate::recorder::Recorder)
//! exports the final state alongside the events. Histogram bucket layouts
//! are **fixed at compile time** ([`BucketLayout`]) — every export of the
//! same metric has the same bucket lines, which is what makes the JSON
//! grep-diffable across runs and configurations.

use std::fmt::Write as _;

use crate::event::escape;

/// A fixed histogram bucket layout: upper bounds in strictly increasing
/// order, with an implicit `+inf` overflow bucket appended on export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketLayout {
    /// Inclusive upper bounds (`value <= bound` lands in the bucket), in
    /// strictly increasing order.
    pub bounds: &'static [f64],
}

/// Residual magnitudes, one bucket per decade: covers everything between
/// "converged past the tightest tolerance" (1e-14) and "diverging" (1.0).
pub const RESIDUAL_DECADES: BucketLayout = BucketLayout {
    bounds: &[1e-14, 1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0],
};

/// Iteration/sweep counts, one bucket per power of four up to the solver
/// iteration budgets (4^9 ≈ 262k > the 400k GS budget lands in overflow).
pub const SWEEP_POWERS: BucketLayout = BucketLayout {
    bounds: &[
        1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    ],
};

impl BucketLayout {
    /// Index of the bucket `value` falls into (`bounds.len()` = overflow).
    #[must_use]
    pub fn bucket_of(&self, value: f64) -> usize {
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }
}

/// One aggregated metric cell, keyed by name in the recorder's registry.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotone counter.
    Counter(u64),
    /// A last-value-wins gauge.
    Gauge(f64),
    /// A fixed-layout histogram: per-bucket counts plus count/sum.
    Histogram {
        /// The compile-time bucket layout observations are binned into.
        layout: BucketLayout,
        /// One count per layout bound, plus the trailing overflow bucket.
        counts: Vec<u64>,
        /// Total number of observations.
        total: u64,
        /// Sum of all observed values.
        sum: f64,
    },
}

impl Metric {
    /// A fresh histogram cell for `layout`.
    #[must_use]
    pub fn histogram(layout: BucketLayout) -> Metric {
        Metric::Histogram {
            counts: vec![0; layout.bounds.len() + 1],
            layout,
            total: 0,
            sum: 0.0,
        }
    }

    /// Render this metric as a one-field-per-line JSON object at `indent`
    /// 2-space levels, with its registry `name` inlined.
    pub(crate) fn render_into(&self, name: &str, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        out.push_str("{\n");
        let _ = writeln!(out, "{pad}\"name\": \"{}\",", escape(name));
        match self {
            Metric::Counter(v) => {
                let _ = writeln!(out, "{pad}\"type\": \"counter\",");
                let _ = writeln!(out, "{pad}\"value\": {v}");
            }
            Metric::Gauge(v) => {
                let _ = writeln!(out, "{pad}\"type\": \"gauge\",");
                let _ = writeln!(out, "{pad}\"value\": {v:?}");
            }
            Metric::Histogram {
                layout,
                counts,
                total,
                sum,
            } => {
                let _ = writeln!(out, "{pad}\"type\": \"histogram\",");
                let _ = writeln!(out, "{pad}\"count\": {total},");
                let _ = writeln!(out, "{pad}\"sum\": {sum:?},");
                for (bound, count) in layout.bounds.iter().zip(counts) {
                    let _ = writeln!(out, "{pad}\"le_{bound:?}\": {count},");
                }
                let overflow = counts.last().copied().unwrap_or(0);
                let _ = writeln!(out, "{pad}\"le_inf\": {overflow}");
            }
        }
        out.push_str(&"  ".repeat(indent));
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_bins_inclusively_with_overflow() {
        let layout = BucketLayout {
            bounds: &[1.0, 10.0],
        };
        assert_eq!(layout.bucket_of(0.5), 0);
        assert_eq!(layout.bucket_of(1.0), 0, "bounds are inclusive");
        assert_eq!(layout.bucket_of(5.0), 1);
        assert_eq!(layout.bucket_of(100.0), 2, "overflow bucket");
        assert_eq!(layout.bucket_of(f64::NAN), 2, "NaN lands in overflow");
    }

    #[test]
    fn standard_layouts_are_strictly_increasing() {
        for layout in [RESIDUAL_DECADES, SWEEP_POWERS] {
            for pair in layout.bounds.windows(2) {
                assert!(pair[0] < pair[1]);
            }
        }
    }

    #[test]
    fn histogram_renders_fixed_bucket_lines() {
        let mut m = Metric::histogram(RESIDUAL_DECADES);
        if let Metric::Histogram {
            layout,
            counts,
            total,
            sum,
        } = &mut m
        {
            for v in [1e-13, 1e-13, 0.5, 7.0] {
                counts[layout.bucket_of(v)] += 1;
                *total += 1;
                *sum += v;
            }
        }
        let mut out = String::new();
        m.render_into("qn.residual", &mut out, 0);
        assert!(out.contains("\"le_1e-12\": 2"));
        assert!(out.contains("\"le_1.0\": 1"));
        assert!(out.contains("\"le_inf\": 1"));
        assert!(out.contains("\"count\": 4"));
        // The bucket line set is the layout, not the data: zero buckets
        // still render, so two exports always diff line-for-line.
        for bound in RESIDUAL_DECADES.bounds {
            assert!(out.contains(&format!("\"le_{bound:?}\"")));
        }
    }

    #[test]
    fn counter_and_gauge_render() {
        let mut out = String::new();
        Metric::Counter(5).render_into("c", &mut out, 0);
        assert!(out.contains("\"value\": 5"));
        out.clear();
        Metric::Gauge(2.5).render_into("g", &mut out, 0);
        assert!(out.contains("\"value\": 2.5"));
    }
}
