//! Deterministic observability for the `burstcap` workspace.
//!
//! The paper this workspace reproduces (*"Burstiness in Multi-tier
//! Applications"*, MiCCS08) is an exercise in observing a multi-tier
//! system from coarse measurements. This crate turns the same discipline
//! inward: the solver stack and the online planner emit **structured,
//! replayable traces** of their own decisions — per-sweep residual
//! trajectories, engine selections, stall fallbacks, CUSUM statistics,
//! warm-vs-cold solves — without giving up a single determinism guarantee
//! the workspace already enforces.
//!
//! Three design rules make a trace a CI artifact instead of a log file:
//!
//! 1. **Logical clocks, no wall-clock.** Every event carries a sequence
//!    number assigned at emission ([`Event::seq`]); nothing in a recorded
//!    event reads `Instant::now` (the `wallclock` lint rule applies to
//!    this crate like any other). Wall-clock context, when wanted, is
//!    attached through the sanctioned `burstcap_bench::timing` seam as a
//!    *volatile* field.
//! 2. **Serial emission.** Instrumented code emits from serial sections
//!    only — the matfree workers compute, the serial residual pass emits —
//!    so the deterministic export is **byte-identical for every worker
//!    count** (property-tested, like the engine's iterate equality).
//!    Whatever legitimately varies (partition shapes, worker counts) is a
//!    [volatile event](Trace::volatile_event): visible in the full export,
//!    excluded from the deterministic one, and it does not advance the
//!    logical clock.
//! 3. **Near-zero default.** Every instrumented entry point takes a
//!    [`Trace`]; the default handle is a no-op whose operations are one
//!    `Option` check. `bench_obs` pins the overhead of the no-op *and* of
//!    a recording trace below 3% on the pop-100 sparse solve and the
//!    online ingest loop (`BENCH_obs.json`).
//!
//! # Example
//!
//! ```
//! use burstcap_obs::{metrics, Recorder, Trace};
//!
//! fn solve(trace: &Trace) -> f64 {
//!     let span = trace.span_with("demo.solve", vec![("states", 100_u64.into())]);
//!     let mut residual = 1.0;
//!     for iter in 0..4_u64 {
//!         residual /= 10.0;
//!         trace.event("demo.sweep", vec![("iter", iter.into()), ("residual", residual.into())]);
//!         trace.observe("demo.residual", metrics::RESIDUAL_DECADES, residual);
//!     }
//!     let _ = span.id(); // link the result to its span tree
//!     residual
//! }
//!
//! // Uninstrumented call sites pay one Option check:
//! assert!(solve(&Trace::noop()) < 1e-3);
//!
//! // Observed runs export a diffable one-field-per-line JSON trace:
//! let recorder = Recorder::new();
//! solve(&recorder.trace());
//! let json = recorder.deterministic_json();
//! assert!(json.contains("\"name\": \"demo.sweep\""));
//! assert!(json.contains("\"le_0.01\": 2"));
//! ```
//!
//! To instrument a new crate: take a `&Trace` parameter (or store a
//! `Trace` field defaulting to [`Trace::noop`]), namespace event names
//! with a crate prefix, emit only from serial sections, and mark anything
//! machine- or worker-count-dependent volatile. No dependency edge is
//! needed beyond `burstcap-obs` itself — this crate is a leaf.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bare `.unwrap()` is banned in library targets; burstcap-lint's
// `panic-in-lib` is the lexical twin (it also covers expect/panic!, with
// justification markers), clippy the type-aware backstop. The test target
// compiles with the allow, so unit tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod event;
pub mod metrics;
pub mod recorder;

pub use event::{Event, EventKind, FieldValue};
pub use metrics::{BucketLayout, Metric};
pub use recorder::{Recorder, SpanGuard, Trace};
