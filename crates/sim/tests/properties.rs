//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use burstcap_sim::engine::EventQueue;
use burstcap_sim::queues::MTrace1;
use burstcap_sim::station::PsServer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event calendar is a stable priority queue: pops come out in
    /// non-decreasing time order, FIFO among ties.
    #[test]
    fn calendar_orders_events(times in prop::collection::vec(0.0f64..1e6, 1..300)) {
        let mut q = EventQueue::new();
        for (k, &t) in times.iter().enumerate() {
            q.schedule(t, k);
        }
        let mut last_t = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last_t);
            last_t = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// A PS server conserves work: a batch of jobs arriving together
    /// completes exactly at the cumulative-work boundary, in
    /// shortest-remaining order.
    #[test]
    fn ps_server_conserves_work(works in prop::collection::vec(0.01f64..10.0, 1..20)) {
        let mut s = PsServer::new();
        for (id, &w) in works.iter().enumerate() {
            s.arrive(0.0, id as u64, w);
        }
        let total: f64 = works.iter().sum();
        // Drain the server: completions happen at increasing times and the
        // last one exactly when all work is done.
        let mut now = 0.0;
        let mut completed = 0;
        while let Some(t) = s.next_completion(now) {
            prop_assert!(t >= now - 1e-9);
            now = t;
            s.complete(now);
            completed += 1;
        }
        prop_assert_eq!(completed, works.len());
        prop_assert!((now - total).abs() < 1e-6, "drained at {now}, work {total}");
    }

    /// M/Trace/1 utilization converges to the configured rho and response
    /// times dominate service times.
    #[test]
    fn mtrace1_utilization_matches_rho(rho in 0.1f64..0.9, seed in any::<u64>()) {
        let trace = vec![1.0; 30_000];
        let r = MTrace1::new(rho, trace).unwrap().run(seed).unwrap();
        prop_assert!((r.utilization() - rho).abs() < 0.05, "got {}", r.utilization());
        prop_assert!(r.response_time_mean() >= 1.0 - 1e-9);
        prop_assert!(r.response_time_p95() >= r.response_time_mean());
    }

    /// Utilization is a busy fraction over the arrival horizon: always in
    /// [0, 1], at the offered load for an iid-ordered trace, and never
    /// above it by more than noise for any reordering (a sorted trace
    /// backloads work past the horizon, so its busy fraction can only
    /// drop).
    #[test]
    fn mtrace1_utilization_windowing(seed in any::<u64>()) {
        let base = burstcap_map::trace::hyperexp_trace(20_000, 1.0, 3.0, seed).unwrap();
        let sorted = burstcap_map::trace::impose_burstiness(
            &base,
            burstcap_map::trace::BurstProfile::Sorted,
            seed,
        )
        .unwrap();
        let a = MTrace1::new(0.5, base).unwrap().run(3).unwrap();
        let b = MTrace1::new(0.5, sorted).unwrap().run(3).unwrap();
        prop_assert!((0.0..=1.0).contains(&a.utilization()));
        prop_assert!((0.0..=1.0).contains(&b.utilization()));
        prop_assert!((a.utilization() - 0.5).abs() < 0.05, "iid U = {}", a.utilization());
        prop_assert!(b.utilization() <= a.utilization() + 0.05);
        // Bursty order can only hurt or match mean response (allow noise).
        prop_assert!(b.response_time_mean() > 0.5 * a.response_time_mean());
    }
}
