//! Sampling distributions for service and think times.
//!
//! A thin closed set of distributions is enough for the paper's experiments:
//! exponential think times, two-phase PH service (via
//! [`burstcap_map::ph::Ph2`]), plus deterministic and uniform helpers for
//! tests and calibration.

use rand::Rng;
use serde::{Deserialize, Serialize};

use burstcap_map::ph::Ph2;

use crate::SimError;

/// A samplable non-negative distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Exponential with the given rate.
    Exponential {
        /// Rate parameter (1 / mean).
        rate: f64,
    },
    /// Two-phase phase-type distribution.
    Ph(Ph2),
    /// A point mass.
    Deterministic {
        /// The constant value.
        value: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
}

impl Dist {
    /// Exponential distribution with the given mean.
    ///
    /// # Errors
    /// Rejects non-positive means.
    pub fn exponential_mean(mean: f64) -> Result<Self, SimError> {
        if mean <= 0.0 || !mean.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "mean",
                reason: format!("must be positive and finite, got {mean}"),
            });
        }
        Ok(Dist::Exponential { rate: 1.0 / mean })
    }

    /// Two-phase PH matched to a mean and SCV (see [`Ph2::from_mean_scv`]).
    ///
    /// # Errors
    /// Propagates the PH feasibility domain (`scv >= 1/2`).
    pub fn ph_mean_scv(mean: f64, scv: f64) -> Result<Self, SimError> {
        Ph2::from_mean_scv(mean, scv)
            .map(Dist::Ph)
            .map_err(|e| SimError::InvalidParameter {
                name: "scv",
                reason: e.to_string(),
            })
    }

    /// Uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    /// Rejects inverted or negative ranges.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, SimError> {
        if !(0.0 <= lo && lo <= hi && hi.is_finite()) {
            return Err(SimError::InvalidParameter {
                name: "range",
                reason: format!("need 0 <= lo <= hi, got [{lo}, {hi}]"),
            });
        }
        Ok(Dist::Uniform { lo, hi })
    }

    /// Mean of the distribution.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::Ph(ph) => ph.mean(),
            Dist::Deterministic { value } => value,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Exponential { rate } => -(1.0 - rng.random::<f64>()).ln() / rate,
            Dist::Ph(ph) => ph.sample(rng),
            Dist::Deterministic { value } => value,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.random::<f64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_mean(d: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_matches_mean() {
        let d = Dist::exponential_mean(0.5).unwrap();
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert!((sample_mean(d, 100_000, 1) - 0.5).abs() < 0.01);
    }

    #[test]
    fn ph_matches_mean() {
        let d = Dist::ph_mean_scv(2.0, 4.0).unwrap();
        assert!((d.mean() - 2.0).abs() < 1e-9);
        assert!((sample_mean(d, 200_000, 2) - 2.0).abs() < 0.05);
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Dist::Deterministic { value: 3.25 };
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.25);
        }
    }

    #[test]
    fn uniform_bounds_respected() {
        let d = Dist::uniform(1.0, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=2.0).contains(&x));
        }
        assert!((d.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Dist::exponential_mean(0.0).is_err());
        assert!(Dist::ph_mean_scv(1.0, 0.1).is_err());
        assert!(Dist::uniform(2.0, 1.0).is_err());
        assert!(Dist::uniform(-1.0, 1.0).is_err());
    }

    #[test]
    fn samples_are_non_negative() {
        let dists = [
            Dist::exponential_mean(1.0).unwrap(),
            Dist::ph_mean_scv(1.0, 3.0).unwrap(),
            Dist::uniform(0.0, 1.0).unwrap(),
        ];
        let mut rng = SmallRng::seed_from_u64(9);
        for d in dists {
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }
}
