//! The event calendar: a deterministic priority queue over simulated time.
//!
//! Events are ordered by time with a monotone sequence number breaking ties,
//! so replays with the same seed are bit-for-bit reproducible regardless of
//! heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the calendar: strictly ordered by `(time, seq)`.
#[derive(Debug, Clone, Copy)]
struct Key {
    time: f64,
    seq: u64,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// A future-event list for discrete-event simulation.
///
/// # Example
/// ```
/// use burstcap_sim::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Create an empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics on NaN times — a NaN clock is always a bug upstream.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let key = Key {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(Entry { key, event });
    }

    /// Remove and return the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.key.time, e.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as i32);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, 10);
        q.schedule(1.0, 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(5.0, 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
