//! A processor-sharing server with explicit per-job work.
//!
//! Both tiers of the TPC-W testbed run a processor-sharing discipline (the
//! paper's model of Figure 9 uses PS queues). [`PsServer`] tracks the
//! remaining work of every resident job; the server's unit capacity is shared
//! equally, so with `n` jobs resident each job progresses at rate `1/n`.
//! Owners drive it from their event loop: on every arrival or completion the
//! next-completion time changes, and the `generation` counter lets stale
//! calendar entries be recognized and dropped.

use serde::{Deserialize, Serialize};

/// A job resident in a [`PsServer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsJob {
    /// Caller-assigned identifier.
    pub id: u64,
    /// Remaining service requirement (seconds of dedicated service).
    pub remaining: f64,
}

/// Single processor-sharing server.
///
/// # Example
/// ```
/// use burstcap_sim::station::PsServer;
///
/// let mut s = PsServer::new();
/// s.arrive(0.0, 1, 2.0);
/// s.arrive(0.0, 2, 2.0);
/// // Two jobs of 2s sharing the CPU: both complete at t = 4.
/// assert_eq!(s.next_completion(0.0), Some(4.0));
/// let done = s.complete(4.0);
/// assert!(done.id == 1 || done.id == 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PsServer {
    jobs: Vec<PsJob>,
    last_update: f64,
    generation: u64,
}

impl PsServer {
    /// Create an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the server is idle.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Generation counter: bumped on every arrival and completion. Calendar
    /// entries carrying an older generation are stale and must be ignored.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Progress all resident jobs to time `now`.
    fn advance(&mut self, now: f64) {
        debug_assert!(now >= self.last_update - 1e-9, "time must advance");
        let n = self.jobs.len();
        if n > 0 {
            let each = (now - self.last_update) / n as f64;
            for j in self.jobs.iter_mut() {
                // burstcap-lint: allow(silent-clamp) — floors float underrun of remaining work; the PS share cannot logically exceed what is left
                j.remaining = (j.remaining - each).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// Admit a job with `work` seconds of service requirement at time `now`.
    ///
    /// # Panics
    /// Panics on negative work (a sampling bug upstream).
    pub fn arrive(&mut self, now: f64, id: u64, work: f64) {
        assert!(work >= 0.0, "job work must be non-negative");
        self.advance(now);
        self.jobs.push(PsJob {
            id,
            remaining: work,
        });
        self.generation += 1;
    }

    /// Absolute time of the next completion if no further arrival occurs.
    pub fn next_completion(&self, now: f64) -> Option<f64> {
        if self.jobs.is_empty() {
            return None;
        }
        let n = self.jobs.len() as f64;
        let elapsed = now - self.last_update;
        let min_remaining = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        // Remaining work still to do at `now` given sharing since last_update.
        // burstcap-lint: allow(silent-clamp) — same underrun floor: the next completion cannot precede `now`
        let residual = (min_remaining - elapsed / n).max(0.0);
        Some(now + residual * n)
    }

    /// Complete the job with the least remaining work at time `now`,
    /// returning it.
    ///
    /// # Panics
    /// Panics if the server is empty — completing on an idle server means the
    /// owner's calendar is corrupt.
    pub fn complete(&mut self, now: f64) -> PsJob {
        self.advance(now);
        assert!(!self.jobs.is_empty(), "complete() on an idle PS server");
        let (idx, _) = self
            .jobs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
            // burstcap-lint: allow(panic-in-lib) — caller holds the non-empty invariant; pop is only reached when jobs exist
            .expect("non-empty");
        self.generation += 1;
        self.jobs.swap_remove(idx)
    }

    /// Snapshot of resident jobs (order unspecified).
    pub fn jobs(&self) -> &[PsJob] {
        &self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_runs_at_full_rate() {
        let mut s = PsServer::new();
        s.arrive(0.0, 7, 3.0);
        assert_eq!(s.next_completion(0.0), Some(3.0));
        let j = s.complete(3.0);
        assert_eq!(j.id, 7);
        assert!(s.is_empty());
    }

    #[test]
    fn two_equal_jobs_share() {
        let mut s = PsServer::new();
        s.arrive(0.0, 1, 1.0);
        s.arrive(0.0, 2, 1.0);
        assert_eq!(s.next_completion(0.0), Some(2.0));
    }

    #[test]
    fn late_arrival_slows_first_job() {
        let mut s = PsServer::new();
        s.arrive(0.0, 1, 2.0);
        // At t=1 the first job has 1s left; a second job arrives.
        s.arrive(1.0, 2, 5.0);
        // First job now progresses at rate 1/2: completes at 1 + 2 = 3.
        assert_eq!(s.next_completion(1.0), Some(3.0));
        let j = s.complete(3.0);
        assert_eq!(j.id, 1);
        // Second job: served 1s of its 5 over [1,3]; alone now, 4s left.
        assert_eq!(s.next_completion(3.0), Some(7.0));
    }

    #[test]
    fn generation_bumps_on_changes() {
        let mut s = PsServer::new();
        let g0 = s.generation();
        s.arrive(0.0, 1, 1.0);
        assert!(s.generation() > g0);
        let g1 = s.generation();
        s.complete(1.0);
        assert!(s.generation() > g1);
    }

    #[test]
    fn next_completion_accounts_for_elapsed_time() {
        let mut s = PsServer::new();
        s.arrive(0.0, 1, 2.0);
        s.arrive(0.0, 2, 4.0);
        // Asked at t=1 without state change: job 1 has 2 - 1/2 = 1.5 left,
        // completing at 1 + 1.5 * 2 = 4.
        assert_eq!(s.next_completion(1.0), Some(4.0));
    }

    #[test]
    fn empty_server_has_no_completion() {
        let s = PsServer::new();
        assert_eq!(s.next_completion(5.0), None);
    }

    #[test]
    #[should_panic(expected = "idle PS server")]
    fn completing_idle_panics() {
        let mut s = PsServer::new();
        s.complete(1.0);
    }

    #[test]
    fn zero_work_job_completes_immediately() {
        let mut s = PsServer::new();
        s.arrive(2.0, 3, 0.0);
        assert_eq!(s.next_completion(2.0), Some(2.0));
        assert_eq!(s.complete(2.0).id, 3);
    }

    #[test]
    fn fairness_three_jobs() {
        // Three jobs of work 3 arriving together complete together at t=9.
        let mut s = PsServer::new();
        for id in 0..3 {
            s.arrive(0.0, id, 3.0);
        }
        assert_eq!(s.next_completion(0.0), Some(9.0));
        s.complete(9.0);
        // Remaining two jobs have zero work left.
        assert_eq!(s.next_completion(9.0), Some(9.0));
    }
}
