use std::error::Error;
use std::fmt;

/// Errors produced when configuring or running simulations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter is outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The simulation produced no observations to summarize (e.g. the horizon
    /// ended before any completion).
    NoObservations {
        /// What was being measured.
        what: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SimError::NoObservations { what } => {
                write!(f, "simulation produced no observations for {what}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::NoObservations {
            what: "response times",
        };
        assert!(e.to_string().contains("response times"));
    }

    #[test]
    fn implements_error_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<SimError>();
    }
}
