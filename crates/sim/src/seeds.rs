//! Deterministic RNG stream derivation for independent replications.
//!
//! The implementation lives in the dependency-free [`burstcap_seeds`] leaf
//! crate so that crates *below* `burstcap-sim` in the workspace graph
//! (notably `burstcap-map`, whose synthetic-trace generators draw random
//! rearrangements) can route their RNG construction through the same
//! derivation scheme. This module re-exports it wholesale; all existing
//! `burstcap_sim::seeds::…` paths keep working.
//!
//! See the [`burstcap_seeds`] crate docs for the SplitMix64 derivation
//! scheme and its collision/avalanche guarantees.

pub use burstcap_seeds::*;
