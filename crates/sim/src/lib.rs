//! Discrete-event queueing simulation for the `burstcap` workspace.
//!
//! This crate is the simulation substrate of the reproduction of
//! *"Burstiness in Multi-tier Applications: Symptoms, Causes, and New
//! Models"* (MIDDLEWARE 2008). It provides:
//!
//! * [`engine`] — a deterministic event calendar (binary heap keyed by time
//!   with FIFO tie-breaking);
//! * [`dists`] — the service/think-time distributions used by the paper's
//!   experiments (exponential, two-phase PH, deterministic, uniform);
//! * [`measure`] — monitoring probes producing exactly the coarse series the
//!   paper's estimators consume: per-window utilization, per-window
//!   completion counts, sampled queue lengths, and response-time tallies;
//! * [`station`] — a processor-sharing server with per-job work (the
//!   front/database CPUs of the testbed simulator);
//! * [`queues`] — canned models: the open **M/Trace/1** queue of Table 1 and
//!   the closed **MAP queueing network** of Figure 9 (delay → front → DB),
//!   simulated exactly for cross-validation of the analytic solver;
//! * [`seeds`] — SplitMix64 seed derivation giving every simulator and
//!   every replication its own decorrelated RNG stream.
//!
//! # Example: Table 1's queue in three lines
//!
//! ```
//! use burstcap_sim::queues::MTrace1;
//!
//! let service = vec![1.0; 20_000]; // deterministic unit service
//! let result = MTrace1::new(0.5, service)?.run(7)?; // rho = 0.5
//! assert!(result.response_time_mean() >= 1.0);
//! # Ok::<(), burstcap_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bare `.unwrap()` is banned in library targets; burstcap-lint's
// `panic-in-lib` is the lexical twin (it also covers expect/panic!, with
// justification markers), clippy the type-aware backstop. The test target
// compiles with the allow, so unit tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod dists;
pub mod engine;
mod error;
pub mod measure;
pub mod queues;
pub mod seeds;
pub mod station;

pub use error::SimError;
