//! Canned queueing models used by the paper's experiments.
//!
//! * [`MTrace1`] — the open M/Trace/1 FCFS queue of Table 1: Poisson
//!   arrivals against a *given, ordered* service-time trace, so that the
//!   burstiness profile of the trace (not just its distribution) shapes the
//!   response times. Solved exactly by Lindley recursion.
//! * [`ClosedMapNetwork`] — a discrete-event simulation of the paper's
//!   Figure 9 model: `N` customers cycling through an exponential think
//!   stage, a front-server queue and a database queue, each serving with a
//!   MAP(2)-modulated completion process. It exists to cross-validate the
//!   exact CTMC solver in `burstcap-qn` and to generate synthetic monitoring
//!   data with known ground truth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use burstcap_map::Map2;

use crate::engine::EventQueue;
use crate::measure::ResponseTally;
use crate::seeds;
use crate::SimError;

/// The M/Trace/1 queue of the paper's Table 1.
///
/// Arrival rate is derived from the requested utilization:
/// `lambda = rho / mean(service)`. Jobs are served FCFS in trace order, so
/// reordering the trace changes waiting times even though the service-time
/// distribution is identical — the experiment at the heart of Section 2.
#[derive(Debug, Clone)]
pub struct MTrace1 {
    rho: f64,
    trace: Vec<f64>,
}

/// Result of an [`MTrace1`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MTrace1Result {
    response_mean: f64,
    response_p95: f64,
    utilization: f64,
    completed: usize,
}

impl MTrace1Result {
    /// Mean response time (waiting + service).
    pub fn response_time_mean(&self) -> f64 {
        self.response_mean
    }

    /// 95th percentile of response times.
    pub fn response_time_p95(&self) -> f64 {
        self.response_p95
    }

    /// Fraction of time the server was busy over the observation horizon
    /// (the arrival interval `[0, a_n]`), reported raw: an overloaded trace
    /// approaches 1 from below, it is never clamped there.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Number of jobs served (the trace length).
    pub fn completed(&self) -> usize {
        self.completed
    }
}

impl MTrace1 {
    /// Create the queue with offered load `rho` and an ordered service-time
    /// trace. `rho >= 1` is accepted: the run is transient (all trace jobs
    /// are still served), which is exactly what overload regression tests
    /// need — see [`MTrace1Result::utilization`].
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `rho`, empty traces, and traces
    /// with non-positive mean or negative entries.
    pub fn new(rho: f64, trace: Vec<f64>) -> Result<Self, SimError> {
        if !(rho > 0.0 && rho.is_finite()) {
            return Err(SimError::InvalidParameter {
                name: "rho",
                reason: format!("must be positive and finite, got {rho}"),
            });
        }
        if trace.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "trace",
                reason: "empty service trace".into(),
            });
        }
        if trace.iter().any(|&s| s < 0.0 || !s.is_finite()) {
            return Err(SimError::InvalidParameter {
                name: "trace",
                reason: "service times must be non-negative and finite".into(),
            });
        }
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        if mean <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "trace",
                reason: "service trace mean must be positive".into(),
            });
        }
        Ok(MTrace1 { rho, trace })
    }

    /// Run the queue to completion (all trace jobs served) via Lindley
    /// recursion and summarize response times.
    ///
    /// The RNG stream is derived from `seed` via
    /// [`seeds::derive`] with [`seeds::MTRACE1_STREAM`], so a run with seed
    /// `s` never shares a stream with another simulator run with the same
    /// `s`.
    ///
    /// Utilization is the busy fraction over the **observation horizon**
    /// `[0, a_n]` (the interval across which the arrival process is
    /// observed), not over the post-drain makespan, and is reported raw:
    /// the old `(busy / last_departure).min(1.0)` both diluted bursty runs
    /// with their drain tail (during which the server is trivially 100%
    /// busy) and clamped away any evidence of overload.
    ///
    /// # Errors
    /// Never fails for a validated queue; the `Result` mirrors the
    /// fallibility of response summarization.
    pub fn run(&self, seed: u64) -> Result<MTrace1Result, SimError> {
        let mean_service = self.trace.iter().sum::<f64>() / self.trace.len() as f64;
        let lambda = self.rho / mean_service;
        let mut rng = SmallRng::seed_from_u64(seeds::derive(seed, seeds::MTRACE1_STREAM, 0));

        // Arrivals first: the observation horizon (the last arrival) must
        // be known to window the busy time correctly.
        let mut arrivals = Vec::with_capacity(self.trace.len());
        let mut t = 0.0_f64;
        for _ in 0..self.trace.len() {
            t += -(1.0 - rng.random::<f64>()).ln() / lambda;
            arrivals.push(t);
        }
        let horizon = t;

        let mut tally = ResponseTally::new();
        let mut depart_prev = 0.0_f64;
        let mut busy_in_window = 0.0_f64;
        for (&arrival, &s) in arrivals.iter().zip(&self.trace) {
            let start = arrival.max(depart_prev);
            let depart = start + s;
            tally.record(depart - arrival);
            // Busy segment [start, depart), windowed to [0, horizon].
            busy_in_window += depart.min(horizon) - start.min(horizon);
            depart_prev = depart;
        }
        Ok(MTrace1Result {
            response_mean: tally.mean()?,
            response_p95: tally.percentile(0.95)?,
            utilization: if horizon > 0.0 {
                busy_in_window / horizon
            } else {
                0.0
            },
            completed: self.trace.len(),
        })
    }
}

/// Identifier of a queueing station in [`ClosedMapNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Front (application) server.
    Front,
    /// Database server.
    Db,
}

/// Calendar events of the closed-network simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A customer finished thinking and submits a request to the front tier.
    ThinkEnd,
    /// The service MAP of a station fires a (hidden or event) transition.
    Transition { tier: usize, generation: u64 },
}

/// A station whose completions follow a MAP(2) service process, frozen while
/// the station is idle.
#[derive(Debug, Clone)]
struct MapStation {
    map: Map2,
    phase: usize,
    queue_len: usize,
    generation: u64,
    busy_since: Option<f64>,
    busy_total: f64,
    completions_measured: u64,
    queue_area: f64,
    last_change: f64,
}

impl MapStation {
    fn new(map: Map2, rng: &mut SmallRng) -> Self {
        let pi = map.embedded_stationary();
        MapStation {
            map,
            phase: usize::from(rng.random::<f64>() >= pi[0]),
            queue_len: 0,
            generation: 0,
            busy_since: None,
            busy_total: 0.0,
            completions_measured: 0,
            queue_area: 0.0,
            last_change: 0.0,
        }
    }

    fn integrate_queue(&mut self, now: f64, measure_from: f64) {
        let from = self.last_change.max(measure_from);
        if now > from {
            self.queue_area += self.queue_len as f64 * (now - from);
        }
        self.last_change = now;
    }
}

/// Exact discrete-event simulation of the closed MAP queueing network of the
/// paper's Figure 9: think (exponential delay) → front → database → think.
#[derive(Debug, Clone)]
pub struct ClosedMapNetwork {
    population: usize,
    think_time: f64,
    front: Map2,
    db: Map2,
}

/// Steady-state estimates from a [`ClosedMapNetwork`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedRunResult {
    /// System throughput: database completions per second.
    pub throughput: f64,
    /// Front-server utilization.
    pub utilization_front: f64,
    /// Database utilization.
    pub utilization_db: f64,
    /// Time-averaged number of requests at the front tier.
    pub mean_jobs_front: f64,
    /// Time-averaged number of requests at the database tier.
    pub mean_jobs_db: f64,
}

impl ClosedMapNetwork {
    /// Configure a network with `population` customers, mean think time
    /// `think_time`, and per-tier MAP(2) service processes.
    ///
    /// # Errors
    /// Rejects a zero population and non-positive think times.
    pub fn new(
        population: usize,
        think_time: f64,
        front: Map2,
        db: Map2,
    ) -> Result<Self, SimError> {
        if population == 0 {
            return Err(SimError::InvalidParameter {
                name: "population",
                reason: "need at least one customer".into(),
            });
        }
        if think_time <= 0.0 || !think_time.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "think_time",
                reason: format!("must be positive and finite, got {think_time}"),
            });
        }
        Ok(ClosedMapNetwork {
            population,
            think_time,
            front,
            db,
        })
    }

    /// Simulate for `horizon` seconds, measuring after `warmup` seconds.
    ///
    /// The RNG stream is derived from `seed` via [`seeds::derive`] with
    /// [`seeds::CLOSED_MAP_NETWORK_STREAM`]: two different simulators run
    /// with the same seed consume disjoint streams.
    ///
    /// # Errors
    /// Rejects a non-positive measurement interval or a run with no
    /// completions.
    pub fn run(&self, horizon: f64, warmup: f64, seed: u64) -> Result<ClosedRunResult, SimError> {
        if !(horizon.is_finite() && warmup >= 0.0 && horizon > warmup) {
            return Err(SimError::InvalidParameter {
                name: "horizon",
                reason: format!(
                    "need 0 <= warmup < horizon, got warmup={warmup}, horizon={horizon}"
                ),
            });
        }
        let mut rng =
            SmallRng::seed_from_u64(seeds::derive(seed, seeds::CLOSED_MAP_NETWORK_STREAM, 0));
        let mut calendar: EventQueue<Event> = EventQueue::new();
        let mut stations = [
            MapStation::new(self.front, &mut rng),
            MapStation::new(self.db, &mut rng),
        ];

        // All customers start thinking.
        for _ in 0..self.population {
            let t = sample_exp(&mut rng, 1.0 / self.think_time);
            calendar.schedule(t, Event::ThinkEnd);
        }

        let schedule_sojourn = |st: &mut MapStation,
                                cal: &mut EventQueue<Event>,
                                now: f64,
                                tier: usize,
                                rng: &mut SmallRng| {
            let rate = -st.map.d0()[st.phase][st.phase];
            let dt = sample_exp(rng, rate);
            cal.schedule(
                now + dt,
                Event::Transition {
                    tier,
                    generation: st.generation,
                },
            );
        };

        let mut now;
        while let Some((t, event)) = calendar.pop() {
            now = t;
            if now >= horizon {
                break;
            }
            match event {
                Event::ThinkEnd => {
                    let st = &mut stations[0];
                    st.integrate_queue(now, warmup);
                    st.queue_len += 1;
                    if st.queue_len == 1 {
                        st.busy_since = Some(now);
                        st.generation += 1;
                        schedule_sojourn(st, &mut calendar, now, 0, &mut rng);
                    }
                }
                Event::Transition { tier, generation } => {
                    let (is_event, routed) = {
                        let st = &mut stations[tier];
                        if generation != st.generation || st.queue_len == 0 {
                            continue; // stale calendar entry
                        }
                        // Split the phase exit rate between hidden (D0) and
                        // event (D1) transitions.
                        let i = st.phase;
                        let total = -st.map.d0()[i][i];
                        let hidden = st.map.d0()[i][1 - i];
                        let u = rng.random::<f64>() * total;
                        if u < hidden {
                            st.phase = 1 - i;
                            schedule_sojourn(st, &mut calendar, now, tier, &mut rng);
                            (false, false)
                        } else {
                            // Event transition: pick destination phase.
                            let d1 = st.map.d1()[i];
                            st.phase = if u - hidden < d1[0] { 0 } else { 1 };
                            st.integrate_queue(now, warmup);
                            st.queue_len -= 1;
                            if now >= warmup {
                                st.completions_measured += 1;
                                let since = st.busy_since.expect("busy while serving");
                                st.busy_total += now - since.max(warmup);
                                st.busy_since = Some(now);
                            }
                            if st.queue_len > 0 {
                                st.generation += 1;
                                schedule_sojourn(st, &mut calendar, now, tier, &mut rng);
                            } else {
                                st.busy_since = None;
                                st.generation += 1;
                            }
                            (true, true)
                        }
                    };
                    if is_event && routed {
                        match tier {
                            0 => {
                                // Front completion feeds the database.
                                let st = &mut stations[1];
                                st.integrate_queue(now, warmup);
                                st.queue_len += 1;
                                if st.queue_len == 1 {
                                    st.busy_since = Some(now);
                                    st.generation += 1;
                                    schedule_sojourn(st, &mut calendar, now, 1, &mut rng);
                                }
                            }
                            _ => {
                                // Database completion returns to thinking.
                                let dt = sample_exp(&mut rng, 1.0 / self.think_time);
                                calendar.schedule(now + dt, Event::ThinkEnd);
                            }
                        }
                    }
                }
            }
        }

        // Close out accumulators at the horizon.
        let measured = horizon - warmup;
        for st in stations.iter_mut() {
            st.integrate_queue(horizon, warmup);
            if let Some(since) = st.busy_since {
                st.busy_total += horizon - since.max(warmup);
            }
        }
        let db_completions = stations[1].completions_measured;
        if db_completions == 0 {
            return Err(SimError::NoObservations {
                what: "database completions",
            });
        }
        Ok(ClosedRunResult {
            throughput: db_completions as f64 / measured,
            utilization_front: stations[0].busy_total / measured,
            utilization_db: stations[1].busy_total / measured,
            mean_jobs_front: stations[0].queue_area / measured,
            mean_jobs_db: stations[1].queue_area / measured,
        })
    }

    /// The configured population.
    pub fn population(&self) -> usize {
        self.population
    }

    /// The configured mean think time.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }
}

fn sample_exp(rng: &mut SmallRng, rate: f64) -> f64 {
    -(1.0 - rng.random::<f64>()).ln() / rate
}

/// FIFO queue of job identifiers — exposed for testbed builders that manage
/// their own stations.
pub type JobQueue = VecDeque<u64>;

#[cfg(test)]
mod tests {
    use super::*;
    use burstcap_map::fit::Map2Fitter;

    #[test]
    fn mm1_response_time_matches_theory() {
        // Exponential trace: M/M/1 with rho = 0.5 has E[R] = E[S]/(1-rho) = 2.
        let mut rng = SmallRng::seed_from_u64(1);
        let trace: Vec<f64> = (0..400_000).map(|_| sample_exp(&mut rng, 1.0)).collect();
        let result = MTrace1::new(0.5, trace).unwrap().run(2).unwrap();
        assert!(
            (result.response_time_mean() - 2.0).abs() < 0.1,
            "E[R] = {}",
            result.response_time_mean()
        );
        assert!((result.utilization() - 0.5).abs() < 0.02);
    }

    #[test]
    fn md1_waiting_matches_pollaczek_khinchin() {
        // Deterministic service, rho = 0.8: W = rho/(2(1-rho)) * E[S] = 2;
        // E[R] = 3.
        let trace = vec![1.0; 400_000];
        let result = MTrace1::new(0.8, trace).unwrap().run(3).unwrap();
        assert!(
            (result.response_time_mean() - 3.0).abs() < 0.2,
            "E[R] = {}",
            result.response_time_mean()
        );
    }

    #[test]
    fn bursty_trace_degrades_response_times() {
        // Same multiset of service times, different order: sorted (maximal
        // burstiness) must be far slower — Table 1's core observation.
        use burstcap_map::trace::{hyperexp_trace, impose_burstiness, BurstProfile};
        let base = hyperexp_trace(100_000, 1.0, 3.0, 4).unwrap();
        let iid = impose_burstiness(&base, BurstProfile::Iid, 1).unwrap();
        let sorted = impose_burstiness(&base, BurstProfile::Sorted, 1).unwrap();
        let r_iid = MTrace1::new(0.5, iid).unwrap().run(9).unwrap();
        let r_sorted = MTrace1::new(0.5, sorted).unwrap().run(9).unwrap();
        assert!(
            r_sorted.response_time_mean() > 5.0 * r_iid.response_time_mean(),
            "sorted {} vs iid {}",
            r_sorted.response_time_mean(),
            r_iid.response_time_mean()
        );
    }

    #[test]
    fn mtrace1_validation() {
        assert!(MTrace1::new(0.0, vec![1.0]).is_err());
        assert!(MTrace1::new(f64::INFINITY, vec![1.0]).is_err());
        assert!(MTrace1::new(0.5, vec![]).is_err());
        assert!(MTrace1::new(0.5, vec![-1.0]).is_err());
        // Overloaded queues are legal (transient analysis): see
        // overloaded_trace_reports_saturated_utilization.
        assert!(MTrace1::new(1.0, vec![1.0]).is_ok());
        assert!(MTrace1::new(1.5, vec![1.0]).is_ok());
    }

    #[test]
    fn overloaded_trace_reports_saturated_utilization() {
        // Offered load 1.5: after a short startup the server never idles,
        // so the busy fraction over the observation horizon must approach 1
        // — and must come out of the raw ratio, not a clamp.
        let mut rng = SmallRng::seed_from_u64(14);
        let trace: Vec<f64> = (0..200_000).map(|_| sample_exp(&mut rng, 1.0)).collect();
        let result = MTrace1::new(1.5, trace).unwrap().run(15).unwrap();
        assert!(
            result.utilization() > 0.98 && result.utilization() <= 1.0,
            "overloaded run reports U = {}",
            result.utilization()
        );
        // Overload shows up in the responses too: the queue keeps growing,
        // so the p95 dwarfs what any stable queue would produce.
        assert!(result.response_time_p95() > 100.0);
    }

    #[test]
    fn utilization_windows_to_the_observation_horizon() {
        // An iid trace keeps the server's busy fraction at the offered load
        // over the arrival horizon. A sorted trace backloads its work: the
        // big jobs drain *after* the horizon, so the windowed utilization
        // legitimately falls below rho — it must not be inflated by the
        // 100%-busy drain tail the old last-departure denominator included.
        use burstcap_map::trace::{hyperexp_trace, impose_burstiness, BurstProfile};
        let base = hyperexp_trace(50_000, 1.0, 3.0, 4).unwrap();
        let iid = impose_burstiness(&base, BurstProfile::Iid, 1).unwrap();
        let sorted = impose_burstiness(&base, BurstProfile::Sorted, 1).unwrap();
        let r_iid = MTrace1::new(0.5, iid).unwrap().run(9).unwrap();
        let r_sorted = MTrace1::new(0.5, sorted).unwrap().run(9).unwrap();
        assert!(
            (r_iid.utilization() - 0.5).abs() < 0.05,
            "iid U = {} should track the offered load 0.5",
            r_iid.utilization()
        );
        assert!(
            r_sorted.utilization() < r_iid.utilization(),
            "sorted U = {} must exclude the post-horizon drain (iid U = {})",
            r_sorted.utilization(),
            r_iid.utilization()
        );
    }

    #[test]
    fn same_seed_different_simulators_use_disjoint_streams() {
        // MTrace1 and ClosedMapNetwork derive different component streams
        // from the same user seed (the old behaviour fed the identical
        // xoshiro stream to both).
        use crate::seeds;
        let s = 77;
        assert_ne!(
            seeds::derive(s, seeds::MTRACE1_STREAM, 0),
            seeds::derive(s, seeds::CLOSED_MAP_NETWORK_STREAM, 0)
        );
        // And each simulator stays deterministic per seed.
        let trace = vec![1.0; 10_000];
        let a = MTrace1::new(0.8, trace.clone()).unwrap().run(s).unwrap();
        let b = MTrace1::new(0.8, trace).unwrap().run(s).unwrap();
        assert_eq!(a.response_time_mean(), b.response_time_mean());
        assert_eq!(a.utilization(), b.utilization());
    }

    #[test]
    fn closed_network_conserves_and_saturates() {
        // Highly loaded closed network: throughput approaches 1/max demand.
        let front = Map2::poisson(1.0 / 0.01).unwrap(); // 10 ms
        let db = Map2::poisson(1.0 / 0.004).unwrap(); // 4 ms
        let net = ClosedMapNetwork::new(60, 0.1, front, db).unwrap();
        let r = net.run(400.0, 40.0, 11).unwrap();
        // Bottleneck is the front server: X ~ 100/s, U_front ~ 1.
        assert!((r.throughput - 100.0).abs() < 5.0, "X = {}", r.throughput);
        assert!(r.utilization_front > 0.95, "U_fs = {}", r.utilization_front);
        assert!(
            (r.utilization_db - 0.4).abs() < 0.05,
            "U_db = {}",
            r.utilization_db
        );
        // Queue lengths: jobs in system <= population.
        assert!(r.mean_jobs_front + r.mean_jobs_db <= 60.0 + 1e-9);
    }

    #[test]
    fn closed_network_light_load_matches_demand() {
        // One customer: X = 1 / (Z + S_fs + S_db).
        let front = Map2::poisson(1.0 / 0.02).unwrap();
        let db = Map2::poisson(1.0 / 0.03).unwrap();
        let net = ClosedMapNetwork::new(1, 0.45, front, db).unwrap();
        let r = net.run(4000.0, 100.0, 5).unwrap();
        let expected = 1.0 / (0.45 + 0.02 + 0.03);
        assert!(
            (r.throughput - expected).abs() / expected < 0.05,
            "X = {} vs {}",
            r.throughput,
            expected
        );
    }

    #[test]
    fn bursty_db_lowers_throughput_vs_poisson() {
        // Same mean demands; bursty DB service must hurt (the paper's core
        // phenomenon).
        let front = Map2::poisson(1.0 / 0.008).unwrap();
        let db_smooth = Map2::poisson(1.0 / 0.007).unwrap();
        let db_bursty = Map2Fitter::new(0.007, 200.0, 0.02).fit().unwrap().map();
        let pop = 40;
        let smooth = ClosedMapNetwork::new(pop, 0.2, front, db_smooth)
            .unwrap()
            .run(600.0, 60.0, 21)
            .unwrap();
        let bursty = ClosedMapNetwork::new(pop, 0.2, front, db_bursty)
            .unwrap()
            .run(600.0, 60.0, 21)
            .unwrap();
        assert!(
            bursty.throughput < 0.9 * smooth.throughput,
            "bursty X = {} vs smooth X = {}",
            bursty.throughput,
            smooth.throughput
        );
    }

    #[test]
    fn closed_network_validation() {
        let m = Map2::poisson(1.0).unwrap();
        assert!(ClosedMapNetwork::new(0, 1.0, m, m).is_err());
        assert!(ClosedMapNetwork::new(1, 0.0, m, m).is_err());
        let net = ClosedMapNetwork::new(1, 1.0, m, m).unwrap();
        assert!(net.run(10.0, 20.0, 1).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let m = Map2::poisson(10.0).unwrap();
        let net = ClosedMapNetwork::new(5, 0.5, m, m).unwrap();
        let a = net.run(200.0, 20.0, 33).unwrap();
        let b = net.run(200.0, 20.0, 33).unwrap();
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.utilization_db, b.utilization_db);
    }
}
