//! Canned queueing models used by the paper's experiments.
//!
//! * [`MTrace1`] — the open M/Trace/1 FCFS queue of Table 1: Poisson
//!   arrivals against a *given, ordered* service-time trace, so that the
//!   burstiness profile of the trace (not just its distribution) shapes the
//!   response times. Solved exactly by Lindley recursion.
//! * [`ClosedMapNetwork`] — a discrete-event simulation of the paper's
//!   Figure 9 model: `N` customers cycling through an exponential think
//!   stage, a front-server queue and a database queue, each serving with a
//!   MAP(2)-modulated completion process. It exists to cross-validate the
//!   exact CTMC solver in `burstcap-qn` and to generate synthetic monitoring
//!   data with known ground truth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use burstcap_map::Map2;

use crate::engine::EventQueue;
use crate::measure::ResponseTally;
use crate::seeds;
use crate::SimError;

/// The M/Trace/1 queue of the paper's Table 1.
///
/// Arrival rate is derived from the requested utilization:
/// `lambda = rho / mean(service)`. Jobs are served FCFS in trace order, so
/// reordering the trace changes waiting times even though the service-time
/// distribution is identical — the experiment at the heart of Section 2.
#[derive(Debug, Clone)]
pub struct MTrace1 {
    rho: f64,
    trace: Vec<f64>,
}

/// Result of an [`MTrace1`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MTrace1Result {
    response_mean: f64,
    response_p95: f64,
    utilization: f64,
    completed: usize,
}

impl MTrace1Result {
    /// Mean response time (waiting + service).
    pub fn response_time_mean(&self) -> f64 {
        self.response_mean
    }

    /// 95th percentile of response times.
    pub fn response_time_p95(&self) -> f64 {
        self.response_p95
    }

    /// Fraction of time the server was busy over the observation horizon
    /// (the arrival interval `[0, a_n]`), reported raw: an overloaded trace
    /// approaches 1 from below, it is never clamped there.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Number of jobs served (the trace length).
    pub fn completed(&self) -> usize {
        self.completed
    }
}

impl MTrace1 {
    /// Create the queue with offered load `rho` and an ordered service-time
    /// trace. `rho >= 1` is accepted: the run is transient (all trace jobs
    /// are still served), which is exactly what overload regression tests
    /// need — see [`MTrace1Result::utilization`].
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `rho`, empty traces, and traces
    /// with non-positive mean or negative entries.
    pub fn new(rho: f64, trace: Vec<f64>) -> Result<Self, SimError> {
        if !(rho > 0.0 && rho.is_finite()) {
            return Err(SimError::InvalidParameter {
                name: "rho",
                reason: format!("must be positive and finite, got {rho}"),
            });
        }
        if trace.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "trace",
                reason: "empty service trace".into(),
            });
        }
        if trace.iter().any(|&s| s < 0.0 || !s.is_finite()) {
            return Err(SimError::InvalidParameter {
                name: "trace",
                reason: "service times must be non-negative and finite".into(),
            });
        }
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        if mean <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "trace",
                reason: "service trace mean must be positive".into(),
            });
        }
        Ok(MTrace1 { rho, trace })
    }

    /// Run the queue to completion (all trace jobs served) via Lindley
    /// recursion and summarize response times.
    ///
    /// The RNG stream is derived from `seed` via
    /// [`seeds::derive`] with [`seeds::MTRACE1_STREAM`], so a run with seed
    /// `s` never shares a stream with another simulator run with the same
    /// `s`.
    ///
    /// Utilization is the busy fraction over the **observation horizon**
    /// `[0, a_n]` (the interval across which the arrival process is
    /// observed), not over the post-drain makespan, and is reported raw:
    /// the old `(busy / last_departure).min(1.0)` both diluted bursty runs
    /// with their drain tail (during which the server is trivially 100%
    /// busy) and clamped away any evidence of overload.
    ///
    /// # Errors
    /// Never fails for a validated queue; the `Result` mirrors the
    /// fallibility of response summarization.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn run(&self, seed: u64) -> Result<MTrace1Result, SimError> {
        let mean_service = self.trace.iter().sum::<f64>() / self.trace.len() as f64;
        let lambda = self.rho / mean_service;
        let mut rng = SmallRng::seed_from_u64(seeds::derive(seed, seeds::MTRACE1_STREAM, 0));

        // Arrivals first: the observation horizon (the last arrival) must
        // be known to window the busy time correctly.
        let mut arrivals = Vec::with_capacity(self.trace.len());
        let mut t = 0.0_f64;
        for _ in 0..self.trace.len() {
            t += -(1.0 - rng.random::<f64>()).ln() / lambda;
            arrivals.push(t);
        }
        let horizon = t;

        let mut tally = ResponseTally::new();
        let mut depart_prev = 0.0_f64;
        let mut busy_in_window = 0.0_f64;
        for (&arrival, &s) in arrivals.iter().zip(&self.trace) {
            let start = arrival.max(depart_prev);
            let depart = start + s;
            tally.record(depart - arrival);
            // Busy segment [start, depart), windowed to [0, horizon].
            busy_in_window += depart.min(horizon) - start.min(horizon);
            depart_prev = depart;
        }
        Ok(MTrace1Result {
            response_mean: tally.mean()?,
            response_p95: tally.percentile(0.95)?,
            utilization: if horizon > 0.0 {
                busy_in_window / horizon
            } else {
                0.0
            },
            completed: self.trace.len(),
        })
    }
}

/// Identifier of a queueing station in [`ClosedMapNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Front (application) server.
    Front,
    /// Database server.
    Db,
}

/// Calendar events of the closed-network simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A customer finished thinking and submits a request to the entry
    /// station.
    ThinkEnd,
    /// The service MAP of a station fires a (hidden or event) transition.
    Transition { station: usize, generation: u64 },
}

/// A station whose completions follow a MAP(2) service process, frozen while
/// the station is idle. Each station owns its RNG stream (derived from the
/// run seed through [`seeds::derive`]), so the MAP sample path of station
/// `i` is unaffected by how many other stations the network has.
#[derive(Debug, Clone)]
struct MapStation {
    map: Map2,
    rng: SmallRng,
    phase: usize,
    queue_len: usize,
    generation: u64,
    busy_since: Option<f64>,
    busy_total: f64,
    completions_measured: u64,
    queue_area: f64,
    last_change: f64,
}

impl MapStation {
    fn new(map: Map2, mut rng: SmallRng) -> Self {
        let pi = map.embedded_stationary();
        let phase = usize::from(rng.random::<f64>() >= pi[0]);
        MapStation {
            map,
            rng,
            phase,
            queue_len: 0,
            generation: 0,
            busy_since: None,
            busy_total: 0.0,
            completions_measured: 0,
            queue_area: 0.0,
            last_change: 0.0,
        }
    }

    fn integrate_queue(&mut self, now: f64, measure_from: f64) {
        let from = self.last_change.max(measure_from);
        if now > from {
            self.queue_area += self.queue_len as f64 * (now - from);
        }
        self.last_change = now;
    }

    /// Schedule the next MAP transition of this station's current phase.
    fn schedule_sojourn(&mut self, calendar: &mut EventQueue<Event>, now: f64, station: usize) {
        let rate = -self.map.d0()[self.phase][self.phase];
        let dt = sample_exp(&mut self.rng, rate);
        calendar.schedule(
            now + dt,
            Event::Transition {
                station,
                generation: self.generation,
            },
        );
    }

    /// A job arrives at this station; starts service if the station was
    /// idle.
    fn arrive(&mut self, calendar: &mut EventQueue<Event>, now: f64, warmup: f64, station: usize) {
        self.integrate_queue(now, warmup);
        self.queue_len += 1;
        if self.queue_len == 1 {
            self.busy_since = Some(now);
            self.generation += 1;
            self.schedule_sojourn(calendar, now, station);
        }
    }
}

/// Exact discrete-event simulation of a closed MAP queueing network: `N`
/// customers cycling through an exponential think stage and `M` MAP(2)
/// stations. The default **tandem** routing reproduces the paper's Figure 9
/// for `M = 2` (think → front → database → think) and generalizes it to any
/// station chain; an explicit routing-probability matrix
/// ([`ClosedMapNetwork::routing`]) covers feedback and skip topologies.
#[derive(Debug, Clone)]
pub struct ClosedMapNetwork {
    population: usize,
    think_time: f64,
    stations: Vec<Map2>,
    routing: Option<Vec<Vec<f64>>>,
}

/// Steady-state estimates from a [`ClosedMapNetwork`] run.
///
/// Per-station metrics live in `utilization` / `mean_jobs` (station order);
/// the scalar `*_front` / `*_db` fields mirror the first and last station
/// for continuity with the two-tier model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedRunResult {
    /// System throughput: completions that return to the think stage, per
    /// second (for tandem routing, last-station completions).
    pub throughput: f64,
    /// Per-station utilization, in station order.
    pub utilization: Vec<f64>,
    /// Per-station time-averaged number of resident requests.
    pub mean_jobs: Vec<f64>,
    /// Per-station completions per second (visit rates). For tandem routing
    /// every station's rate equals the system throughput; with a routing
    /// matrix, feedback loops push a station's rate above it (visit
    /// ratios).
    pub completion_rates: Vec<f64>,
    /// First-station utilization (`utilization[0]`).
    pub utilization_front: f64,
    /// Last-station utilization (`utilization[M - 1]`).
    pub utilization_db: f64,
    /// Time-averaged number of requests at the first station.
    pub mean_jobs_front: f64,
    /// Time-averaged number of requests at the last station.
    pub mean_jobs_db: f64,
}

impl ClosedMapNetwork {
    /// Configure the paper's two-tier network: `population` customers, mean
    /// think time `think_time`, and front/database MAP(2) service processes
    /// in tandem.
    ///
    /// # Errors
    /// Rejects a zero population and non-positive think times.
    pub fn new(
        population: usize,
        think_time: f64,
        front: Map2,
        db: Map2,
    ) -> Result<Self, SimError> {
        Self::tandem(population, think_time, vec![front, db])
    }

    /// Configure a tandem of `M` MAP(2) stations: think completions enter
    /// station 0, station `i` feeds station `i + 1`, the last station
    /// returns to the think stage.
    ///
    /// # Errors
    /// Rejects a zero population, non-positive think times, and an empty
    /// station list.
    pub fn tandem(
        population: usize,
        think_time: f64,
        stations: Vec<Map2>,
    ) -> Result<Self, SimError> {
        if population == 0 {
            return Err(SimError::InvalidParameter {
                name: "population",
                reason: "need at least one customer".into(),
            });
        }
        if think_time <= 0.0 || !think_time.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "think_time",
                reason: format!("must be positive and finite, got {think_time}"),
            });
        }
        if stations.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "stations",
                reason: "need at least one MAP station".into(),
            });
        }
        Ok(ClosedMapNetwork {
            population,
            think_time,
            stations,
            routing: None,
        })
    }

    /// Replace tandem routing with an explicit `M x M` probability matrix:
    /// `routing[i][j]` is the probability a completion at station `i` moves
    /// to station `j`; the remaining mass `1 - sum_j routing[i][j]` returns
    /// to the think stage. Think completions always enter station 0.
    ///
    /// # Errors
    /// Rejects a non-square matrix, negative or non-finite entries, and row
    /// sums above 1.
    pub fn routing(mut self, routing: Vec<Vec<f64>>) -> Result<Self, SimError> {
        let m = self.stations.len();
        if routing.len() != m || routing.iter().any(|row| row.len() != m) {
            return Err(SimError::InvalidParameter {
                name: "routing",
                reason: format!("routing matrix must be {m} x {m}"),
            });
        }
        for (i, row) in routing.iter().enumerate() {
            if row.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
                return Err(SimError::InvalidParameter {
                    name: "routing",
                    reason: format!("row {i} has entries outside [0, 1]"),
                });
            }
            let sum: f64 = row.iter().sum();
            if sum > 1.0 + 1e-12 {
                return Err(SimError::InvalidParameter {
                    name: "routing",
                    reason: format!("row {i} sums to {sum} > 1"),
                });
            }
        }
        self.routing = Some(routing);
        Ok(self)
    }

    /// Simulate for `horizon` seconds, measuring after `warmup` seconds.
    ///
    /// RNG streams are derived from `seed` via [`seeds::derive`] with
    /// [`seeds::CLOSED_MAP_NETWORK_STREAM`]: slot 0 drives the think stage
    /// and routing decisions, slot `1 + i` drives station `i`'s MAP. Two
    /// different simulators run with the same seed consume disjoint
    /// streams, and a station's sample path does not depend on how many
    /// other stations the network has.
    ///
    /// # Errors
    /// Rejects a non-positive measurement interval or a run with no
    /// completions.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn run(&self, horizon: f64, warmup: f64, seed: u64) -> Result<ClosedRunResult, SimError> {
        if !(horizon.is_finite() && warmup >= 0.0 && horizon > warmup) {
            return Err(SimError::InvalidParameter {
                name: "horizon",
                reason: format!(
                    "need 0 <= warmup < horizon, got warmup={warmup}, horizon={horizon}"
                ),
            });
        }
        let m = self.stations.len();
        let mut net_rng =
            SmallRng::seed_from_u64(seeds::derive(seed, seeds::CLOSED_MAP_NETWORK_STREAM, 0));
        let mut calendar: EventQueue<Event> = EventQueue::new();
        let mut stations: Vec<MapStation> = self
            .stations
            .iter()
            .enumerate()
            .map(|(i, &map)| {
                MapStation::new(
                    map,
                    SmallRng::seed_from_u64(seeds::derive(
                        seed,
                        seeds::CLOSED_MAP_NETWORK_STREAM,
                        1 + i as u64,
                    )),
                )
            })
            .collect();
        let mut think_exits: u64 = 0;

        // All customers start thinking.
        for _ in 0..self.population {
            let t = sample_exp(&mut net_rng, 1.0 / self.think_time);
            calendar.schedule(t, Event::ThinkEnd);
        }

        let mut now;
        while let Some((t, event)) = calendar.pop() {
            now = t;
            if now >= horizon {
                break;
            }
            match event {
                Event::ThinkEnd => {
                    stations[0].arrive(&mut calendar, now, warmup, 0);
                }
                Event::Transition {
                    station,
                    generation,
                } => {
                    let completed = {
                        let st = &mut stations[station];
                        if generation != st.generation || st.queue_len == 0 {
                            continue; // stale calendar entry
                        }
                        // Split the phase exit rate between hidden (D0) and
                        // event (D1) transitions.
                        let i = st.phase;
                        let total = -st.map.d0()[i][i];
                        let hidden = st.map.d0()[i][1 - i];
                        let u = st.rng.random::<f64>() * total;
                        if u < hidden {
                            st.phase = 1 - i;
                            st.schedule_sojourn(&mut calendar, now, station);
                            false
                        } else {
                            // Event transition: pick destination phase.
                            let d1 = st.map.d1()[i];
                            st.phase = if u - hidden < d1[0] { 0 } else { 1 };
                            st.integrate_queue(now, warmup);
                            st.queue_len -= 1;
                            if now >= warmup {
                                st.completions_measured += 1;
                                // burstcap-lint: allow(panic-in-lib) — a completing server was necessarily marked busy when its service began
                                let since = st.busy_since.expect("busy while serving");
                                st.busy_total += now - since.max(warmup);
                                st.busy_since = Some(now);
                            }
                            if st.queue_len > 0 {
                                st.generation += 1;
                                st.schedule_sojourn(&mut calendar, now, station);
                            } else {
                                st.busy_since = None;
                                st.generation += 1;
                            }
                            true
                        }
                    };
                    if completed {
                        // Route the finished job: explicit matrix, or the
                        // tandem chain with the last station exiting.
                        let destination = match &self.routing {
                            Some(rows) => {
                                let mut u = net_rng.random::<f64>();
                                let mut dest = None;
                                for (j, &p) in rows[station].iter().enumerate() {
                                    if u < p {
                                        dest = Some(j);
                                        break;
                                    }
                                    u -= p;
                                }
                                dest
                            }
                            None => (station + 1 < m).then_some(station + 1),
                        };
                        match destination {
                            Some(j) => stations[j].arrive(&mut calendar, now, warmup, j),
                            None => {
                                // Back to the think stage.
                                if now >= warmup {
                                    think_exits += 1;
                                }
                                let dt = sample_exp(&mut net_rng, 1.0 / self.think_time);
                                calendar.schedule(now + dt, Event::ThinkEnd);
                            }
                        }
                    }
                }
            }
        }

        // Close out accumulators at the horizon.
        let measured = horizon - warmup;
        for st in stations.iter_mut() {
            st.integrate_queue(horizon, warmup);
            if let Some(since) = st.busy_since {
                st.busy_total += horizon - since.max(warmup);
            }
        }
        if think_exits == 0 {
            return Err(SimError::NoObservations {
                what: "system completions",
            });
        }
        let utilization: Vec<f64> = stations.iter().map(|s| s.busy_total / measured).collect();
        let mean_jobs: Vec<f64> = stations.iter().map(|s| s.queue_area / measured).collect();
        let completion_rates: Vec<f64> = stations
            .iter()
            .map(|s| s.completions_measured as f64 / measured)
            .collect();
        Ok(ClosedRunResult {
            throughput: think_exits as f64 / measured,
            utilization_front: utilization[0],
            utilization_db: utilization[m - 1],
            mean_jobs_front: mean_jobs[0],
            mean_jobs_db: mean_jobs[m - 1],
            utilization,
            mean_jobs,
            completion_rates,
        })
    }

    /// The configured population.
    pub fn population(&self) -> usize {
        self.population
    }

    /// The configured mean think time.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }

    /// The configured stations, in order.
    pub fn stations(&self) -> &[Map2] {
        &self.stations
    }

    /// Station count `M`.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }
}

fn sample_exp(rng: &mut SmallRng, rate: f64) -> f64 {
    -(1.0 - rng.random::<f64>()).ln() / rate
}

/// FIFO queue of job identifiers — exposed for testbed builders that manage
/// their own stations.
pub type JobQueue = VecDeque<u64>;

#[cfg(test)]
mod tests {
    use super::*;
    use burstcap_map::fit::Map2Fitter;

    #[test]
    fn mm1_response_time_matches_theory() {
        // Exponential trace: M/M/1 with rho = 0.5 has E[R] = E[S]/(1-rho) = 2.
        let mut rng = SmallRng::seed_from_u64(1);
        let trace: Vec<f64> = (0..400_000).map(|_| sample_exp(&mut rng, 1.0)).collect();
        let result = MTrace1::new(0.5, trace).unwrap().run(2).unwrap();
        assert!(
            (result.response_time_mean() - 2.0).abs() < 0.1,
            "E[R] = {}",
            result.response_time_mean()
        );
        assert!((result.utilization() - 0.5).abs() < 0.02);
    }

    #[test]
    fn md1_waiting_matches_pollaczek_khinchin() {
        // Deterministic service, rho = 0.8: W = rho/(2(1-rho)) * E[S] = 2;
        // E[R] = 3.
        let trace = vec![1.0; 400_000];
        let result = MTrace1::new(0.8, trace).unwrap().run(3).unwrap();
        assert!(
            (result.response_time_mean() - 3.0).abs() < 0.2,
            "E[R] = {}",
            result.response_time_mean()
        );
    }

    #[test]
    fn bursty_trace_degrades_response_times() {
        // Same multiset of service times, different order: sorted (maximal
        // burstiness) must be far slower — Table 1's core observation.
        use burstcap_map::trace::{hyperexp_trace, impose_burstiness, BurstProfile};
        let base = hyperexp_trace(100_000, 1.0, 3.0, 4).unwrap();
        let iid = impose_burstiness(&base, BurstProfile::Iid, 1).unwrap();
        let sorted = impose_burstiness(&base, BurstProfile::Sorted, 1).unwrap();
        let r_iid = MTrace1::new(0.5, iid).unwrap().run(9).unwrap();
        let r_sorted = MTrace1::new(0.5, sorted).unwrap().run(9).unwrap();
        assert!(
            r_sorted.response_time_mean() > 5.0 * r_iid.response_time_mean(),
            "sorted {} vs iid {}",
            r_sorted.response_time_mean(),
            r_iid.response_time_mean()
        );
    }

    #[test]
    fn mtrace1_validation() {
        assert!(MTrace1::new(0.0, vec![1.0]).is_err());
        assert!(MTrace1::new(f64::INFINITY, vec![1.0]).is_err());
        assert!(MTrace1::new(0.5, vec![]).is_err());
        assert!(MTrace1::new(0.5, vec![-1.0]).is_err());
        // Overloaded queues are legal (transient analysis): see
        // overloaded_trace_reports_saturated_utilization.
        assert!(MTrace1::new(1.0, vec![1.0]).is_ok());
        assert!(MTrace1::new(1.5, vec![1.0]).is_ok());
    }

    #[test]
    fn overloaded_trace_reports_saturated_utilization() {
        // Offered load 1.5: after a short startup the server never idles,
        // so the busy fraction over the observation horizon must approach 1
        // — and must come out of the raw ratio, not a clamp.
        let mut rng = SmallRng::seed_from_u64(14);
        let trace: Vec<f64> = (0..200_000).map(|_| sample_exp(&mut rng, 1.0)).collect();
        let result = MTrace1::new(1.5, trace).unwrap().run(15).unwrap();
        assert!(
            result.utilization() > 0.98 && result.utilization() <= 1.0,
            "overloaded run reports U = {}",
            result.utilization()
        );
        // Overload shows up in the responses too: the queue keeps growing,
        // so the p95 dwarfs what any stable queue would produce.
        assert!(result.response_time_p95() > 100.0);
    }

    #[test]
    fn utilization_windows_to_the_observation_horizon() {
        // An iid trace keeps the server's busy fraction at the offered load
        // over the arrival horizon. A sorted trace backloads its work: the
        // big jobs drain *after* the horizon, so the windowed utilization
        // legitimately falls below rho — it must not be inflated by the
        // 100%-busy drain tail the old last-departure denominator included.
        use burstcap_map::trace::{hyperexp_trace, impose_burstiness, BurstProfile};
        let base = hyperexp_trace(50_000, 1.0, 3.0, 4).unwrap();
        let iid = impose_burstiness(&base, BurstProfile::Iid, 1).unwrap();
        let sorted = impose_burstiness(&base, BurstProfile::Sorted, 1).unwrap();
        let r_iid = MTrace1::new(0.5, iid).unwrap().run(9).unwrap();
        let r_sorted = MTrace1::new(0.5, sorted).unwrap().run(9).unwrap();
        assert!(
            (r_iid.utilization() - 0.5).abs() < 0.05,
            "iid U = {} should track the offered load 0.5",
            r_iid.utilization()
        );
        assert!(
            r_sorted.utilization() < r_iid.utilization(),
            "sorted U = {} must exclude the post-horizon drain (iid U = {})",
            r_sorted.utilization(),
            r_iid.utilization()
        );
    }

    #[test]
    fn same_seed_different_simulators_use_disjoint_streams() {
        // MTrace1 and ClosedMapNetwork derive different component streams
        // from the same user seed (the old behaviour fed the identical
        // xoshiro stream to both).
        use crate::seeds;
        let s = 77;
        assert_ne!(
            seeds::derive(s, seeds::MTRACE1_STREAM, 0),
            seeds::derive(s, seeds::CLOSED_MAP_NETWORK_STREAM, 0)
        );
        // And each simulator stays deterministic per seed.
        let trace = vec![1.0; 10_000];
        let a = MTrace1::new(0.8, trace.clone()).unwrap().run(s).unwrap();
        let b = MTrace1::new(0.8, trace).unwrap().run(s).unwrap();
        assert_eq!(a.response_time_mean(), b.response_time_mean());
        assert_eq!(a.utilization(), b.utilization());
    }

    #[test]
    fn closed_network_conserves_and_saturates() {
        // Highly loaded closed network: throughput approaches 1/max demand.
        let front = Map2::poisson(1.0 / 0.01).unwrap(); // 10 ms
        let db = Map2::poisson(1.0 / 0.004).unwrap(); // 4 ms
        let net = ClosedMapNetwork::new(60, 0.1, front, db).unwrap();
        let r = net.run(400.0, 40.0, 11).unwrap();
        // Bottleneck is the front server: X ~ 100/s, U_front ~ 1.
        assert!((r.throughput - 100.0).abs() < 5.0, "X = {}", r.throughput);
        assert!(r.utilization_front > 0.95, "U_fs = {}", r.utilization_front);
        assert!(
            (r.utilization_db - 0.4).abs() < 0.05,
            "U_db = {}",
            r.utilization_db
        );
        // Queue lengths: jobs in system <= population.
        assert!(r.mean_jobs_front + r.mean_jobs_db <= 60.0 + 1e-9);
    }

    #[test]
    fn closed_network_light_load_matches_demand() {
        // One customer: X = 1 / (Z + S_fs + S_db).
        let front = Map2::poisson(1.0 / 0.02).unwrap();
        let db = Map2::poisson(1.0 / 0.03).unwrap();
        let net = ClosedMapNetwork::new(1, 0.45, front, db).unwrap();
        let r = net.run(4000.0, 100.0, 5).unwrap();
        let expected = 1.0 / (0.45 + 0.02 + 0.03);
        assert!(
            (r.throughput - expected).abs() / expected < 0.05,
            "X = {} vs {}",
            r.throughput,
            expected
        );
    }

    #[test]
    fn bursty_db_lowers_throughput_vs_poisson() {
        // Same mean demands; bursty DB service must hurt (the paper's core
        // phenomenon).
        let front = Map2::poisson(1.0 / 0.008).unwrap();
        let db_smooth = Map2::poisson(1.0 / 0.007).unwrap();
        let db_bursty = Map2Fitter::new(0.007, 200.0, 0.02).fit().unwrap().map();
        let pop = 40;
        let smooth = ClosedMapNetwork::new(pop, 0.2, front, db_smooth)
            .unwrap()
            .run(600.0, 60.0, 21)
            .unwrap();
        let bursty = ClosedMapNetwork::new(pop, 0.2, front, db_bursty)
            .unwrap()
            .run(600.0, 60.0, 21)
            .unwrap();
        assert!(
            bursty.throughput < 0.9 * smooth.throughput,
            "bursty X = {} vs smooth X = {}",
            bursty.throughput,
            smooth.throughput
        );
    }

    #[test]
    fn closed_network_validation() {
        let m = Map2::poisson(1.0).unwrap();
        assert!(ClosedMapNetwork::new(0, 1.0, m, m).is_err());
        assert!(ClosedMapNetwork::new(1, 0.0, m, m).is_err());
        assert!(ClosedMapNetwork::tandem(1, 1.0, vec![]).is_err());
        let net = ClosedMapNetwork::new(1, 1.0, m, m).unwrap();
        assert!(net.run(10.0, 20.0, 1).is_err());
    }

    #[test]
    fn routing_matrix_validation() {
        let m = Map2::poisson(1.0).unwrap();
        let net = ClosedMapNetwork::tandem(1, 1.0, vec![m, m]).unwrap();
        // Wrong shape.
        assert!(net.clone().routing(vec![vec![0.5]]).is_err());
        // Negative entry.
        assert!(net
            .clone()
            .routing(vec![vec![-0.1, 0.0], vec![0.0, 0.0]])
            .is_err());
        // Row sum above 1.
        assert!(net
            .clone()
            .routing(vec![vec![0.7, 0.7], vec![0.0, 0.0]])
            .is_err());
        // A proper sub-stochastic matrix is accepted.
        assert!(net.routing(vec![vec![0.0, 1.0], vec![0.2, 0.0]]).is_ok());
    }

    #[test]
    fn three_station_tandem_light_load_matches_demand() {
        // One customer through web + app + db: X = 1 / (Z + sum demands).
        let stations = vec![
            Map2::poisson(1.0 / 0.01).unwrap(),
            Map2::poisson(1.0 / 0.02).unwrap(),
            Map2::poisson(1.0 / 0.03).unwrap(),
        ];
        let net = ClosedMapNetwork::tandem(1, 0.45, stations).unwrap();
        let r = net.run(4000.0, 100.0, 5).unwrap();
        let expected = 1.0 / (0.45 + 0.01 + 0.02 + 0.03);
        assert!(
            (r.throughput - expected).abs() / expected < 0.05,
            "X = {} vs {expected}",
            r.throughput
        );
        assert_eq!(r.utilization.len(), 3);
        assert_eq!(r.mean_jobs.len(), 3);
        // Scalar mirrors point at the first/last stations.
        assert_eq!(r.utilization_front, r.utilization[0]);
        assert_eq!(r.utilization_db, r.utilization[2]);
        // Utilization law per station: U_i = X * S_i.
        for (i, &s) in [0.01, 0.02, 0.03].iter().enumerate() {
            assert!(
                (r.utilization[i] - r.throughput * s).abs() < 0.01,
                "station {i}: U = {} vs X*S = {}",
                r.utilization[i],
                r.throughput * s
            );
        }
    }

    #[test]
    fn explicit_tandem_routing_matches_implicit_tandem_statistically() {
        // routing [[0,1],[0,0]] is the tandem chain; the explicit-matrix
        // path must agree with the implicit one within simulation noise.
        let front = Map2::poisson(1.0 / 0.01).unwrap();
        let db = Map2::poisson(1.0 / 0.004).unwrap();
        let tandem = ClosedMapNetwork::new(20, 0.1, front, db).unwrap();
        let routed = tandem
            .clone()
            .routing(vec![vec![0.0, 1.0], vec![0.0, 0.0]])
            .unwrap();
        let a = tandem.run(800.0, 80.0, 13).unwrap();
        let b = routed.run(800.0, 80.0, 13).unwrap();
        assert!(
            (a.throughput - b.throughput).abs() / a.throughput < 0.05,
            "tandem X = {} vs routed X = {}",
            a.throughput,
            b.throughput
        );
        assert!((a.utilization_db - b.utilization_db).abs() < 0.05);
    }

    #[test]
    fn feedback_routing_doubles_effective_demand() {
        // Single station, route-back probability 1/2: mean visits per pass
        // is 2, so with one customer X = 1 / (Z + 2 S).
        let st = Map2::poisson(1.0 / 0.05).unwrap();
        let net = ClosedMapNetwork::tandem(1, 0.4, vec![st])
            .unwrap()
            .routing(vec![vec![0.5]])
            .unwrap();
        let r = net.run(6000.0, 200.0, 9).unwrap();
        let expected = 1.0 / (0.4 + 2.0 * 0.05);
        assert!(
            (r.throughput - expected).abs() / expected < 0.05,
            "X = {} vs {expected}",
            r.throughput
        );
        // The station sees every feedback visit: its completion rate is
        // twice the think-exit throughput.
        assert!(
            (r.completion_rates[0] - 2.0 * r.throughput).abs() / r.throughput < 0.1,
            "station rate {} vs 2x throughput {}",
            r.completion_rates[0],
            2.0 * r.throughput
        );
    }

    #[test]
    fn tandem_completion_rates_match_throughput() {
        let front = Map2::poisson(1.0 / 0.01).unwrap();
        let db = Map2::poisson(1.0 / 0.004).unwrap();
        let r = ClosedMapNetwork::new(20, 0.1, front, db)
            .unwrap()
            .run(800.0, 80.0, 13)
            .unwrap();
        for (i, &rate) in r.completion_rates.iter().enumerate() {
            assert!(
                (rate - r.throughput).abs() / r.throughput < 0.02,
                "station {i}: rate {rate} vs X {}",
                r.throughput
            );
        }
    }

    #[test]
    fn per_station_streams_are_disjoint() {
        // Station i's MAP stream is derive(seed, CLOSED_MAP_NETWORK_STREAM,
        // 1 + i): distinct per station and distinct from the think stream.
        let s = 33;
        let think = seeds::derive(s, seeds::CLOSED_MAP_NETWORK_STREAM, 0);
        let st0 = seeds::derive(s, seeds::CLOSED_MAP_NETWORK_STREAM, 1);
        let st1 = seeds::derive(s, seeds::CLOSED_MAP_NETWORK_STREAM, 2);
        assert_ne!(think, st0);
        assert_ne!(think, st1);
        assert_ne!(st0, st1);
    }

    #[test]
    fn deterministic_under_seed() {
        let m = Map2::poisson(10.0).unwrap();
        let net = ClosedMapNetwork::new(5, 0.5, m, m).unwrap();
        let a = net.run(200.0, 20.0, 33).unwrap();
        let b = net.run(200.0, 20.0, 33).unwrap();
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.utilization_db, b.utilization_db);
    }
}
