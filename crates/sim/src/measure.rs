//! Monitoring probes: turn simulated dynamics into the coarse series the
//! paper's estimators consume.
//!
//! The reproduction needs three kinds of measurement, matching the paper's
//! toolchain:
//!
//! * [`BusyRecorder`] — per-window server busy time, i.e. `sar`-style
//!   utilization samples (`U_k`);
//! * [`CountRecorder`] — per-window completion counts, i.e. HP
//!   Diagnostics-style throughput samples (`n_k`);
//! * [`QueueLengthRecorder`] — time-averaged queue length per window
//!   (Figures 6-8);
//! * [`ResponseTally`] — response-time accumulation with retained samples
//!   for percentiles (Table 1).

use serde::{Deserialize, Serialize};

use burstcap_stats::descriptive::{percentile, RunningStats};

use crate::SimError;

/// Accumulates busy time into fixed windows and emits utilization samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BusyRecorder {
    resolution: f64,
    busy: Vec<f64>,
}

impl BusyRecorder {
    /// Create a recorder with the given window length (seconds).
    ///
    /// # Panics
    /// Panics on a non-positive resolution (configuration bug).
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        BusyRecorder {
            resolution,
            busy: Vec::new(),
        }
    }

    /// Record that the server was busy during `[from, to)`.
    pub fn add_busy(&mut self, from: f64, to: f64) {
        debug_assert!(to >= from, "interval must be ordered");
        let mut start = from;
        while start < to {
            let w = (start / self.resolution).floor() as usize;
            if self.busy.len() <= w {
                self.busy.resize(w + 1, 0.0);
            }
            let window_end = (w + 1) as f64 * self.resolution;
            let seg_end = to.min(window_end);
            self.busy[w] += seg_end - start;
            start = seg_end;
        }
    }

    /// Utilization per window up to `horizon`, clamped to `[0, 1]`.
    pub fn utilization(&self, horizon: f64) -> Vec<f64> {
        let n = (horizon / self.resolution).floor() as usize;
        (0..n)
            .map(|w| {
                let b = self.busy.get(w).copied().unwrap_or(0.0);
                // burstcap-lint: allow(silent-clamp) — busy time per window exceeds the window only by event-rounding at its edges; documented in the method contract
                (b / self.resolution).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Window length in seconds.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }
}

/// Counts events (completions) per fixed window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountRecorder {
    resolution: f64,
    counts: Vec<u64>,
}

impl CountRecorder {
    /// Create a recorder with the given window length (seconds).
    ///
    /// # Panics
    /// Panics on a non-positive resolution (configuration bug).
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        CountRecorder {
            resolution,
            counts: Vec::new(),
        }
    }

    /// Record one event at time `t`.
    pub fn record(&mut self, t: f64) {
        let w = (t / self.resolution).floor() as usize;
        if self.counts.len() <= w {
            self.counts.resize(w + 1, 0);
        }
        self.counts[w] += 1;
    }

    /// Event counts per window up to `horizon`.
    pub fn counts(&self, horizon: f64) -> Vec<u64> {
        let n = (horizon / self.resolution).floor() as usize;
        (0..n)
            .map(|w| self.counts.get(w).copied().unwrap_or(0))
            .collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Window length in seconds.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }
}

/// Time-averaged queue length per window (the paper's Figures 6-8 series).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueLengthRecorder {
    resolution: f64,
    area: Vec<f64>,
    last_time: f64,
    last_level: f64,
}

impl QueueLengthRecorder {
    /// Create a recorder with the given window length (seconds).
    ///
    /// # Panics
    /// Panics on a non-positive resolution (configuration bug).
    pub fn new(resolution: f64) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        QueueLengthRecorder {
            resolution,
            area: Vec::new(),
            last_time: 0.0,
            last_level: 0.0,
        }
    }

    /// Record that the queue level changed to `level` at time `t` (the level
    /// was constant since the previous call).
    pub fn update(&mut self, t: f64, level: f64) {
        debug_assert!(t >= self.last_time, "time must advance");
        self.integrate_to(t);
        self.last_level = level;
    }

    fn integrate_to(&mut self, t: f64) {
        let mut start = self.last_time;
        while start < t {
            let w = (start / self.resolution).floor() as usize;
            if self.area.len() <= w {
                self.area.resize(w + 1, 0.0);
            }
            let window_end = (w + 1) as f64 * self.resolution;
            let seg_end = t.min(window_end);
            self.area[w] += self.last_level * (seg_end - start);
            start = seg_end;
        }
        self.last_time = t;
    }

    /// Mean queue length per window up to `horizon`.
    pub fn series(&mut self, horizon: f64) -> Vec<f64> {
        self.integrate_to(horizon);
        let n = (horizon / self.resolution).floor() as usize;
        (0..n)
            .map(|w| self.area.get(w).copied().unwrap_or(0.0) / self.resolution)
            .collect()
    }
}

/// Response-time tally retaining samples for percentile queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResponseTally {
    stats: RunningStats,
    samples: Vec<f64>,
}

impl ResponseTally {
    /// Create an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one response time.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/stats/src/streaming.rs:571`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn record(&mut self, value: f64) {
        self.stats.push(value);
        self.samples.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean response time.
    ///
    /// # Errors
    /// Fails when no observation was recorded.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn mean(&self) -> Result<f64, SimError> {
        self.stats.mean().ok_or(SimError::NoObservations {
            what: "response times",
        })
    }

    /// Population variance of the recorded response times.
    ///
    /// The degenerate case is explicit: with fewer than two observations
    /// there is no dispersion information, and the old behaviour of the
    /// underlying accumulator — silently reporting `0.0` — made an
    /// under-sampled run look perfectly deterministic.
    ///
    /// # Errors
    /// Fails when fewer than two observations were recorded.
    pub fn variance(&self) -> Result<f64, SimError> {
        self.stats.variance().ok_or(SimError::NoObservations {
            what: "response-time variance (needs two observations)",
        })
    }

    /// Squared coefficient of variation of the recorded response times.
    ///
    /// # Errors
    /// Fails when fewer than two observations were recorded or the mean is
    /// zero (SCV undefined).
    pub fn scv(&self) -> Result<f64, SimError> {
        self.stats.scv().ok_or(SimError::NoObservations {
            what: "response-time scv (needs two observations and a non-zero mean)",
        })
    }

    /// Percentile of the recorded responses (e.g. `0.95`).
    ///
    /// # Errors
    /// Fails when empty or when `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Result<f64, SimError> {
        percentile(&self.samples, p).map_err(|e| SimError::InvalidParameter {
            name: "p",
            reason: e.to_string(),
        })
    }

    /// Access the raw samples (ordered by completion time).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Drop the first `warmup` and last `cooldown` entries of a series — the
/// paper trims 5 minutes on each side of its 3-hour runs.
///
/// Returns an empty slice when the trims overlap.
pub fn trim_series<T>(series: &[T], warmup: usize, cooldown: usize) -> &[T] {
    if warmup + cooldown >= series.len() {
        return &[];
    }
    &series[warmup..series.len() - cooldown]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_recorder_splits_across_windows() {
        let mut r = BusyRecorder::new(1.0);
        r.add_busy(0.5, 2.5); // half of w0, all of w1, half of w2
        let u = r.utilization(3.0);
        assert_eq!(u.len(), 3);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 1.0).abs() < 1e-12);
        assert!((u[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_recorder_idle_windows_are_zero() {
        let mut r = BusyRecorder::new(2.0);
        r.add_busy(6.0, 7.0);
        let u = r.utilization(10.0);
        assert_eq!(u, vec![0.0, 0.0, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn busy_recorder_accumulates_fragments() {
        let mut r = BusyRecorder::new(1.0);
        r.add_busy(0.0, 0.25);
        r.add_busy(0.5, 0.75);
        let u = r.utilization(1.0);
        assert!((u[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn count_recorder_bins_events() {
        let mut r = CountRecorder::new(5.0);
        for &t in &[0.1, 4.9, 5.1, 12.0] {
            r.record(t);
        }
        assert_eq!(r.counts(15.0), vec![2, 1, 1]);
        assert_eq!(r.total(), 4);
    }

    #[test]
    fn count_recorder_horizon_pads_with_zeros() {
        let mut r = CountRecorder::new(1.0);
        r.record(0.5);
        assert_eq!(r.counts(4.0), vec![1, 0, 0, 0]);
    }

    #[test]
    fn queue_length_time_average() {
        let mut r = QueueLengthRecorder::new(1.0);
        r.update(0.0, 2.0); // level 0 before, 2 after t=0
        r.update(0.5, 4.0); // level 2 during [0, 0.5), 4 after
        let s = r.series(1.0);
        // Window 0: 0.5 * 2 + 0.5 * 4 = 3.0 average.
        assert!((s[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn queue_length_spans_windows() {
        let mut r = QueueLengthRecorder::new(1.0);
        r.update(0.0, 1.0);
        let s = r.series(3.0);
        assert_eq!(s.len(), 3);
        for v in s {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn response_tally_stats() {
        let mut t = ResponseTally::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 4);
        assert!((t.mean().unwrap() - 2.5).abs() < 1e-12);
        assert!(t.percentile(0.95).unwrap() > 3.0);
        // Var([1..4]) population convention = 1.25; SCV = 1.25 / 2.5^2.
        assert!((t.variance().unwrap() - 1.25).abs() < 1e-12);
        assert!((t.scv().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_errors() {
        let t = ResponseTally::new();
        assert!(t.mean().is_err());
        assert!(t.percentile(0.5).is_err());
        assert!(t.variance().is_err());
        assert!(t.scv().is_err());
    }

    #[test]
    fn single_observation_has_no_variance() {
        // The degenerate case must be an error, not a silent 0.0 that makes
        // a one-sample run look deterministic.
        let mut t = ResponseTally::new();
        t.record(3.5);
        assert!(t.mean().is_ok());
        assert!(t.variance().is_err());
        assert!(t.scv().is_err());
    }

    #[test]
    fn trim_series_drops_edges() {
        let s = [1, 2, 3, 4, 5];
        assert_eq!(trim_series(&s, 1, 2), &[2, 3]);
        assert_eq!(trim_series(&s, 3, 3), &[] as &[i32]);
        assert_eq!(trim_series(&s, 0, 0), &[1, 2, 3, 4, 5]);
    }
}
