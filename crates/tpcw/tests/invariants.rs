//! Testbed invariants: conservation laws and monitoring consistency across
//! randomized configurations.

use proptest::prelude::*;

use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TierId;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any mix/population/seed, the run satisfies basic sanity laws:
    /// utilization bounds, utilization law per tier, throughput below the
    /// think-time ceiling, and queue lengths below the population.
    #[test]
    fn conservation_laws_hold(
        ebs in 1usize..60,
        seed in any::<u64>(),
        mix_idx in 0usize..3,
    ) {
        let mix = Mix::ALL[mix_idx];
        let run = Testbed::new(
            TestbedConfig::new(mix, ebs).duration(180.0).seed(seed),
        )
        .unwrap()
        .run()
        .unwrap();

        // Throughput ceiling: N customers with Z think time cannot exceed
        // N / Z completions per second in steady state; allow finite-window
        // fluctuation (a 120 s sample of ~N/Z exponential cycles).
        prop_assert!(run.throughput <= (ebs as f64 / 0.5) * 1.1 + 1.0);

        // Utilization bounds and rough utilization law (PH sampling noise
        // and contention inflation allowed for).
        for tier in [TierId::Front, TierId::Db] {
            let u = run.mean_utilization(tier);
            prop_assert!((0.0..=1.0).contains(&u));
        }
        let u_fs = run.mean_utilization(TierId::Front);
        let expected = run.throughput * mix.mean_front_demand();
        prop_assert!(
            (u_fs - expected).abs() < 0.1 + 0.1 * expected,
            "U_fs {} vs X*D {}",
            u_fs,
            expected
        );

        // Queue lengths bounded by the population.
        prop_assert!(run.fs_queue.iter().all(|&q| q <= ebs as f64 + 1e-9));
        prop_assert!(run.db_queue.iter().all(|&q| q <= ebs as f64 + 1e-9));

        // Per-type in-system counts sum below population at every window.
        for w in 0..run.db_queue.len() {
            let total: f64 = run.type_in_system.iter().map(|s| s[w]).sum();
            prop_assert!(total <= ebs as f64 + 1e-6);
        }

        // Completion counts match the reported throughput.
        let counted: u64 = run.per_type_completions.iter().sum();
        let reported = run.throughput * run.measured_seconds;
        prop_assert!(
            (counted as f64 - reported).abs() < 1.0,
            "counted {counted} vs reported {reported}"
        );
    }
}
