//! Output-stability regression test for the testbed.
//!
//! The in-flight job table used to be a `HashMap`; although it is only
//! keyed-accessed today, any future iteration over it would inherit the
//! per-instance hash seed and silently break replayability. The table is
//! now a `BTreeMap`, and this test pins the contract: two runs with the
//! same configuration and seed agree on every published field (the derived
//! `PartialEq` compares every series element exactly).

use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

#[test]
fn identical_seeds_reproduce_the_run_bit_for_bit() {
    let config = TestbedConfig::new(Mix::Browsing, 25)
        .duration(120.0)
        .seed(0xC0FFEE);
    let a = Testbed::new(config).unwrap().run().unwrap();
    let b = Testbed::new(config).unwrap().run().unwrap();
    assert_eq!(a, b);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.response_p95.to_bits(), b.response_p95.to_bits());
}

#[test]
fn replications_are_stable_and_distinct() {
    let config = TestbedConfig::new(Mix::Shopping, 15)
        .duration(90.0)
        .seed(42);
    let bed = Testbed::new(config).unwrap();
    let r1a = bed.replication(1).unwrap();
    let r1b = bed.replication(1).unwrap();
    assert_eq!(r1a, r1b);
    // Different replication indices must draw different streams.
    let r2 = bed.replication(2).unwrap();
    assert!(r1a.throughput.to_bits() != r2.throughput.to_bits());
}
