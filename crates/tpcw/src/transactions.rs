//! The 14 TPC-W transaction types (the paper's Table 3) and their resource
//! profiles.
//!
//! A *client transaction* bundles all processing that delivers one web page:
//! front-server (application) CPU work interleaved with a type-dependent
//! number of synchronous database queries (Section 3.3: "the Home transaction
//! has two database queries in maximum and one in minimum ... the Best Seller
//! transaction always has two outbound database queries"). Demands below are
//! calibrated so the simulated testbed reproduces the paper's saturation
//! ordering (browsing ≈ 75 EBs, shopping ≈ 100, ordering ≈ 150 at
//! `Z = 0.5 s`), not the authors' absolute hardware numbers.

use serde::{Deserialize, Serialize};

/// Transaction class (the two columns of the paper's Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxClass {
    /// Read-mostly page views.
    Browsing,
    /// Cart/checkout/administration interactions.
    Ordering,
}

/// The 14 TPC-W transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TxType {
    Home,
    NewProducts,
    BestSellers,
    ProductDetail,
    SearchRequest,
    ExecuteSearch,
    ShoppingCart,
    CustomerRegistration,
    BuyRequest,
    BuyConfirm,
    OrderInquiry,
    OrderDisplay,
    AdminRequest,
    AdminConfirm,
}

/// All transaction types in canonical order.
pub const ALL_TYPES: [TxType; 14] = [
    TxType::Home,
    TxType::NewProducts,
    TxType::BestSellers,
    TxType::ProductDetail,
    TxType::SearchRequest,
    TxType::ExecuteSearch,
    TxType::ShoppingCart,
    TxType::CustomerRegistration,
    TxType::BuyRequest,
    TxType::BuyConfirm,
    TxType::OrderInquiry,
    TxType::OrderDisplay,
    TxType::AdminRequest,
    TxType::AdminConfirm,
];

impl TxType {
    /// Index of this type in [`ALL_TYPES`] (stable across the workspace).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/tpcw/src/transactions.rs:69`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn index(self) -> usize {
        ALL_TYPES
            .iter()
            .position(|&t| t == self)
            // burstcap-lint: allow(panic-in-lib) — ALL_TYPES enumerates every variant, so position always finds self
            .expect("ALL_TYPES is exhaustive")
    }

    /// Browsing/Ordering classification (the paper's Table 3).
    pub fn class(self) -> TxClass {
        match self {
            TxType::Home
            | TxType::NewProducts
            | TxType::BestSellers
            | TxType::ProductDetail
            | TxType::SearchRequest
            | TxType::ExecuteSearch => TxClass::Browsing,
            _ => TxClass::Ordering,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TxType::Home => "Home",
            TxType::NewProducts => "New Products",
            TxType::BestSellers => "Best Sellers",
            TxType::ProductDetail => "Product Detail",
            TxType::SearchRequest => "Search Request",
            TxType::ExecuteSearch => "Execute Search",
            TxType::ShoppingCart => "Shopping Cart",
            TxType::CustomerRegistration => "Customer Registration",
            TxType::BuyRequest => "Buy Request",
            TxType::BuyConfirm => "Buy Confirm",
            TxType::OrderInquiry => "Order Inquiry",
            TxType::OrderDisplay => "Order Display",
            TxType::AdminRequest => "Admin Request",
            TxType::AdminConfirm => "Admin Confirm",
        }
    }

    /// Mean front-server (application tier) CPU demand per transaction,
    /// in seconds.
    pub fn front_demand(self) -> f64 {
        match self {
            TxType::Home => 0.0052,
            TxType::NewProducts => 0.0058,
            TxType::BestSellers => 0.0050,
            TxType::ProductDetail => 0.0046,
            TxType::SearchRequest => 0.0042,
            TxType::ExecuteSearch => 0.0075,
            TxType::ShoppingCart => 0.0036,
            TxType::CustomerRegistration => 0.0028,
            TxType::BuyRequest => 0.0034,
            TxType::BuyConfirm => 0.0038,
            TxType::OrderInquiry => 0.0028,
            TxType::OrderDisplay => 0.0032,
            TxType::AdminRequest => 0.0030,
            TxType::AdminConfirm => 0.0036,
        }
    }

    /// Number of outbound database queries: `(min, max)` per transaction
    /// (uniformly chosen within the range, per Section 3.3's description).
    pub fn db_query_range(self) -> (u32, u32) {
        match self {
            TxType::Home => (1, 2),
            TxType::NewProducts => (2, 2),
            TxType::BestSellers => (2, 2),
            TxType::ProductDetail => (1, 1),
            TxType::SearchRequest => (1, 1),
            TxType::ExecuteSearch => (2, 2),
            TxType::ShoppingCart => (2, 2),
            TxType::CustomerRegistration => (1, 1),
            TxType::BuyRequest => (2, 2),
            TxType::BuyConfirm => (3, 3),
            TxType::OrderInquiry => (1, 1),
            TxType::OrderDisplay => (2, 2),
            TxType::AdminRequest => (1, 1),
            TxType::AdminConfirm => (2, 2),
        }
    }

    /// Mean database CPU demand per query, in seconds (uncontended).
    pub fn db_query_demand(self) -> f64 {
        match self {
            TxType::Home => 0.0008,
            TxType::NewProducts => 0.0012,
            TxType::BestSellers => 0.0080,
            TxType::ProductDetail => 0.0008,
            TxType::SearchRequest => 0.0007,
            TxType::ExecuteSearch => 0.0012,
            TxType::ShoppingCart => 0.0008,
            TxType::CustomerRegistration => 0.0005,
            TxType::BuyRequest => 0.0012,
            TxType::BuyConfirm => 0.0010,
            TxType::OrderInquiry => 0.0008,
            TxType::OrderDisplay => 0.0010,
            TxType::AdminRequest => 0.0008,
            TxType::AdminConfirm => 0.0012,
        }
    }

    /// Whether this type touches the shared "inventory" resource whose
    /// contention episodes the paper traces to Best Seller and Home
    /// transactions (Figures 7 and 8).
    pub fn uses_shared_table(self) -> bool {
        matches!(self, TxType::BestSellers | TxType::Home)
    }

    /// Mean total database demand per transaction (expected query count ×
    /// per-query demand), uncontended.
    pub fn db_demand(self) -> f64 {
        let (lo, hi) = self.db_query_range();
        let mean_queries = (lo + hi) as f64 / 2.0;
        mean_queries * self.db_query_demand()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_types_with_stable_indices() {
        assert_eq!(ALL_TYPES.len(), 14);
        for (i, t) in ALL_TYPES.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn class_split_matches_table_3() {
        let browsing: Vec<_> = ALL_TYPES
            .iter()
            .filter(|t| t.class() == TxClass::Browsing)
            .collect();
        let ordering: Vec<_> = ALL_TYPES
            .iter()
            .filter(|t| t.class() == TxClass::Ordering)
            .collect();
        assert_eq!(browsing.len(), 6);
        assert_eq!(ordering.len(), 8);
    }

    #[test]
    fn best_sellers_always_two_queries() {
        assert_eq!(TxType::BestSellers.db_query_range(), (2, 2));
    }

    #[test]
    fn home_has_one_or_two_queries() {
        assert_eq!(TxType::Home.db_query_range(), (1, 2));
    }

    #[test]
    fn best_sellers_is_heaviest_db_type() {
        for t in ALL_TYPES {
            if t != TxType::BestSellers {
                assert!(
                    t.db_query_demand() < TxType::BestSellers.db_query_demand(),
                    "{} should be lighter than Best Sellers",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn shared_table_types_are_best_sellers_and_home() {
        let shared: Vec<_> = ALL_TYPES.iter().filter(|t| t.uses_shared_table()).collect();
        assert_eq!(shared.len(), 2);
        assert!(shared.contains(&&TxType::BestSellers));
        assert!(shared.contains(&&TxType::Home));
    }

    #[test]
    fn demands_are_positive_and_reasonable() {
        for t in ALL_TYPES {
            assert!(
                t.front_demand() > 0.0 && t.front_demand() < 0.1,
                "{}",
                t.name()
            );
            assert!(
                t.db_query_demand() > 0.0 && t.db_query_demand() < 0.1,
                "{}",
                t.name()
            );
            let (lo, hi) = t.db_query_range();
            assert!(lo >= 1 && lo <= hi && hi <= 5, "{}", t.name());
        }
    }

    #[test]
    fn db_demand_combines_queries() {
        // Home: 1.5 queries x 0.8 ms = 1.2 ms.
        assert!((TxType::Home.db_demand() - 0.0012).abs() < 1e-12);
        // Best Sellers: 2 x 8 ms = 16 ms.
        assert!((TxType::BestSellers.db_demand() - 0.016).abs() < 1e-12);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL_TYPES.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }
}
