//! The "hidden resource contention" model (paper, Section 3.3).
//!
//! The paper traces the browsing mix's service burstiness to specific
//! transaction types: *"Best Seller and Home transactions share some
//! resources required for their processing at the database server, and it
//! leads to extreme burstiness during such time periods"*. This module
//! models that mechanism directly: the database has a shared resource (think
//! of a hot table / buffer-pool region). When a Best Sellers query arrives
//! while another shared-table query is already resident, the resource may
//! enter a **contended episode** during which all shared-table queries cost a
//! multiplicative factor more CPU. Episodes end after an exponentially
//! distributed duration.
//!
//! The trigger is *concurrency-driven*, which creates the positive feedback
//! the paper observes: contention slows the shared queries, the DB queue
//! grows, concurrency rises, episodes chain — a burst. Under mixes where the
//! database is lightly loaded (shopping, ordering), concurrency is rare and
//! episodes stay short and isolated, so the same mechanism produces high
//! *variability* but no bottleneck switch, exactly the asymmetry of the
//! paper's Figures 5-6.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the shared-resource contention model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionConfig {
    /// Probability that a qualifying Best Sellers arrival triggers an
    /// episode (only outside episodes and cooldowns).
    pub trigger_probability: f64,
    /// Minimum number of Best Sellers queries already resident at the
    /// database for an arrival to qualify. Concurrency-gated triggering makes
    /// episode frequency scale superlinearly with Best Sellers traffic and
    /// database congestion — the browsing mix (11% Best Sellers) contends
    /// often under load, the shopping mix (5%) rarely, ordering (0.46%)
    /// almost never.
    pub trigger_threshold: usize,
    /// Mean episode duration in seconds (exponentially distributed).
    pub mean_duration: f64,
    /// Mean refractory time after an episode during which no new episode can
    /// start (the lock queue drains / caches refill), seconds.
    pub mean_cooldown: f64,
    /// Multiplicative CPU inflation applied to shared-table queries issued
    /// during an episode.
    pub slowdown: f64,
    /// Rate (episodes per second) at which episodes also start
    /// *spontaneously* while the resource is uncontended and outside
    /// cooldown — background database work (checkpoints, buffer-pool scans,
    /// statistics refreshes) that makes the service process bursty even at
    /// light load. Load-driven concurrency triggering amplifies this
    /// baseline under the browsing mix.
    pub spontaneous_rate: f64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            trigger_probability: 0.1,
            trigger_threshold: 2,
            mean_duration: 8.0,
            mean_cooldown: 12.0,
            slowdown: 6.0,
            spontaneous_rate: 0.025,
        }
    }
}

impl ContentionConfig {
    /// Disable contention entirely (for ablation experiments).
    pub fn disabled() -> Self {
        ContentionConfig {
            trigger_probability: 0.0,
            trigger_threshold: usize::MAX,
            mean_duration: 1.0,
            mean_cooldown: 1.0,
            slowdown: 1.0,
            spontaneous_rate: 0.0,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.trigger_probability) {
            return Err(format!(
                "trigger_probability must lie in [0, 1], got {}",
                self.trigger_probability
            ));
        }
        if self.mean_duration <= 0.0 || !self.mean_duration.is_finite() {
            return Err(format!(
                "mean_duration must be positive, got {}",
                self.mean_duration
            ));
        }
        if self.mean_cooldown < 0.0 || !self.mean_cooldown.is_finite() {
            return Err(format!(
                "mean_cooldown must be non-negative, got {}",
                self.mean_cooldown
            ));
        }
        if self.slowdown < 1.0 || !self.slowdown.is_finite() {
            return Err(format!("slowdown must be >= 1, got {}", self.slowdown));
        }
        if self.spontaneous_rate < 0.0 || !self.spontaneous_rate.is_finite() {
            return Err(format!(
                "spontaneous_rate must be non-negative, got {}",
                self.spontaneous_rate
            ));
        }
        Ok(())
    }
}

/// Runtime state of the shared resource.
#[derive(Debug, Clone)]
pub struct SharedResource {
    config: ContentionConfig,
    contended_until: f64,
    cooldown_until: f64,
    episode_start: f64,
    episodes: u64,
    accumulated: f64,
    next_spontaneous: f64,
}

impl SharedResource {
    /// Create the resource in the uncontended state.
    pub fn new(config: ContentionConfig) -> Self {
        SharedResource {
            config,
            contended_until: f64::NEG_INFINITY,
            cooldown_until: f64::NEG_INFINITY,
            episode_start: f64::NEG_INFINITY,
            episodes: 0,
            accumulated: 0.0,
            next_spontaneous: f64::NAN,
        }
    }

    /// Advance the spontaneous-episode hazard to time `now`. Call on every
    /// database query arrival (the polling granularity; queries arrive far
    /// more often than episodes occur).
    pub fn poll<R: Rng + ?Sized>(&mut self, now: f64, rng: &mut R) {
        if self.config.spontaneous_rate <= 0.0 {
            return;
        }
        if self.next_spontaneous.is_nan() {
            self.next_spontaneous =
                now - (1.0 - rng.random::<f64>()).ln() / self.config.spontaneous_rate;
        }
        if self.is_contended(now) || now < self.cooldown_until {
            return;
        }
        if now >= self.next_spontaneous {
            self.start_episode(now, rng);
            self.next_spontaneous = self.cooldown_until
                - (1.0 - rng.random::<f64>()).ln() / self.config.spontaneous_rate;
        }
    }

    fn start_episode<R: Rng + ?Sized>(&mut self, now: f64, rng: &mut R) {
        let duration = -(1.0 - rng.random::<f64>()).ln() * self.config.mean_duration;
        let cooldown = -(1.0 - rng.random::<f64>()).ln() * self.config.mean_cooldown;
        if self.episodes > 0 {
            self.accumulated += self.contended_until - self.episode_start;
        }
        self.episodes += 1;
        self.episode_start = now;
        self.contended_until = now + duration;
        self.cooldown_until = self.contended_until + cooldown;
    }

    /// Whether an episode is active at time `now`.
    pub fn is_contended(&self, now: f64) -> bool {
        now < self.contended_until
    }

    /// A Best Sellers query arrives at time `now` with
    /// `resident_best_sellers` Best Sellers queries already at the database.
    /// May start an episode; triggers during an episode or its cooldown are
    /// ignored (episodes have a fixed exponential duration followed by a
    /// refractory period, keeping bursts episodic rather than permanent).
    pub fn on_best_sellers_arrival<R: Rng + ?Sized>(
        &mut self,
        now: f64,
        resident_best_sellers: usize,
        rng: &mut R,
    ) {
        if resident_best_sellers < self.config.trigger_threshold {
            return;
        }
        if self.is_contended(now) || now < self.cooldown_until {
            return;
        }
        if rng.random::<f64>() >= self.config.trigger_probability {
            return;
        }
        self.start_episode(now, rng);
    }

    /// Account for contended time up to `now` (call at the measurement
    /// horizon; idempotent).
    pub fn finish(&mut self, now: f64) {
        if self.episodes > 0 {
            let end = self.contended_until.min(now);
            if end > self.episode_start {
                self.accumulated += end - self.episode_start;
                self.episode_start = end;
            }
        }
    }

    /// Total seconds spent contended (valid after [`finish`](Self::finish)).
    pub fn contended_seconds(&self) -> f64 {
        self.accumulated
    }

    /// CPU multiplier for a shared-table query issued at `now`.
    pub fn multiplier(&self, now: f64) -> f64 {
        if self.is_contended(now) {
            self.config.slowdown
        } else {
            1.0
        }
    }

    /// Number of episodes started.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// The configuration in force.
    pub fn config(&self) -> &ContentionConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_validate() {
        assert!(ContentionConfig::default().validate().is_ok());
        assert!(ContentionConfig::disabled().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = ContentionConfig {
            trigger_probability: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ContentionConfig {
            mean_duration: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ContentionConfig {
            slowdown: 0.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn no_trigger_without_concurrency() {
        let mut r = SharedResource::new(ContentionConfig {
            trigger_probability: 1.0,
            trigger_threshold: 1,
            mean_duration: 10.0,
            mean_cooldown: 0.0,
            slowdown: 6.0,
            spontaneous_rate: 0.0,
        });
        let mut rng = SmallRng::seed_from_u64(1);
        r.on_best_sellers_arrival(0.0, 0, &mut rng);
        assert!(!r.is_contended(0.0));
        assert_eq!(r.episodes(), 0);
    }

    #[test]
    fn trigger_with_concurrency_starts_episode() {
        let mut r = SharedResource::new(ContentionConfig {
            trigger_probability: 1.0,
            trigger_threshold: 1,
            mean_duration: 10.0,
            mean_cooldown: 0.0,
            slowdown: 6.0,
            spontaneous_rate: 0.0,
        });
        let mut rng = SmallRng::seed_from_u64(2);
        r.on_best_sellers_arrival(5.0, 2, &mut rng);
        assert!(r.is_contended(5.0));
        assert!((r.multiplier(5.0) - 6.0).abs() < 1e-12);
        assert_eq!(r.episodes(), 1);
    }

    #[test]
    fn episodes_expire() {
        let mut r = SharedResource::new(ContentionConfig {
            trigger_probability: 1.0,
            trigger_threshold: 1,
            mean_duration: 0.001,
            mean_cooldown: 0.0,
            slowdown: 6.0,
            spontaneous_rate: 0.0,
        });
        let mut rng = SmallRng::seed_from_u64(3);
        r.on_best_sellers_arrival(0.0, 1, &mut rng);
        assert!(!r.is_contended(1000.0));
        assert_eq!(r.multiplier(1000.0), 1.0);
    }

    #[test]
    fn triggers_during_episode_are_ignored() {
        let mut r = SharedResource::new(ContentionConfig {
            trigger_probability: 1.0,
            trigger_threshold: 1,
            mean_duration: 5.0,
            mean_cooldown: 0.0,
            slowdown: 6.0,
            spontaneous_rate: 0.0,
        });
        let mut rng = SmallRng::seed_from_u64(4);
        r.on_best_sellers_arrival(0.0, 1, &mut rng);
        let first_end = r.contended_until;
        r.on_best_sellers_arrival(first_end - 0.01, 3, &mut rng);
        assert_eq!(
            r.episodes(),
            1,
            "mid-episode triggers must not extend or recount"
        );
        assert!((r.contended_until - first_end).abs() < 1e-12);
    }

    #[test]
    fn cooldown_blocks_immediate_retrigger() {
        let mut r = SharedResource::new(ContentionConfig {
            trigger_probability: 1.0,
            trigger_threshold: 1,
            mean_duration: 0.5,
            mean_cooldown: 100.0,
            slowdown: 6.0,
            spontaneous_rate: 0.0,
        });
        let mut rng = SmallRng::seed_from_u64(8);
        r.on_best_sellers_arrival(0.0, 1, &mut rng);
        let end = r.contended_until;
        // Shortly after the episode ends we are in cooldown: no new episode.
        r.on_best_sellers_arrival(end + 0.1, 4, &mut rng);
        assert_eq!(r.episodes(), 1);
    }

    #[test]
    fn disabled_config_never_triggers() {
        let mut r = SharedResource::new(ContentionConfig::disabled());
        let mut rng = SmallRng::seed_from_u64(5);
        for k in 0..1000 {
            r.on_best_sellers_arrival(k as f64, 5, &mut rng);
        }
        assert_eq!(r.episodes(), 0);
    }

    #[test]
    fn trigger_probability_is_respected() {
        let mut r = SharedResource::new(ContentionConfig {
            trigger_probability: 0.2,
            trigger_threshold: 1,
            mean_duration: 1e-6, // effectively instantaneous episodes
            mean_cooldown: 0.0,
            slowdown: 2.0,
            spontaneous_rate: 0.0,
        });
        let mut rng = SmallRng::seed_from_u64(6);
        for k in 0..100_000 {
            r.on_best_sellers_arrival(k as f64, 1, &mut rng);
        }
        let rate = r.episodes() as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "episode rate {rate}");
    }
}
