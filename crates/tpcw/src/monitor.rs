//! Monitoring output of a testbed run — the coarse series the paper's
//! estimators consume, in the same shape `sar` and HP Diagnostics provide.

use serde::{Deserialize, Serialize};

use crate::mix::Mix;
use crate::TpcwError;

/// Which tier a monitoring series refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierId {
    /// Dedicated web (HTTP) server — present only in three-tier runs
    /// ([`crate::testbed::Topology::ThreeTier`]).
    Web,
    /// Front (application) server; in the default two-tier topology it
    /// plays the paper's combined "web + application" role.
    Front,
    /// Database server.
    Db,
}

/// Paired `(U_k, n_k)` series at a common resolution — the exact input of
/// the paper's Figure 2 algorithm and of utilization-law regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitoringSeries {
    /// Window length in seconds.
    pub resolution: f64,
    /// Per-window utilization in `[0, 1]`.
    pub utilization: Vec<f64>,
    /// Per-window completed transactions.
    pub completions: Vec<u64>,
}

/// Everything a testbed run produces after warm-up/cool-down trimming.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedRun {
    /// The transaction mix that was run.
    pub mix: Mix,
    /// Number of emulated browsers.
    pub ebs: usize,
    /// Mean think time (seconds).
    pub think_time: f64,
    /// Measured interval length (seconds, after trimming).
    pub measured_seconds: f64,
    /// Web-server utilization at the fine resolution — empty for two-tier
    /// runs.
    pub web_util: Vec<f64>,
    /// Web-server request completions per coarse window — empty for
    /// two-tier runs.
    pub web_completions: Vec<u64>,
    /// Mean web-server queue length per fine window — empty for two-tier
    /// runs.
    pub web_queue: Vec<f64>,
    /// Front-server utilization at the fine (sar-like) resolution.
    pub fs_util: Vec<f64>,
    /// Database utilization at the fine resolution.
    pub db_util: Vec<f64>,
    /// Front-server transaction completions per coarse (Diagnostics-like)
    /// window.
    pub fs_completions: Vec<u64>,
    /// Database transaction completions per coarse window.
    pub db_completions: Vec<u64>,
    /// Mean database queue length per fine window (jobs resident at the DB).
    pub db_queue: Vec<f64>,
    /// Mean front-server queue length per fine window.
    pub fs_queue: Vec<f64>,
    /// Per-transaction-type mean number of requests in system per fine
    /// window (indexed by [`crate::transactions::ALL_TYPES`] order).
    pub type_in_system: Vec<Vec<f64>>,
    /// Completed transactions per type over the measured interval.
    pub per_type_completions: [u64; 14],
    /// System throughput over the measured interval (transactions/second).
    pub throughput: f64,
    /// Mean transaction response time (seconds).
    pub response_mean: f64,
    /// 95th percentile of transaction response times (seconds).
    pub response_p95: f64,
    /// Number of contention episodes that started during the whole run.
    pub contention_episodes: u64,
    /// Total seconds the shared database resource spent contended.
    pub contended_seconds: f64,
    /// Fine (utilization/queue) window length, seconds.
    pub util_resolution: f64,
    /// Coarse (completion-count) window length, seconds.
    pub count_resolution: f64,
}

impl TestbedRun {
    /// The paired `(U_k, n_k)` monitoring series for one tier at the coarse
    /// resolution, re-binning the fine utilization windows.
    ///
    /// # Errors
    /// Fails if the coarse resolution is not a multiple of the fine one or
    /// the run is too short to form a single coarse window.
    pub fn monitoring(&self, tier: TierId) -> Result<MonitoringSeries, TpcwError> {
        let ratio = self.count_resolution / self.util_resolution;
        let step = ratio.round() as usize;
        if step == 0 || (ratio - step as f64).abs() > 1e-9 {
            return Err(TpcwError::InvalidParameter {
                name: "count_resolution",
                reason: format!(
                    "must be an integer multiple of util_resolution ({} vs {})",
                    self.count_resolution, self.util_resolution
                ),
            });
        }
        let (fine, counts) = match tier {
            TierId::Web => (&self.web_util, &self.web_completions),
            TierId::Front => (&self.fs_util, &self.fs_completions),
            TierId::Db => (&self.db_util, &self.db_completions),
        };
        if fine.is_empty() {
            // A two-tier run has no web series.
            return Err(TpcwError::NoObservations {
                what: "web-tier monitoring (run the three-tier topology)",
            });
        }
        let windows = fine.len() / step;
        if windows == 0 {
            return Err(TpcwError::NoObservations {
                what: "monitoring windows",
            });
        }
        let utilization: Vec<f64> = (0..windows)
            .map(|w| fine[w * step..(w + 1) * step].iter().sum::<f64>() / step as f64)
            .collect();
        let completions: Vec<u64> = counts.iter().copied().take(windows).collect();
        Ok(MonitoringSeries {
            resolution: self.count_resolution,
            utilization,
            completions,
        })
    }

    /// The tiers this run monitored, in tandem (request-flow) order:
    /// `[Web,] Front, Db` — `Web` only for three-tier runs.
    pub fn tandem_tiers(&self) -> Vec<TierId> {
        if self.web_util.is_empty() {
            vec![TierId::Front, TierId::Db]
        } else {
            vec![TierId::Web, TierId::Front, TierId::Db]
        }
    }

    /// All monitoring series of the run in tandem order — the live-feed
    /// adapter surface: `burstcap-online` replays these window by window
    /// into its streaming estimators.
    ///
    /// # Errors
    /// Propagates [`TestbedRun::monitoring`] failures (incompatible
    /// resolutions, run too short for one coarse window).
    pub fn tandem_monitoring(&self) -> Result<Vec<MonitoringSeries>, TpcwError> {
        self.tandem_tiers()
            .into_iter()
            .map(|tier| self.monitoring(tier))
            .collect()
    }

    /// Mean utilization of a tier over the measured interval.
    pub fn mean_utilization(&self, tier: TierId) -> f64 {
        let series = match tier {
            TierId::Web => &self.web_util,
            TierId::Front => &self.fs_util,
            TierId::Db => &self.db_util,
        };
        if series.is_empty() {
            return 0.0;
        }
        series.iter().sum::<f64>() / series.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_run() -> TestbedRun {
        TestbedRun {
            mix: Mix::Browsing,
            ebs: 10,
            think_time: 0.5,
            measured_seconds: 10.0,
            web_util: vec![],
            web_completions: vec![],
            web_queue: vec![],
            fs_util: vec![0.2, 0.4, 0.6, 0.8, 1.0, 0.0, 0.5, 0.5, 0.1, 0.9],
            db_util: vec![0.1; 10],
            fs_completions: vec![10, 20],
            db_completions: vec![12, 18],
            db_queue: vec![1.0; 10],
            fs_queue: vec![0.5; 10],
            type_in_system: vec![vec![0.0; 10]; 14],
            per_type_completions: [0; 14],
            throughput: 3.0,
            response_mean: 0.05,
            response_p95: 0.2,
            contention_episodes: 0,
            contended_seconds: 0.0,
            util_resolution: 1.0,
            count_resolution: 5.0,
        }
    }

    #[test]
    fn monitoring_rebins_utilization() {
        let run = dummy_run();
        let m = run.monitoring(TierId::Front).unwrap();
        assert_eq!(m.utilization.len(), 2);
        assert!((m.utilization[0] - 0.6).abs() < 1e-12);
        assert!((m.utilization[1] - 0.4).abs() < 1e-12);
        assert_eq!(m.completions, vec![10, 20]);
        assert_eq!(m.resolution, 5.0);
    }

    #[test]
    fn monitoring_db_uses_db_series() {
        let run = dummy_run();
        let m = run.monitoring(TierId::Db).unwrap();
        assert!((m.utilization[0] - 0.1).abs() < 1e-12);
        assert_eq!(m.completions, vec![12, 18]);
    }

    #[test]
    fn incompatible_resolutions_rejected() {
        let mut run = dummy_run();
        run.count_resolution = 2.5;
        assert!(run.monitoring(TierId::Front).is_err());
    }

    #[test]
    fn mean_utilization_averages() {
        let run = dummy_run();
        assert!((run.mean_utilization(TierId::Db) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn two_tier_run_has_no_web_monitoring() {
        let run = dummy_run();
        assert!(run.monitoring(TierId::Web).is_err());
        assert_eq!(run.mean_utilization(TierId::Web), 0.0);
    }

    #[test]
    fn tandem_monitoring_orders_tiers_by_request_flow() {
        let run = dummy_run();
        assert_eq!(run.tandem_tiers(), vec![TierId::Front, TierId::Db]);
        let series = run.tandem_monitoring().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].completions, vec![10, 20]);
        assert_eq!(series[1].completions, vec![12, 18]);

        let mut three = dummy_run();
        three.web_util = vec![0.3; 10];
        three.web_completions = vec![7, 9];
        assert_eq!(
            three.tandem_tiers(),
            vec![TierId::Web, TierId::Front, TierId::Db]
        );
        let series = three.tandem_monitoring().unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].completions, vec![7, 9]);
    }

    #[test]
    fn web_series_rebins_like_the_others() {
        let mut run = dummy_run();
        run.web_util = vec![0.3; 10];
        run.web_completions = vec![7, 9];
        let m = run.monitoring(TierId::Web).unwrap();
        assert!((m.utilization[0] - 0.3).abs() < 1e-12);
        assert_eq!(m.completions, vec![7, 9]);
    }
}
