//! The three-tier discrete-event testbed (the paper's Figure 3, simulated).
//!
//! Emulated browsers (EBs) cycle through think → transaction → think. A
//! transaction of type `T` interleaves `q + 1` front-server CPU slices with
//! `q` synchronous database queries (`q` drawn from `T`'s query range), all
//! on processor-sharing servers — the "cascading effect" of Section 3.3 that
//! breaks a transaction's service time into front and database parts. Best
//! Sellers arrivals can trigger contended episodes at the shared database
//! resource ([`crate::contention`]), which is the injected cause of service
//! burstiness; everything downstream (utilization spikes, queue bursts,
//! bottleneck switch) is emergent.

// BTreeMap, not HashMap: in-flight jobs are keyed by sequential id; an
// ordered map keeps any future iteration over them deterministic by
// construction (burstcap-lint `unordered-iter` discipline).
use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use burstcap_map::ph::Ph2;
use burstcap_sim::engine::EventQueue;
use burstcap_sim::measure::{BusyRecorder, CountRecorder, QueueLengthRecorder, ResponseTally};
use burstcap_sim::seeds;
use burstcap_sim::station::PsServer;

use crate::contention::{ContentionConfig, SharedResource};
use crate::mix::Mix;
use crate::monitor::TestbedRun;
use crate::transactions::TxType;
use crate::TpcwError;

/// Tier layout of the emulated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Topology {
    /// The paper's two-tier layout: a combined web+application front
    /// server and a database server.
    #[default]
    TwoTier,
    /// Three tiers: a dedicated web (HTTP) server in front of the
    /// application server and the database. Every transaction passes the
    /// web tier once before its application/database phase — the scenario
    /// that exercises the N-station model end to end.
    ThreeTier {
        /// Mean web-server demand per transaction (seconds).
        web_demand: f64,
        /// SCV of the per-transaction web work (>= 1/2).
        web_scv: f64,
    },
}

impl Topology {
    /// A three-tier layout with a light HTTP tier: 2 ms mean demand at
    /// mild variability — small against the application/database demands,
    /// like a static-content server in front of a TPC-W deployment.
    pub fn three_tier_default() -> Self {
        Topology::ThreeTier {
            web_demand: 0.002,
            web_scv: 1.2,
        }
    }
}

/// Configuration of one testbed experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Transaction mix.
    pub mix: Mix,
    /// Tier layout (two-tier by default; see [`Topology`]).
    pub topology: Topology,
    /// Number of emulated browsers (constant through the run, per TPC-W).
    pub ebs: usize,
    /// Mean exponential think time (the paper uses `Z = 0.5 s` for model
    /// validation and `Z = 7 s` for fine-granularity trace collection).
    pub think_time: f64,
    /// Simulated run length in seconds.
    pub duration: f64,
    /// Warm-up seconds trimmed from the head of every series.
    pub warmup: f64,
    /// Cool-down seconds trimmed from the tail.
    pub cooldown: f64,
    /// RNG seed (runs are fully deterministic per seed).
    pub seed: u64,
    /// Shared-resource contention model.
    pub contention: ContentionConfig,
    /// SCV of per-slice front-server work (mild variability).
    pub fs_scv: f64,
    /// SCV of per-query database work (uncontended).
    pub db_scv: f64,
    /// Fine (sar-like) monitoring window, seconds.
    pub util_resolution: f64,
    /// Coarse (Diagnostics-like) completion-count window, seconds.
    pub count_resolution: f64,
}

impl TestbedConfig {
    /// A configuration mirroring the paper's measurement setup: `Z = 0.5 s`,
    /// 1 s utilization sampling, 5 s completion counting, 10 minutes of
    /// simulated time with 30 s trims.
    pub fn new(mix: Mix, ebs: usize) -> Self {
        TestbedConfig {
            mix,
            topology: Topology::TwoTier,
            ebs,
            think_time: 0.5,
            duration: 600.0,
            warmup: 30.0,
            cooldown: 30.0,
            seed: 0,
            contention: ContentionConfig::default(),
            fs_scv: 1.4,
            db_scv: 2.2,
            util_resolution: 1.0,
            count_resolution: 5.0,
        }
    }

    /// Set the tier layout.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Set the think time.
    pub fn think_time(mut self, z: f64) -> Self {
        self.think_time = z;
        self
    }

    /// Set the run duration (seconds).
    pub fn duration(mut self, seconds: f64) -> Self {
        self.duration = seconds;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the contention model.
    pub fn contention(mut self, contention: ContentionConfig) -> Self {
        self.contention = contention;
        self
    }

    /// Validate the configuration.
    ///
    /// # Errors
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), TpcwError> {
        if self.ebs == 0 {
            return Err(TpcwError::InvalidParameter {
                name: "ebs",
                reason: "need at least one emulated browser".into(),
            });
        }
        for (name, v) in [
            ("think_time", self.think_time),
            ("duration", self.duration),
            ("util_resolution", self.util_resolution),
            ("count_resolution", self.count_resolution),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(TpcwError::InvalidParameter {
                    name: match name {
                        "think_time" => "think_time",
                        "duration" => "duration",
                        "util_resolution" => "util_resolution",
                        _ => "count_resolution",
                    },
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }
        if self.warmup < 0.0 || self.cooldown < 0.0 {
            return Err(TpcwError::InvalidParameter {
                name: "warmup",
                reason: "trims must be non-negative".into(),
            });
        }
        if self.warmup + self.cooldown >= self.duration {
            return Err(TpcwError::InvalidParameter {
                name: "duration",
                reason: "trims leave no measured interval".into(),
            });
        }
        if self.fs_scv < 0.5 || self.db_scv < 0.5 {
            return Err(TpcwError::InvalidParameter {
                name: "fs_scv",
                reason: "two-phase PH work distributions need scv >= 1/2".into(),
            });
        }
        if let Topology::ThreeTier {
            web_demand,
            web_scv,
        } = self.topology
        {
            if web_demand <= 0.0 || !web_demand.is_finite() {
                return Err(TpcwError::InvalidParameter {
                    name: "web_demand",
                    reason: format!("must be positive and finite, got {web_demand}"),
                });
            }
            if web_scv < 0.5 {
                return Err(TpcwError::InvalidParameter {
                    name: "web_scv",
                    reason: "two-phase PH work distributions need scv >= 1/2".into(),
                });
            }
        }
        self.contention
            .validate()
            .map_err(|reason| TpcwError::InvalidParameter {
                name: "contention",
                reason,
            })
    }
}

// The testbed used to salt user seeds with a private constant
// (`seed ^ TPCW_SEED`) while the other simulators used raw seeds; all
// components now share the documented `burstcap_sim::seeds` derivation.

/// Which stage a transaction is currently in.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    /// Passing the dedicated web tier (three-tier topology only); the
    /// application/database phase with `remaining_queries` DB queries
    /// follows.
    Web { remaining_queries: u32 },
    /// Running a front-server slice; `remaining_queries` DB queries left.
    Front { remaining_queries: u32 },
    /// Waiting on a database query; returns to the front afterwards.
    Db {
        remaining_queries: u32,
        best_seller: bool,
    },
}

#[derive(Debug, Clone)]
struct Job {
    eb: usize,
    tx: TxType,
    started: f64,
    slice_work: f64,
    stage: Stage,
}

/// Calendar events.
#[derive(Debug, Clone, Copy)]
enum Event {
    ThinkEnd { eb: usize },
    WebCompletion { generation: u64 },
    FrontCompletion { generation: u64 },
    DbCompletion { generation: u64 },
}

/// The testbed simulator.
#[derive(Debug, Clone)]
pub struct Testbed {
    config: TestbedConfig,
}

impl Testbed {
    /// Create a testbed from a validated configuration.
    ///
    /// # Errors
    /// Propagates [`TestbedConfig::validate`].
    pub fn new(config: TestbedConfig) -> Result<Self, TpcwError> {
        config.validate()?;
        Ok(Testbed { config })
    }

    /// The configuration in force.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// Run the simulation and return trimmed monitoring output.
    ///
    /// Equivalent to [`Testbed::replication`] with index 0: the RNG stream
    /// is derived from the configured seed via [`burstcap_sim::seeds`], so
    /// a testbed run never shares a stream with another simulator run from
    /// the same user seed.
    ///
    /// # Errors
    /// Fails if the measured interval contains no completed transaction.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (11 reachable
    /// panic sites, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn run(&self) -> Result<TestbedRun, TpcwError> {
        self.replication(0)
    }

    /// Run replication `index` of this configuration: identical in every
    /// parameter, driven by the RNG stream
    /// `seeds::derive(config.seed, TESTBED_STREAM, index)`. Replications
    /// are decorrelated by construction and each is individually
    /// deterministic, so a batch can be executed in any order — serially,
    /// or fanned across threads by `burstcap::experiment::Replications` —
    /// and produce bit-identical per-replication results.
    ///
    /// # Errors
    /// Fails if the measured interval contains no completed transaction.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (11 reachable
    /// panic sites, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn replication(&self, index: u64) -> Result<TestbedRun, TpcwError> {
        let cfg = &self.config;
        let mut rng =
            SmallRng::seed_from_u64(seeds::derive(cfg.seed, seeds::TESTBED_STREAM, index));
        let mut calendar: EventQueue<Event> = EventQueue::new();

        let mut web = PsServer::new();
        let mut front = PsServer::new();
        let mut db = PsServer::new();
        let mut shared = SharedResource::new(cfg.contention);
        let mut jobs: BTreeMap<u64, Job> = BTreeMap::new();
        let mut next_job_id: u64 = 0;
        let three_tier = matches!(cfg.topology, Topology::ThreeTier { .. });

        // Per-EB navigation state.
        let mut eb_type: Vec<TxType> = vec![TxType::Home; cfg.ebs];

        // Monitoring.
        let mut web_busy = BusyRecorder::new(cfg.util_resolution);
        let mut fs_busy = BusyRecorder::new(cfg.util_resolution);
        let mut db_busy = BusyRecorder::new(cfg.util_resolution);
        let mut web_counts = CountRecorder::new(cfg.count_resolution);
        let mut fs_counts = CountRecorder::new(cfg.count_resolution);
        let mut db_counts = CountRecorder::new(cfg.count_resolution);
        let mut web_queue_rec = QueueLengthRecorder::new(cfg.util_resolution);
        let mut fs_queue_rec = QueueLengthRecorder::new(cfg.util_resolution);
        let mut db_queue_rec = QueueLengthRecorder::new(cfg.util_resolution);
        let mut type_rec: Vec<QueueLengthRecorder> = (0..14)
            .map(|_| QueueLengthRecorder::new(cfg.util_resolution))
            .collect();
        let mut in_system = [0u32; 14];
        let mut best_sellers_resident: usize = 0;
        let mut web_busy_since: Option<f64> = None;
        let mut fs_busy_since: Option<f64> = None;
        let mut db_busy_since: Option<f64> = None;
        let mut responses = ResponseTally::new();
        let mut per_type_completions = [0u64; 14];
        let measure_from = cfg.warmup;
        let measure_to = cfg.duration - cfg.cooldown;

        // Work distributions are parameterized per type at run start.
        let fs_slice_dist = |mean: f64| Ph2::from_mean_scv(mean, cfg.fs_scv);
        let db_query_dist = |mean: f64| Ph2::from_mean_scv(mean, cfg.db_scv);
        let web_dist = match cfg.topology {
            Topology::TwoTier => None,
            Topology::ThreeTier {
                web_demand,
                web_scv,
                // burstcap-lint: allow(panic-in-lib) — the SCV was validated by TestbedConfig::validate before the run started
            } => Some(Ph2::from_mean_scv(web_demand, web_scv).expect("validated scv")),
        };

        // All EBs start thinking.
        for eb in 0..cfg.ebs {
            let t = exp(&mut rng, cfg.think_time);
            calendar.schedule(t, Event::ThinkEnd { eb });
        }

        while let Some((now, event)) = calendar.pop() {
            if now >= cfg.duration {
                break;
            }
            match event {
                Event::ThinkEnd { eb } => {
                    // Navigate the CBMG and assemble the transaction plan.
                    let tx = cfg.mix.next_transaction(eb_type[eb], &mut rng);
                    eb_type[eb] = tx;
                    let (q_lo, q_hi) = tx.db_query_range();
                    let queries = if q_lo == q_hi {
                        q_lo
                    } else {
                        rng.random_range(q_lo..=q_hi)
                    };
                    let total_fs = fs_slice_dist(tx.front_demand())
                        // burstcap-lint: allow(panic-in-lib) — the SCV was validated by TestbedConfig::validate before the run started
                        .expect("validated scv")
                        .sample(&mut rng);
                    let slice_work = total_fs / (queries + 1) as f64;

                    let id = next_job_id;
                    next_job_id += 1;
                    let stage = if three_tier {
                        Stage::Web {
                            remaining_queries: queries,
                        }
                    } else {
                        Stage::Front {
                            remaining_queries: queries,
                        }
                    };
                    jobs.insert(
                        id,
                        Job {
                            eb,
                            tx,
                            started: now,
                            slice_work,
                            stage,
                        },
                    );
                    in_system[tx.index()] += 1;
                    type_rec[tx.index()].update(now, in_system[tx.index()] as f64);

                    if let Some(dist) = &web_dist {
                        // Three tiers: the request passes the web server
                        // before its application/database phase.
                        let web_work = dist.sample(&mut rng);
                        if web.is_empty() {
                            web_busy_since = Some(now);
                        }
                        web.arrive(now, id, web_work);
                        web_queue_rec.update(now, web.len() as f64);
                        schedule_completion(&mut calendar, &web, now, Server::Web);
                    } else {
                        if front.is_empty() {
                            fs_busy_since = Some(now);
                        }
                        front.arrive(now, id, slice_work);
                        fs_queue_rec.update(now, front.len() as f64);
                        schedule_completion(&mut calendar, &front, now, Server::Front);
                    }
                }
                Event::WebCompletion { generation } => {
                    if generation != web.generation() || web.is_empty() {
                        continue;
                    }
                    let done = web.complete(now);
                    web_queue_rec.update(now, web.len() as f64);
                    if web.is_empty() {
                        if let Some(since) = web_busy_since.take() {
                            web_busy.add_busy(since, now);
                        }
                    } else {
                        schedule_completion(&mut calendar, &web, now, Server::Web);
                    }
                    web_counts.record(now);

                    // burstcap-lint: allow(panic-in-lib) — every completion id was inserted into the job table at arrival and lives until transaction end
                    let job = jobs.get_mut(&done.id).expect("job metadata exists");
                    let Stage::Web { remaining_queries } = job.stage else {
                        unreachable!("web completion for a job not at the web tier");
                    };
                    // Hand the request to the application server.
                    job.stage = Stage::Front { remaining_queries };
                    let slice = job.slice_work;
                    if front.is_empty() {
                        fs_busy_since = Some(now);
                    }
                    front.arrive(now, done.id, slice);
                    fs_queue_rec.update(now, front.len() as f64);
                    schedule_completion(&mut calendar, &front, now, Server::Front);
                }
                Event::FrontCompletion { generation } => {
                    if generation != front.generation() || front.is_empty() {
                        continue;
                    }
                    let done = front.complete(now);
                    fs_queue_rec.update(now, front.len() as f64);
                    if front.is_empty() {
                        if let Some(since) = fs_busy_since.take() {
                            fs_busy.add_busy(since, now);
                        }
                    } else {
                        schedule_completion(&mut calendar, &front, now, Server::Front);
                    }

                    // burstcap-lint: allow(panic-in-lib) — every completion id was inserted into the job table at arrival and lives until transaction end
                    let job = jobs.get_mut(&done.id).expect("job metadata exists");
                    let Stage::Front { remaining_queries } = job.stage else {
                        unreachable!("front completion for a job not at the front tier");
                    };
                    if remaining_queries > 0 {
                        // Issue the next database query.
                        let is_shared = job.tx.uses_shared_table();
                        let is_bs = job.tx == TxType::BestSellers;
                        shared.poll(now, &mut rng);
                        if is_bs {
                            shared.on_best_sellers_arrival(now, best_sellers_resident, &mut rng);
                        }
                        let mult = if is_shared {
                            shared.multiplier(now)
                        } else {
                            1.0
                        };
                        let work = db_query_dist(job.tx.db_query_demand())
                            // burstcap-lint: allow(panic-in-lib) — the SCV was validated by TestbedConfig::validate before the run started
                            .expect("validated scv")
                            .sample(&mut rng)
                            * mult;
                        job.stage = Stage::Db {
                            remaining_queries: remaining_queries - 1,
                            best_seller: is_bs,
                        };
                        if is_bs {
                            best_sellers_resident += 1;
                        }
                        if db.is_empty() {
                            db_busy_since = Some(now);
                        }
                        db.arrive(now, done.id, work);
                        db_queue_rec.update(now, db.len() as f64);
                        schedule_completion(&mut calendar, &db, now, Server::Db);
                    } else {
                        // Transaction complete.
                        // burstcap-lint: allow(panic-in-lib) — every completion id was inserted into the job table at arrival and lives until transaction end
                        let job = jobs.remove(&done.id).expect("job metadata exists");
                        in_system[job.tx.index()] -= 1;
                        type_rec[job.tx.index()].update(now, in_system[job.tx.index()] as f64);
                        if now >= measure_from && now < measure_to {
                            responses.record(now - job.started);
                            per_type_completions[job.tx.index()] += 1;
                        }
                        fs_counts.record(now);
                        let t = now + exp(&mut rng, cfg.think_time);
                        calendar.schedule(t, Event::ThinkEnd { eb: job.eb });
                    }
                }
                Event::DbCompletion { generation } => {
                    if generation != db.generation() || db.is_empty() {
                        continue;
                    }
                    let done = db.complete(now);
                    db_queue_rec.update(now, db.len() as f64);
                    if db.is_empty() {
                        if let Some(since) = db_busy_since.take() {
                            db_busy.add_busy(since, now);
                        }
                    } else {
                        schedule_completion(&mut calendar, &db, now, Server::Db);
                    }

                    // burstcap-lint: allow(panic-in-lib) — every completion id was inserted into the job table at arrival and lives until transaction end
                    let job = jobs.get_mut(&done.id).expect("job metadata exists");
                    let Stage::Db {
                        remaining_queries,
                        best_seller,
                    } = job.stage
                    else {
                        unreachable!("db completion for a job not at the database");
                    };
                    if best_seller {
                        best_sellers_resident -= 1;
                    }
                    if remaining_queries == 0 {
                        // Last query of the transaction: the database phase
                        // of this request is complete (Diagnostics-style
                        // request count at the DB tier).
                        db_counts.record(now);
                    }
                    // Return to the front server for the next slice.
                    job.stage = Stage::Front { remaining_queries };
                    let slice = job.slice_work;
                    if front.is_empty() {
                        fs_busy_since = Some(now);
                    }
                    front.arrive(now, done.id, slice);
                    fs_queue_rec.update(now, front.len() as f64);
                    schedule_completion(&mut calendar, &front, now, Server::Front);
                }
            }
        }

        // Close accumulators at the horizon.
        if let Some(since) = web_busy_since {
            web_busy.add_busy(since, cfg.duration);
        }
        if let Some(since) = fs_busy_since {
            fs_busy.add_busy(since, cfg.duration);
        }
        if let Some(since) = db_busy_since {
            db_busy.add_busy(since, cfg.duration);
        }
        shared.finish(cfg.duration);

        // Trim all series to the measured interval.
        let fine_skip = (cfg.warmup / cfg.util_resolution).round() as usize;
        let fine_keep = ((measure_to - cfg.warmup) / cfg.util_resolution).floor() as usize;
        let coarse_skip = (cfg.warmup / cfg.count_resolution).round() as usize;
        let coarse_keep = ((measure_to - cfg.warmup) / cfg.count_resolution).floor() as usize;
        let trim_f64 =
            |v: Vec<f64>| -> Vec<f64> { v.into_iter().skip(fine_skip).take(fine_keep).collect() };
        let trim_u64 = |v: Vec<u64>| -> Vec<u64> {
            v.into_iter().skip(coarse_skip).take(coarse_keep).collect()
        };

        let measured_seconds = measure_to - cfg.warmup;
        let completed = responses.count();
        if completed == 0 {
            return Err(TpcwError::NoObservations {
                what: "completed transactions",
            });
        }

        Ok(TestbedRun {
            mix: cfg.mix,
            ebs: cfg.ebs,
            think_time: cfg.think_time,
            measured_seconds,
            web_util: if three_tier {
                trim_f64(web_busy.utilization(cfg.duration))
            } else {
                Vec::new()
            },
            web_completions: if three_tier {
                trim_u64(web_counts.counts(cfg.duration))
            } else {
                Vec::new()
            },
            web_queue: if three_tier {
                trim_f64(web_queue_rec.series(cfg.duration))
            } else {
                Vec::new()
            },
            fs_util: trim_f64(fs_busy.utilization(cfg.duration)),
            db_util: trim_f64(db_busy.utilization(cfg.duration)),
            fs_completions: trim_u64(fs_counts.counts(cfg.duration)),
            db_completions: trim_u64(db_counts.counts(cfg.duration)),
            db_queue: trim_f64(db_queue_rec.series(cfg.duration)),
            fs_queue: trim_f64(fs_queue_rec.series(cfg.duration)),
            type_in_system: type_rec
                .iter_mut()
                .map(|r| trim_f64(r.series(cfg.duration)))
                .collect(),
            per_type_completions,
            throughput: completed as f64 / measured_seconds,
            response_mean: responses.mean().map_err(|_| TpcwError::NoObservations {
                what: "response times",
            })?,
            response_p95: responses
                .percentile(0.95)
                .map_err(|_| TpcwError::NoObservations {
                    what: "response times",
                })?,
            contention_episodes: shared.episodes(),
            contended_seconds: shared.contended_seconds(),
            util_resolution: cfg.util_resolution,
            count_resolution: cfg.count_resolution,
        })
    }

    /// Run `r` independent replications serially and return them in
    /// replication order (index 0 first, identical to [`Testbed::run`]).
    ///
    /// This is the batch entry point: per-replication RNG streams come from
    /// the shared [`burstcap_sim::seeds`] derivation, so the same list —
    /// aggregated in the same order — is what a parallel fan over
    /// [`Testbed::replication`] produces (the cross-replication determinism
    /// contract the experiment harness relies on).
    ///
    /// # Errors
    /// Rejects `r = 0`; propagates the first failing replication.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (11 reachable
    /// panic sites, e.g. `crates/map/src/general.rs:102`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn replications(&self, r: usize) -> Result<Vec<TestbedRun>, TpcwError> {
        if r == 0 {
            return Err(TpcwError::InvalidParameter {
                name: "r",
                reason: "need at least one replication".into(),
            });
        }
        (0..r as u64).map(|i| self.replication(i)).collect()
    }
}

/// Which processor-sharing server a completion event belongs to.
#[derive(Debug, Clone, Copy)]
enum Server {
    Web,
    Front,
    Db,
}

fn schedule_completion(calendar: &mut EventQueue<Event>, server: &PsServer, now: f64, who: Server) {
    if let Some(t) = server.next_completion(now) {
        let generation = server.generation();
        let event = match who {
            Server::Web => Event::WebCompletion { generation },
            Server::Front => Event::FrontCompletion { generation },
            Server::Db => Event::DbCompletion { generation },
        };
        calendar.schedule(t, event);
    }
}

fn exp(rng: &mut SmallRng, mean: f64) -> f64 {
    -(1.0 - rng.random::<f64>()).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::TierId;

    fn quick(mix: Mix, ebs: usize, seed: u64) -> TestbedRun {
        Testbed::new(TestbedConfig::new(mix, ebs).duration(240.0).seed(seed))
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Testbed::new(TestbedConfig::new(Mix::Browsing, 0)).is_err());
        let mut c = TestbedConfig::new(Mix::Browsing, 10);
        c.duration = 10.0;
        c.warmup = 6.0;
        c.cooldown = 6.0;
        assert!(Testbed::new(c).is_err());
        let mut c = TestbedConfig::new(Mix::Browsing, 10);
        c.fs_scv = 0.2;
        assert!(Testbed::new(c).is_err());
    }

    #[test]
    fn light_load_matches_demand_math() {
        // 1 EB: X = 1 / (Z + D_fs + D_db_effective); contention negligible.
        let run = quick(Mix::Ordering, 1, 1);
        let d = Mix::Ordering.mean_front_demand() + Mix::Ordering.mean_db_demand();
        let expected = 1.0 / (0.5 + d);
        assert!(
            (run.throughput - expected).abs() / expected < 0.1,
            "X = {} vs {expected}",
            run.throughput
        );
    }

    #[test]
    fn utilization_law_holds_per_tier() {
        let run = quick(Mix::Shopping, 30, 2);
        // U = X * D with D the per-transaction demand at that tier.
        let u_fs_expected = run.throughput * Mix::Shopping.mean_front_demand();
        let u_fs = run.mean_utilization(TierId::Front);
        assert!(
            (u_fs - u_fs_expected).abs() < 0.05,
            "U_fs {u_fs} vs {u_fs_expected}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = quick(Mix::Browsing, 20, 7);
        let b = quick(Mix::Browsing, 20, 7);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.fs_util, b.fs_util);
        let c = quick(Mix::Browsing, 20, 8);
        assert_ne!(a.throughput, c.throughput);
    }

    #[test]
    fn series_lengths_match_resolutions() {
        let run = quick(Mix::Shopping, 10, 3);
        // 240 s with 30 s trims at each end: 180 fine windows, 36 coarse.
        assert_eq!(run.fs_util.len(), 180);
        assert_eq!(run.db_util.len(), 180);
        assert_eq!(run.fs_completions.len(), 36);
        assert_eq!(run.db_completions.len(), 36);
        assert_eq!(run.type_in_system.len(), 14);
        assert_eq!(run.type_in_system[0].len(), 180);
    }

    #[test]
    fn monitoring_series_usable_by_estimators() {
        let run = quick(Mix::Shopping, 40, 4);
        let m = run.monitoring(TierId::Front).unwrap();
        assert_eq!(m.utilization.len(), m.completions.len());
        let d = burstcap_stats::regression::estimate_demand(
            &m.utilization,
            &m.completions,
            m.resolution,
        )
        .unwrap();
        let expected = Mix::Shopping.mean_front_demand();
        assert!(
            (d.mean_service_time - expected).abs() / expected < 0.25,
            "regressed demand {} vs configured {expected}",
            d.mean_service_time
        );
    }

    #[test]
    fn browsing_contention_fires_under_load() {
        let run = quick(Mix::Browsing, 80, 5);
        assert!(
            run.contention_episodes > 0,
            "browsing at 80 EBs must trigger contention episodes"
        );
    }

    #[test]
    fn ordering_mix_rarely_contends() {
        // Best Sellers is 11% of browsing traffic but only 0.46% of
        // ordering traffic, so the shared resource spends far less time
        // contended under the ordering mix.
        let browsing = quick(Mix::Browsing, 80, 6);
        let ordering = quick(Mix::Ordering, 80, 6);
        assert!(
            ordering.contended_seconds < browsing.contended_seconds / 2.0,
            "ordering {}s vs browsing {}s contended",
            ordering.contended_seconds,
            browsing.contended_seconds
        );
    }

    #[test]
    fn throughput_grows_with_ebs_until_saturation() {
        let x10 = quick(Mix::Ordering, 10, 9).throughput;
        let x40 = quick(Mix::Ordering, 40, 9).throughput;
        assert!(x40 > 1.5 * x10, "x10 = {x10}, x40 = {x40}");
    }

    #[test]
    fn per_type_completions_follow_mix_weights() {
        let run = quick(Mix::Ordering, 20, 10);
        let total: u64 = run.per_type_completions.iter().sum();
        let w = Mix::Ordering.weights();
        // Spot-check the two heaviest-weight types.
        for idx in [3usize, 4] {
            let freq = run.per_type_completions[idx] as f64 / total as f64;
            assert!(
                (freq - w[idx]).abs() < 0.05,
                "type {idx}: freq {freq} vs weight {}",
                w[idx]
            );
        }
    }

    #[test]
    fn response_p95_exceeds_mean() {
        let run = quick(Mix::Browsing, 50, 11);
        assert!(run.response_p95 > run.response_mean);
    }

    #[test]
    fn three_tier_config_validation() {
        let bad_demand = TestbedConfig::new(Mix::Browsing, 10).topology(Topology::ThreeTier {
            web_demand: 0.0,
            web_scv: 1.2,
        });
        assert!(Testbed::new(bad_demand).is_err());
        let bad_scv = TestbedConfig::new(Mix::Browsing, 10).topology(Topology::ThreeTier {
            web_demand: 0.002,
            web_scv: 0.1,
        });
        assert!(Testbed::new(bad_scv).is_err());
        assert!(Testbed::new(
            TestbedConfig::new(Mix::Browsing, 10).topology(Topology::three_tier_default())
        )
        .is_ok());
    }

    #[test]
    fn two_tier_runs_have_no_web_series() {
        let run = quick(Mix::Shopping, 10, 3);
        assert!(run.web_util.is_empty());
        assert!(run.web_completions.is_empty());
        assert!(run.web_queue.is_empty());
        assert!(run.monitoring(TierId::Web).is_err());
    }

    fn quick3(mix: Mix, ebs: usize, seed: u64) -> TestbedRun {
        Testbed::new(
            TestbedConfig::new(mix, ebs)
                .topology(Topology::three_tier_default())
                .duration(240.0)
                .seed(seed),
        )
        .unwrap()
        .run()
        .unwrap()
    }

    #[test]
    fn three_tier_light_load_includes_web_demand() {
        // 1 EB: X = 1 / (Z + D_web + D_fs + D_db_effective).
        let run = quick3(Mix::Ordering, 1, 1);
        let d = 0.002 + Mix::Ordering.mean_front_demand() + Mix::Ordering.mean_db_demand();
        let expected = 1.0 / (0.5 + d);
        assert!(
            (run.throughput - expected).abs() / expected < 0.1,
            "X = {} vs {expected}",
            run.throughput
        );
    }

    #[test]
    fn three_tier_web_monitoring_is_usable() {
        let run = quick3(Mix::Shopping, 40, 4);
        // Same series lengths as the other tiers.
        assert_eq!(run.web_util.len(), run.fs_util.len());
        assert_eq!(run.web_completions.len(), run.fs_completions.len());
        let m = run.monitoring(TierId::Web).unwrap();
        assert_eq!(m.utilization.len(), m.completions.len());
        // Utilization-law regression on the web tier recovers ~2 ms.
        let d = burstcap_stats::regression::estimate_demand(
            &m.utilization,
            &m.completions,
            m.resolution,
        )
        .unwrap();
        assert!(
            (d.mean_service_time - 0.002).abs() / 0.002 < 0.3,
            "regressed web demand {} vs configured 0.002",
            d.mean_service_time
        );
        // The light web tier sits well below the app tier's utilization.
        assert!(run.mean_utilization(TierId::Web) < run.mean_utilization(TierId::Front));
    }

    #[test]
    fn three_tier_is_deterministic_per_seed() {
        let a = quick3(Mix::Browsing, 20, 7);
        let b = quick3(Mix::Browsing, 20, 7);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.web_util, b.web_util);
    }

    #[test]
    fn replications_are_deterministic_and_decorrelated() {
        let tb = Testbed::new(
            TestbedConfig::new(Mix::Ordering, 10)
                .duration(120.0)
                .seed(4),
        )
        .unwrap();
        let batch = tb.replications(3).unwrap();
        assert_eq!(batch.len(), 3);
        // Replication 0 is exactly run().
        let single = tb.run().unwrap();
        assert_eq!(batch[0], single);
        // Distinct replications use distinct streams.
        assert_ne!(batch[0].throughput, batch[1].throughput);
        assert_ne!(batch[1].throughput, batch[2].throughput);
        // Each replication is individually reproducible.
        assert_eq!(batch[2], tb.replication(2).unwrap());
        // Degenerate batch size is rejected.
        assert!(tb.replications(0).is_err());
    }
}
