use std::error::Error;
use std::fmt;

/// Errors produced when configuring or running the testbed simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TpcwError {
    /// A configuration parameter is outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The measurement interval ended with no observations.
    NoObservations {
        /// What was being measured.
        what: &'static str,
    },
}

impl fmt::Display for TpcwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpcwError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            TpcwError::NoObservations { what } => {
                write!(f, "testbed run produced no observations for {what}")
            }
        }
    }
}

impl Error for TpcwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TpcwError::InvalidParameter {
            name: "ebs",
            reason: "zero".into(),
        };
        assert!(e.to_string().contains("ebs"));
    }

    #[test]
    fn error_traits() {
        fn check<T: Error + Send + Sync>() {}
        check::<TpcwError>();
    }
}
