//! A TPC-W multi-tier testbed simulator.
//!
//! The paper's experiments run on a physical three-tier TPC-W deployment
//! (Apache/Tomcat front server + MySQL database, monitored by `sar` and HP
//! Diagnostics). This crate is the workspace's substitute for that hardware:
//! a discrete-event simulator that reproduces the testbed's *observable
//! behaviour* — the coarse monitoring series the paper's methodology
//! consumes, and the burstiness symptoms its Section 3 diagnoses:
//!
//! * [`transactions`] — the 14 TPC-W transaction types (Table 3) with
//!   per-type front-server demands and database query profiles;
//! * [`mix`] — the three standard transaction mixes (browsing, shopping,
//!   ordering) as Customer Behavior Model Graphs;
//! * [`contention`] — the "hidden resource contention" of Section 3.3: Best
//!   Seller and Home transactions share a database resource; concurrent
//!   access triggers contended episodes in which their queries slow down by
//!   a multiplicative factor, producing service burstiness and the
//!   bottleneck-switch phenomenon under the browsing mix;
//! * [`testbed`] — the three-tier discrete-event simulation itself:
//!   emulated browsers with exponential think times navigate the CBMG; each
//!   transaction interleaves front-server CPU slices with synchronous
//!   database queries on processor-sharing servers;
//! * [`monitor`] — `sar`-style utilization samples (1 s), HP
//!   Diagnostics-style completion counts (5 s), queue-length and per-type
//!   in-system series, with warm-up/cool-down trimming.
//!
//! # Example
//!
//! ```no_run
//! use burstcap_tpcw::testbed::{Testbed, TestbedConfig};
//! use burstcap_tpcw::mix::Mix;
//!
//! let config = TestbedConfig::new(Mix::Browsing, 100).duration(600.0);
//! let run = Testbed::new(config)?.run()?;
//! println!("throughput: {:.1} tx/s", run.throughput);
//! # Ok::<(), burstcap_tpcw::TpcwError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bare `.unwrap()` is banned in library targets; burstcap-lint's
// `panic-in-lib` is the lexical twin (it also covers expect/panic!, with
// justification markers), clippy the type-aware backstop. The test target
// compiles with the allow, so unit tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod contention;
mod error;
pub mod mix;
pub mod monitor;
pub mod testbed;
pub mod transactions;

pub use error::TpcwError;
