//! The three standard TPC-W transaction mixes as Customer Behavior Model
//! Graphs.
//!
//! TPC-W defines the browsing mix (95% browsing / 5% ordering), the shopping
//! mix (80/20), and the ordering mix (50/50). Navigation is modeled as a
//! CBMG (the paper's Section 3.1): the next transaction type is drawn from a
//! Markov chain over the 14 types whose stationary distribution equals the
//! mix's prescribed web-interaction percentages. A small persistence term
//! keeps consecutive page views correlated, as real sessions are, without
//! disturbing the stationary mix.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::transactions::{TxClass, TxType, ALL_TYPES};
use crate::TpcwError;

/// The three standard TPC-W mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mix {
    /// 95% browsing, 5% ordering (WIPSb) — the bursty, bottleneck-switching
    /// workload of the paper.
    Browsing,
    /// 80% browsing, 20% ordering (WIPS).
    Shopping,
    /// 50% browsing, 50% ordering (WIPSo).
    Ordering,
}

/// Session persistence: probability mass kept on the current transaction
/// type when drawing the next one.
const PERSISTENCE: f64 = 0.15;

impl Mix {
    /// All three mixes in presentation order.
    pub const ALL: [Mix; 3] = [Mix::Browsing, Mix::Shopping, Mix::Ordering];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Mix::Browsing => "browsing",
            Mix::Shopping => "shopping",
            Mix::Ordering => "ordering",
        }
    }

    /// Stationary web-interaction percentages over [`ALL_TYPES`]
    /// (TPC-W specification values; sums to 1).
    pub fn weights(self) -> [f64; 14] {
        match self {
            Mix::Browsing => [
                0.2900, 0.1100, 0.1100, 0.2100, 0.1200, 0.1100, // browsing classes
                0.0200, 0.0082, 0.0075, 0.0069, 0.0030, 0.0025, 0.0010, 0.0009,
            ],
            Mix::Shopping => [
                0.1600, 0.0500, 0.0500, 0.1700, 0.2000, 0.1700, //
                0.1160, 0.0300, 0.0260, 0.0120, 0.0075, 0.0066, 0.0010, 0.0009,
            ],
            Mix::Ordering => [
                0.0912, 0.0046, 0.0046, 0.1235, 0.1453, 0.1308, //
                0.1353, 0.1286, 0.1273, 0.1018, 0.0025, 0.0022, 0.0012, 0.0011,
            ],
        }
    }

    /// Fraction of transactions in the browsing class (0.95 / 0.80 / 0.50).
    pub fn browsing_share(self) -> f64 {
        self.weights()
            .iter()
            .zip(ALL_TYPES.iter())
            .filter(|(_, t)| t.class() == TxClass::Browsing)
            .map(|(w, _)| w)
            .sum()
    }

    /// Draw the next transaction type given the current one, following the
    /// CBMG `P = persistence * I + (1 - persistence) * stationary`.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/tpcw/src/mix.rs:109`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn next_transaction<R: Rng + ?Sized>(self, current: TxType, rng: &mut R) -> TxType {
        if rng.random::<f64>() < PERSISTENCE {
            return current;
        }
        self.sample_stationary(rng)
    }

    /// Draw a transaction type from the stationary mix (used for the first
    /// transaction of a session, which TPC-W starts at Home; we expose both).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/tpcw/src/mix.rs:97`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn sample_stationary<R: Rng + ?Sized>(self, rng: &mut R) -> TxType {
        let w = self.weights();
        let mut u = rng.random::<f64>();
        for (i, &weight) in w.iter().enumerate() {
            if u < weight {
                return ALL_TYPES[i];
            }
            u -= weight;
        }
        // burstcap-lint: allow(panic-in-lib) — ALL_TYPES is a non-empty const table
        *ALL_TYPES.last().expect("non-empty")
    }

    /// Mix-weighted mean front-server demand per transaction (seconds).
    pub fn mean_front_demand(self) -> f64 {
        self.weights()
            .iter()
            .zip(ALL_TYPES.iter())
            .map(|(w, t)| w * t.front_demand())
            .sum()
    }

    /// Mix-weighted mean database demand per transaction (seconds,
    /// uncontended).
    pub fn mean_db_demand(self) -> f64 {
        self.weights()
            .iter()
            .zip(ALL_TYPES.iter())
            .map(|(w, t)| w * t.db_demand())
            .sum()
    }

    /// Parse from a name (case-insensitive).
    ///
    /// # Errors
    /// Rejects unknown names.
    pub fn parse(name: &str) -> Result<Self, TpcwError> {
        match name.to_ascii_lowercase().as_str() {
            "browsing" => Ok(Mix::Browsing),
            "shopping" => Ok(Mix::Shopping),
            "ordering" => Ok(Mix::Ordering),
            other => Err(TpcwError::InvalidParameter {
                name: "mix",
                reason: format!("unknown mix `{other}` (expected browsing/shopping/ordering)"),
            }),
        }
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_one() {
        for mix in Mix::ALL {
            let s: f64 = mix.weights().iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{mix}: {s}");
        }
    }

    #[test]
    fn class_shares_match_spec() {
        assert!((Mix::Browsing.browsing_share() - 0.95).abs() < 1e-9);
        assert!((Mix::Shopping.browsing_share() - 0.80).abs() < 1e-9);
        assert!((Mix::Ordering.browsing_share() - 0.50).abs() < 1e-9);
    }

    #[test]
    fn best_sellers_is_11_percent_of_browsing() {
        // Paper, Section 3.3: "in the browsing mix only 11% of requests
        // belongs to the Best Seller transaction type".
        let w = Mix::Browsing.weights();
        assert!((w[TxType::BestSellers.index()] - 0.11).abs() < 1e-9);
    }

    #[test]
    fn cbmg_stationary_matches_weights() {
        // Long navigation from the chain must reproduce the weights.
        let mut rng = SmallRng::seed_from_u64(5);
        let mix = Mix::Shopping;
        let mut counts = [0usize; 14];
        let mut current = TxType::Home;
        let n = 600_000;
        for _ in 0..n {
            current = mix.next_transaction(current, &mut rng);
            counts[current.index()] += 1;
        }
        let w = mix.weights();
        for i in 0..14 {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - w[i]).abs() < 0.01,
                "type {i}: freq {freq} vs weight {}",
                w[i]
            );
        }
    }

    #[test]
    fn persistence_correlates_consecutive_types() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mix = Mix::Browsing;
        let mut repeats = 0;
        let mut current = TxType::Home;
        let n = 100_000;
        for _ in 0..n {
            let next = mix.next_transaction(current, &mut rng);
            if next == current {
                repeats += 1;
            }
            current = next;
        }
        // Repeat probability exceeds the iid baseline thanks to persistence.
        let freq = repeats as f64 / n as f64;
        let iid_baseline: f64 = mix.weights().iter().map(|w| w * w).sum();
        assert!(
            freq > iid_baseline + 0.05,
            "freq {freq} vs baseline {iid_baseline}"
        );
    }

    #[test]
    fn mean_demands_give_expected_saturation_order() {
        // Browsing must be the most DB-heavy mix; ordering the lightest on
        // the front server — this drives the paper's saturation ordering.
        let b_db = Mix::Browsing.mean_db_demand();
        let s_db = Mix::Shopping.mean_db_demand();
        let o_db = Mix::Ordering.mean_db_demand();
        assert!(
            b_db > s_db && s_db > o_db,
            "db demands: {b_db}, {s_db}, {o_db}"
        );
        let b_fs = Mix::Browsing.mean_front_demand();
        let o_fs = Mix::Ordering.mean_front_demand();
        assert!(
            o_fs < b_fs,
            "ordering should be lighter on the front server"
        );
    }

    #[test]
    fn parse_roundtrip() {
        for mix in Mix::ALL {
            assert_eq!(Mix::parse(mix.name()).unwrap(), mix);
        }
        assert_eq!(Mix::parse("BROWSING").unwrap(), Mix::Browsing);
        assert!(Mix::parse("bogus").is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Mix::Browsing.to_string(), "browsing");
    }
}
