//! Deterministic RNG stream derivation for independent replications.
//!
//! Every stochastic component in the workspace seeds its generator through
//! this crate, so that:
//!
//! * **cross-simulator runs are decorrelated** — `MTrace1`, the closed MAP
//!   network, and the TPC-W testbed invoked with the *same* user seed no
//!   longer consume the identical xoshiro stream (they used to, except for
//!   the testbed's ad-hoc `seed ^ TPCW_SEED` salting);
//! * **replications are independent by construction** — replication `i` of
//!   component `c` under master seed `s` gets the stream
//!   `derive(s, c, i)`, and the triple fully determines the stream, so a
//!   replication's result never depends on which worker thread ran it or
//!   how many replications run alongside it.
//!
//! This crate is deliberately dependency-free and sits at the bottom of the
//! workspace graph: `burstcap-map`'s trace generators need the same
//! derivation scheme as the simulators in `burstcap-sim` (which depends on
//! `burstcap-map`), so the scheme cannot live in either of them.
//! `burstcap_sim::seeds` re-exports everything here, and existing call
//! sites keep using that path.
//!
//! # Derivation scheme
//!
//! [`derive()`] absorbs the three inputs one at a time through the SplitMix64
//! finalizer (the same mixer `SmallRng::seed_from_u64` uses to expand its
//! state, and the stream-split function of Java's `SplittableRandom`):
//!
//! ```text
//! z0 = mix(master + GOLDEN)
//! z1 = mix(z0 ^ (stream      * GOLDEN) ^ STREAM_PHASE)
//! z2 = mix(z1 ^ (replication * GOLDEN) ^ REPLICATION_PHASE)
//! ```
//!
//! `mix` is a bijection on `u64` and each input is diffused by a
//! golden-ratio multiply before entering it, so flipping any single bit of
//! any input avalanches through the final seed; the two phase constants
//! keep the stream and replication absorption rounds distinct even when
//! `stream == replication`. Collisions between *different* triples are
//! possible in principle (three words fold into one) but require inverting
//! two finalizer rounds — nothing a seed sweep or replication grid will
//! ever produce by accident, and the unit tests scan a large grid to
//! prove the practical disjointness.

/// Golden-ratio increment of the SplitMix64 generator.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Domain separator for the stream-absorption round.
const STREAM_PHASE: u64 = 0xD1B5_4A32_D192_ED03;
/// Domain separator for the replication-absorption round.
const REPLICATION_PHASE: u64 = 0x8CB9_2BA7_2F3D_8DD7;

/// Stream tag of `burstcap_sim::queues::MTrace1`.
pub const MTRACE1_STREAM: u64 = 0x4D54_5241_4345_3153; // "MTRACE1S"
/// Stream tag of `burstcap_sim::queues::ClosedMapNetwork`.
pub const CLOSED_MAP_NETWORK_STREAM: u64 = 0x434C_4F53_4D41_5051; // "CLOSMAPQ"
/// Stream tag of the TPC-W testbed simulator (`burstcap_tpcw`).
pub const TESTBED_STREAM: u64 = 0x5450_4357_5445_5354; // "TPCWTEST"
/// Stream tag for user experiments with no dedicated component.
pub const EXPERIMENT_STREAM: u64 = 0x4558_5045_5249_4D54; // "EXPERIMT"
/// Stream tag of `burstcap_map::trace::hyperexp_trace` sample draws.
pub const TRACE_DRAW_STREAM: u64 = 0x5452_4143_4452_4157; // "TRACDRAW"
/// Stream tag of `burstcap_map::trace::impose_burstiness` rearrangement
/// draws (replaces the ad-hoc `seed ^ 0xB17B17` salting that separated the
/// draw and shuffle streams of one trace — the same bug class as the old
/// testbed xor-salting).
pub const TRACE_SHUFFLE_STREAM: u64 = 0x5452_4143_5348_4646; // "TRACSHFF"

/// The SplitMix64 finalizer: a fast, invertible 64-bit mixer.
#[inline]
#[must_use]
pub const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the RNG seed for replication `replication` of component `stream`
/// under `master` (see the crate docs for the exact scheme).
///
/// # Example
/// ```
/// use burstcap_seeds as seeds;
///
/// // Same master seed, different components: disjoint streams.
/// let a = seeds::derive(7, seeds::MTRACE1_STREAM, 0);
/// let b = seeds::derive(7, seeds::CLOSED_MAP_NETWORK_STREAM, 0);
/// assert_ne!(a, b);
/// // Same component, consecutive replications: disjoint streams.
/// assert_ne!(a, seeds::derive(7, seeds::MTRACE1_STREAM, 1));
/// // Fully deterministic.
/// assert_eq!(a, seeds::derive(7, seeds::MTRACE1_STREAM, 0));
/// ```
#[must_use]
pub const fn derive(master: u64, stream: u64, replication: u64) -> u64 {
    let z = mix(master.wrapping_add(GOLDEN));
    let z = mix(z ^ stream.wrapping_mul(GOLDEN) ^ STREAM_PHASE);
    mix(z ^ replication.wrapping_mul(GOLDEN) ^ REPLICATION_PHASE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive(42, MTRACE1_STREAM, 3), derive(42, MTRACE1_STREAM, 3));
    }

    #[test]
    fn grid_of_triples_has_no_collisions() {
        // 16 masters x 6 streams x 64 replications = 6144 derived seeds;
        // any collision here would correlate "independent" experiments.
        let streams = [
            MTRACE1_STREAM,
            CLOSED_MAP_NETWORK_STREAM,
            TESTBED_STREAM,
            EXPERIMENT_STREAM,
            TRACE_DRAW_STREAM,
            TRACE_SHUFFLE_STREAM,
        ];
        let mut seen = HashSet::new();
        for master in 0..16u64 {
            for &stream in &streams {
                for rep in 0..64u64 {
                    assert!(
                        seen.insert(derive(master, stream, rep)),
                        "collision at master={master}, stream={stream:#x}, rep={rep}"
                    );
                }
            }
        }
    }

    #[test]
    fn streams_are_statistically_disjoint() {
        // The first draws of two streams derived from the same master must
        // not coincide anywhere in a long prefix — the bug this crate
        // fixes was exactly two simulators consuming one stream.
        let mut a = SmallRng::seed_from_u64(derive(5, MTRACE1_STREAM, 0));
        let mut b = SmallRng::seed_from_u64(derive(5, CLOSED_MAP_NETWORK_STREAM, 0));
        let draws_a: Vec<u64> = (0..256).map(|_| a.random::<u64>()).collect();
        let draws_b: Vec<u64> = (0..256).map(|_| b.random::<u64>()).collect();
        assert_ne!(draws_a, draws_b);
        let set: HashSet<u64> = draws_a.iter().copied().collect();
        let overlap = draws_b.iter().filter(|x| set.contains(x)).count();
        assert_eq!(overlap, 0, "streams share draws");
    }

    #[test]
    fn small_input_changes_avalanche() {
        // Adjacent masters and adjacent replications must flip about half
        // the output bits on average.
        let mut total = 0u32;
        let n = 256;
        for i in 0..n {
            let d = derive(i, TESTBED_STREAM, 0) ^ derive(i + 1, TESTBED_STREAM, 0);
            total += d.count_ones();
        }
        let avg = f64::from(total) / n as f64;
        assert!(
            (24.0..=40.0).contains(&avg),
            "avalanche average {avg} bits, expected near 32"
        );
    }
}
