//! One function per table/figure of the paper: each returns the rendered
//! experiment output as a `String` so the per-figure binaries and the
//! `run_all` regenerator share a single implementation.

use std::fmt::Write as _;

use burstcap::report::AccuracyReport;
use burstcap_map::trace::{balanced_p_small, hyperexp_trace, impose_burstiness, BurstProfile};
use burstcap_sim::queues::MTrace1;
use burstcap_stats::bottleneck::BottleneckDetector;
use burstcap_stats::descriptive::scv;
use burstcap_stats::dispersion::index_of_dispersion_counting;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TierId;
use burstcap_tpcw::transactions::{TxType, ALL_TYPES};

use crate::experiments::{measured_sweep, planners_from_estimation_run, ESTIMATION_DURATION};
use crate::{BASE_SEED, EB_SWEEP};

/// The four burstiness profiles of Figure 1 / Table 1, in paper order. The
/// modulation persistence is calibrated so the analytic mixed-phase family
/// hits the paper's intermediate targets (I = 22.3 and 92.6).
fn figure1_profiles() -> Vec<(&'static str, BurstProfile)> {
    let p_small = balanced_p_small(3.0).expect("scv 3 > 1");
    let g_b =
        burstcap_map::trace::gamma_for_target_dispersion(1.0, 3.0, 22.3).expect("feasible target");
    let g_c =
        burstcap_map::trace::gamma_for_target_dispersion(1.0, 3.0, 92.6).expect("feasible target");
    vec![
        ("Fig. 1(a) iid", BurstProfile::Iid),
        (
            "Fig. 1(b) modulated I~22",
            BurstProfile::Modulated {
                p_small,
                gamma: g_b,
            },
        ),
        (
            "Fig. 1(c) modulated I~93",
            BurstProfile::Modulated {
                p_small,
                gamma: g_c,
            },
        ),
        ("Fig. 1(d) sorted", BurstProfile::Sorted),
    ]
}

/// **Figure 1** — four traces with identical hyperexponential marginals
/// (mean 1, SCV 3) and increasing burstiness; paper reports
/// `I = 3.0 / 22.3 / 92.6 / 488.7`.
pub fn fig01() -> String {
    let mut out = String::new();
    let base = hyperexp_trace(20_000, 1.0, 3.0, BASE_SEED).expect("valid marginal");
    writeln!(
        out,
        "Figure 1: identical marginal (mean 1, SCV 3), growing burstiness"
    )
    .unwrap();
    writeln!(
        out,
        "{:<30} {:>10} {:>10} {:>10}",
        "trace", "mean", "SCV", "I"
    )
    .unwrap();
    for (name, profile) in figure1_profiles() {
        let trace = impose_burstiness(&base, profile, BASE_SEED).expect("valid profile");
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        let c2 = scv(&trace).expect("non-degenerate");
        let i = index_of_dispersion_counting(&trace, 30.0, 0.2)
            .expect("long enough")
            .index_of_dispersion();
        writeln!(out, "{name:<30} {mean:>10.3} {c2:>10.2} {i:>10.1}").unwrap();
    }
    out
}

/// **Table 1** — M/Trace/1 response times for the Figure 1 traces at
/// utilizations 0.5 and 0.8. Paper: mean response grows ~40x and p95 ~80x
/// from profile (a) to (d) at rho = 0.5.
pub fn table1() -> String {
    let mut out = String::new();
    let base = hyperexp_trace(20_000, 1.0, 3.0, BASE_SEED).expect("valid marginal");
    writeln!(
        out,
        "Table 1: M/Trace/1 response times (service mean 1, SCV 3)\n\
         {:<30} {:>11} {:>11} {:>11} {:>11} {:>8}",
        "workload", "mean@.5", "p95@.5", "mean@.8", "p95@.8", "I"
    )
    .unwrap();
    for (name, profile) in figure1_profiles() {
        let trace = impose_burstiness(&base, profile, BASE_SEED).expect("valid profile");
        let i = index_of_dispersion_counting(&trace, 30.0, 0.2)
            .expect("long enough")
            .index_of_dispersion();
        let r50 = MTrace1::new(0.5, trace.clone())
            .expect("valid queue")
            .run(BASE_SEED + 1)
            .expect("queue run");
        let r80 = MTrace1::new(0.8, trace)
            .expect("valid queue")
            .run(BASE_SEED + 2)
            .expect("run");
        writeln!(
            out,
            "{name:<30} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {i:>8.1}",
            r50.response_time_mean(),
            r50.response_time_p95(),
            r80.response_time_mean(),
            r80.response_time_p95()
        )
        .unwrap();
    }
    out
}

/// **Tables 2 and 3** — the environment description: simulated testbed
/// configuration and the 14 TPC-W transactions with their classes and
/// resource profiles.
pub fn environment() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 2 (substituted): simulated testbed configuration"
    )
    .unwrap();
    writeln!(
        out,
        "  clients:  emulated browsers, exponential think time (Z = 0.5 s default)\n\
        \x20 front:    1 CPU, processor sharing (Apache/Tomcat stand-in)\n\
        \x20 database: 1 CPU, processor sharing + shared-resource contention (MySQL stand-in)\n\
        \x20 monitors: utilization @ 1 s (sar-like), completions @ 5 s (Diagnostics-like)"
    )
    .unwrap();
    writeln!(out, "\nTable 3: the 14 TPC-W transactions").unwrap();
    writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>10} {:>12} {:>8}",
        "transaction", "class", "S_front(ms)", "queries", "S_query(ms)", "shared"
    )
    .unwrap();
    for t in ALL_TYPES {
        let (lo, hi) = t.db_query_range();
        writeln!(
            out,
            "{:<24} {:>10} {:>12.1} {:>10} {:>12.1} {:>8}",
            t.name(),
            format!("{:?}", t.class()),
            t.front_demand() * 1e3,
            if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            },
            t.db_query_demand() * 1e3,
            if t.uses_shared_table() { "yes" } else { "no" }
        )
        .unwrap();
    }
    out
}

/// **Figure 4** — throughput, front utilization, and database utilization
/// against the number of EBs for the three mixes. Paper: saturation at
/// ~75 / 100 / 150 EBs; browsing's mean utilizations nearly equal.
pub fn fig04(duration: f64) -> String {
    let mut out = String::new();
    for mix in Mix::ALL {
        writeln!(out, "Figure 4 ({mix} mix): TPUT and utilizations vs EBs").unwrap();
        writeln!(
            out,
            "{:>6} {:>10} {:>8} {:>8}",
            "EBs", "TPUT", "U_fs", "U_db"
        )
        .unwrap();
        for (k, &ebs) in EB_SWEEP.iter().enumerate() {
            let run =
                crate::run_testbed(mix, ebs, duration, BASE_SEED + k as u64).expect("testbed run");
            writeln!(
                out,
                "{ebs:>6} {:>10.1} {:>7.1}% {:>7.1}%",
                run.throughput,
                run.mean_utilization(TierId::Front) * 100.0,
                run.mean_utilization(TierId::Db) * 100.0
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// **Figure 5** — per-second utilization of both tiers over a 300 s window
/// at 100 EBs, plus the quantitative bottleneck-switch verdicts. Paper: the
/// browsing mix alternates the bottleneck; shopping and ordering do not.
pub fn fig05(duration: f64) -> String {
    let mut out = String::new();
    for (mix, ebs) in Mix::ALL.iter().flat_map(|&m| [(m, 100usize), (m, 150)]) {
        let run = crate::run_testbed(mix, ebs, duration, BASE_SEED + 31).expect("testbed run");
        let report = BottleneckDetector::new()
            .analyze(&run.fs_util, &run.db_util)
            .expect("paired series");
        writeln!(
            out,
            "Figure 5 ({mix} mix, {ebs} EBs): dominance fractions over {} windows",
            run.fs_util.len()
        )
        .unwrap();
        writeln!(
            out,
            "  front-dominant {:>5.1}%   db-dominant {:>5.1}%   neither {:>5.1}%   flips {}",
            report.fraction_first * 100.0,
            report.fraction_second * 100.0,
            report.fraction_neither * 100.0,
            report.switches
        )
        .unwrap();
        writeln!(
            out,
            "  verdict: {}",
            if report.has_switch(0.2) {
                "BOTTLENECK SWITCH"
            } else {
                "stable bottleneck"
            }
        )
        .unwrap();
        // A 300-second excerpt as a coarse ASCII strip (10 s per character:
        // F front-dominant, D db-dominant, '.' neither).
        let strip: String = run
            .fs_util
            .iter()
            .zip(&run.db_util)
            .take(300)
            .collect::<Vec<_>>()
            .chunks(10)
            .map(|chunk| {
                let (f, d): (f64, f64) = chunk
                    .iter()
                    .fold((0.0, 0.0), |(a, b), (x, y)| (a + **x, b + **y));
                if f - d > 0.5 {
                    'F'
                } else if d - f > 0.5 {
                    'D'
                } else {
                    '.'
                }
            })
            .collect();
        writeln!(out, "  timeline (10 s/char): {strip}\n").unwrap();
    }
    out
}

/// **Figure 6** — database queue length versus database utilization across
/// time (120 s window, 100 EBs). Paper: browsing's queue bursts to ~90 jobs
/// exactly when the DB saturates; shopping/ordering stay flat.
pub fn fig06(duration: f64) -> String {
    let mut out = String::new();
    for mix in Mix::ALL {
        let run = crate::run_testbed(mix, 100, duration, BASE_SEED + 67).expect("testbed run");
        let n = run.db_queue.len().min(120);
        let queue = &run.db_queue[..n];
        let util = &run.db_util[..n];
        let q_max = queue.iter().cloned().fold(0.0, f64::max);
        let q_mean = queue.iter().sum::<f64>() / n as f64;
        // Correlation between queue bursts and utilization.
        let corr = correlation(queue, util);
        writeln!(
            out,
            "Figure 6 ({mix} mix, 100 EBs): DB queue over {n} s — mean {q_mean:.1}, max {q_max:.0}, corr(queue, util) = {corr:.2}",
        )
        .unwrap();
        writeln!(out, "  queue profile (per 5 s, '#' = 10 jobs):").unwrap();
        for (sec, chunk) in queue.chunks(5).enumerate() {
            if sec >= 24 {
                break;
            }
            let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let bars = "#".repeat((avg / 10.0).round() as usize);
            writeln!(out, "  {:>4}s |{bars}", sec * 5).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// **Figures 7 and 8** — per-type in-system request counts against the
/// overall DB queue (120 s, 100 EBs). Paper: Best Seller requests dominate
/// the browsing mix's queue spikes, with Home contributing to the extremes.
pub fn fig07_08(duration: f64) -> String {
    let mut out = String::new();
    for mix in Mix::ALL {
        let run = crate::run_testbed(mix, 100, duration, BASE_SEED + 67).expect("testbed run");
        let n = run.db_queue.len();
        let overall = &run.db_queue;
        let bs = &run.type_in_system[TxType::BestSellers.index()];
        let home = &run.type_in_system[TxType::Home.index()];
        let share = |series: &[f64]| -> f64 { series.iter().sum::<f64>() / n as f64 };
        writeln!(
            out,
            "Figures 7-8 ({mix} mix, 100 EBs): mean in-system — overall DB queue {:.1}, Best Sellers {:.1}, Home {:.1}",
            share(overall),
            share(bs),
            share(home)
        )
        .unwrap();
        writeln!(
            out,
            "  corr(BestSellers, DB queue) = {:.2};  corr(Home, DB queue) = {:.2}",
            correlation(bs, overall),
            correlation(home, overall)
        )
        .unwrap();
        // Spike attribution: average Best Sellers share inside the top-decile
        // queue windows.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| overall[b].partial_cmp(&overall[a]).expect("finite"));
        let top = &idx[..(n / 10).max(1)];
        let bs_in_spikes: f64 = top.iter().map(|&k| bs[k]).sum::<f64>() / top.len() as f64;
        let q_in_spikes: f64 = top.iter().map(|&k| overall[k]).sum::<f64>() / top.len() as f64;
        writeln!(
            out,
            "  top-decile queue windows: queue {:.1}, Best Sellers in system {:.1} ({:.0}% of jobs)\n",
            q_in_spikes,
            bs_in_spikes,
            100.0 * bs_in_spikes / q_in_spikes.max(1e-9)
        )
        .unwrap();
    }
    out
}

/// **Figure 10** — MVA predictions versus measured throughput. Paper: MVA
/// accurate for shopping/ordering, up to 36% optimistic for browsing.
pub fn fig10(duration: f64) -> String {
    let mut out = String::new();
    for mix in Mix::ALL {
        let (_, mva, _) =
            planners_from_estimation_run(mix, 7.0, 50, ESTIMATION_DURATION, BASE_SEED)
                .expect("estimation run");
        let measured = measured_sweep(mix, &EB_SWEEP, 0.5, duration).expect("measured sweep");
        writeln!(out, "Figure 10 ({mix} mix): MVA vs measured").unwrap();
        writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>8}",
            "EBs", "measured", "MVA", "err"
        )
        .unwrap();
        for (ebs, run) in measured {
            let p = mva.predict(ebs, 0.5).expect("mva");
            writeln!(
                out,
                "{ebs:>6} {:>10.1} {:>10.1} {:>7.1}%",
                run.throughput,
                p.throughput,
                (p.throughput - run.throughput).abs() / run.throughput * 100.0
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// **Figure 11 / Table 4** — measurement-granularity study: the model fitted
/// from a `Z_estim = 0.5 s` trace versus a `Z_estim = 7 s` trace, validated
/// on the browsing mix at 25/75/150 EBs. Paper: the finer-granularity
/// `Z_estim = 7 s` fit reduces the worst error to ~2-6%.
pub fn fig11(duration: f64) -> String {
    let mut out = String::new();
    let populations = [25usize, 75, 150];
    let measured =
        measured_sweep(Mix::Browsing, &populations, 0.5, duration).expect("measured sweep");
    writeln!(
        out,
        "Figure 11 (browsing mix): Z_estim granularity study (Z_qn = 0.5 s)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>6} {:>10} {:>12} {:>8} {:>12} {:>8}",
        "EBs", "measured", "Model-Z0.5", "err", "Model-Z7", "err"
    )
    .unwrap();
    let (planner_05, _, run_05) =
        planners_from_estimation_run(Mix::Browsing, 0.5, 50, ESTIMATION_DURATION, BASE_SEED)
            .expect("Z_estim = 0.5 estimation run");
    let (planner_7, _, run_7) =
        planners_from_estimation_run(Mix::Browsing, 7.0, 50, ESTIMATION_DURATION, BASE_SEED)
            .expect("Z_estim = 7 estimation run");
    for (ebs, run) in &measured {
        let p05 = planner_05.predict(*ebs, 0.5).expect("model");
        let p7 = planner_7.predict(*ebs, 0.5).expect("model");
        writeln!(
            out,
            "{ebs:>6} {:>10.1} {:>12.1} {:>7.1}% {:>12.1} {:>7.1}%",
            run.throughput,
            p05.throughput,
            (p05.throughput - run.throughput).abs() / run.throughput * 100.0,
            p7.throughput,
            (p7.throughput - run.throughput).abs() / run.throughput * 100.0,
        )
        .unwrap();
    }
    writeln!(
        out,
        "completions per 5 s window: {:.0} at Z_estim=0.5 vs {:.0} at Z_estim=7 (finer granularity)",
        run_05.throughput * 5.0,
        run_7.throughput * 5.0
    )
    .unwrap();
    out
}

/// **Figure 12** — the full validation: burstiness-aware model vs MVA vs
/// measured for all three mixes, with fitted descriptors.
pub fn fig12(duration: f64) -> String {
    let mut out = String::new();
    for mix in Mix::ALL {
        let (planner, mva, _) =
            planners_from_estimation_run(mix, 7.0, 50, ESTIMATION_DURATION, BASE_SEED)
                .expect("estimation run");
        writeln!(
            out,
            "Figure 12 ({mix} mix) — I_front = {:.0}, I_db = {:.0}",
            planner.front_characterization().index_of_dispersion,
            planner.db_characterization().index_of_dispersion
        )
        .unwrap();
        let measured = measured_sweep(mix, &EB_SWEEP, 0.5, duration).expect("measured sweep");
        let measured_points: Vec<(usize, f64)> = measured
            .iter()
            .map(|(ebs, run)| (*ebs, run.throughput))
            .collect();
        let model = planner.predict_sweep(&EB_SWEEP, 0.5).expect("model sweep");
        let baseline = mva.predict_sweep(&EB_SWEEP, 0.5).expect("mva sweep");
        let report = AccuracyReport::new(
            format!("{mix} mix (Z_qn = 0.5 s, Z_estim = 7 s)"),
            &measured_points,
            &model,
            &baseline,
        )
        .expect("aligned series");
        write!(out, "{report}").unwrap();
        writeln!(
            out,
            "max error: model {:.1}%, MVA {:.1}%\n",
            report.max_model_error() * 100.0,
            report.max_mva_error() * 100.0
        )
        .unwrap();
    }
    out
}

/// Pearson correlation between two equal-length series.
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len()) as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_of_identical_series_is_one() {
        let s = [1.0, 5.0, 2.0, 8.0];
        assert!((correlation(&s, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        assert_eq!(correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn fig01_reports_monotone_dispersion() {
        let text = fig01();
        assert!(text.contains("Fig. 1(a)"));
        assert!(text.contains("Fig. 1(d)"));
        // Extract the I column and verify monotone growth.
        let values: Vec<f64> = text
            .lines()
            .filter(|l| l.starts_with("Fig."))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert_eq!(values.len(), 4);
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "I must grow: {values:?}"
        );
    }

    #[test]
    fn environment_lists_all_transactions() {
        let text = environment();
        for t in ALL_TYPES {
            assert!(text.contains(t.name()), "missing {}", t.name());
        }
    }
}
