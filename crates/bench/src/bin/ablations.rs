//! Ablation studies for the design choices called out in `DESIGN.md` §5:
//!
//! 1. Figure 2 stopping tolerance vs the stability of the `I` estimate;
//! 2. MAP(2) candidate selection: closest-p95 (the paper's rule) vs
//!    largest-rho1-only;
//! 3. contention disabled: the testbed without its burstiness source
//!    (every mix becomes MVA-friendly).

use burstcap_bench::{header, BASE_SEED};
use burstcap_map::fit::Map2Fitter;
use burstcap_stats::dispersion::DispersionEstimator;
use burstcap_tpcw::contention::ContentionConfig;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TierId;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn main() {
    ablation_tolerance();
    ablation_selection();
    ablation_contention_off();
}

/// How sensitive is the Figure 2 estimate to the stopping tolerance?
fn ablation_tolerance() {
    println!(
        "{}",
        header("Ablation 1: Figure 2 stopping tolerance (browsing DB trace)")
    );
    let run = Testbed::new(
        TestbedConfig::new(Mix::Browsing, 50)
            .think_time(7.0)
            .duration(3600.0)
            .seed(BASE_SEED),
    )
    .expect("valid")
    .run()
    .expect("runs");
    let m = run.monitoring(TierId::Db).expect("monitoring");
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "tol", "I", "levels", "converged"
    );
    for tol in [0.5, 0.2, 0.1, 0.05, 0.02, 0.01] {
        let est = DispersionEstimator::new(m.resolution)
            .tolerance(tol)
            .estimate(&m.utilization, &m.completions)
            .expect("estimates");
        println!(
            "{tol:>10} {:>12.1} {:>12} {:>10}",
            est.index_of_dispersion(),
            est.curve().len(),
            est.converged()
        );
    }
    println!(
        "(the stopping rule latches onto plateaus of the noisy Y(t) curve: the\n\
        \x20estimate is tolerance-sensitive within a factor ~3, motivating the\n\
        \x20paper's +-20% fitting band downstream)"
    );
}

/// Does the closest-p95 selection rule matter, or would largest-rho1 do?
fn ablation_selection() {
    println!(
        "{}",
        header("Ablation 2: candidate selection rule (mean 1, I = 100)")
    );
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>10}",
        "p95*", "p95(closest)", "p95(max-rho1)", "scv(c)", "scv(r)"
    );
    for p95_target in [1.5, 2.5, 3.5, 4.5] {
        let fitted = Map2Fitter::new(1.0, 100.0, p95_target)
            .fit()
            .expect("feasible");
        let closest = fitted.chosen();
        // The alternative rule: among the tolerance band, take max rho1
        // regardless of p95 (candidates are sorted by p95 distance).
        let by_rho1 = fitted
            .candidates()
            .iter()
            .max_by(|a, b| a.rho1.partial_cmp(&b.rho1).expect("finite"))
            .expect("non-empty");
        println!(
            "{p95_target:>8} {:>14.2} {:>14.2} {:>10.1} {:>10.1}",
            closest.achieved_p95, by_rho1.achieved_p95, closest.scv, by_rho1.scv
        );
    }
    println!("(rho1-only ignores the tail target entirely: the p95 column drifts)");
}

/// Remove the contention source: burstiness disappears and every mix becomes
/// well-predicted by plain MVA — evidence the testbed's misbehaviour is
/// caused by the injected mechanism, not an artifact.
fn ablation_contention_off() {
    println!(
        "{}",
        header("Ablation 3: contention disabled (browsing mix)")
    );
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10}",
        "EBs", "TPUT(on)", "TPUT(off)", "Udb(on)", "Udb(off)"
    );
    for (k, ebs) in [50usize, 100, 150].into_iter().enumerate() {
        let on = Testbed::new(
            TestbedConfig::new(Mix::Browsing, ebs)
                .duration(600.0)
                .seed(BASE_SEED + k as u64),
        )
        .expect("valid")
        .run()
        .expect("runs");
        let off = Testbed::new(
            TestbedConfig::new(Mix::Browsing, ebs)
                .duration(600.0)
                .seed(BASE_SEED + k as u64)
                .contention(ContentionConfig::disabled()),
        )
        .expect("valid")
        .run()
        .expect("runs");
        println!(
            "{ebs:>6} {:>12.1} {:>12.1} {:>9.1}% {:>9.1}%",
            on.throughput,
            off.throughput,
            on.mean_utilization(TierId::Db) * 100.0,
            off.mean_utilization(TierId::Db) * 100.0,
        );
    }
    println!("(without contention the browsing mix behaves like the ordering mix)");
}
