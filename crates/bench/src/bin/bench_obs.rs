//! Observability-overhead snapshot: times the two hot traced paths with
//! and without a live recorder and writes a `BENCH_obs.json` record.
//!
//! Two workloads:
//!
//! * **sparse solve** — the paper's MAP(2)×MAP(2) network at population
//!   100 through the CSR Gauss-Seidel engine, untraced (the no-op
//!   `Trace::noop` default) vs traced into a live [`Recorder`];
//! * **online ingest** — 900 monitoring windows (400 stable, then a 3x db
//!   demand shift) through the continuous planner, untraced vs traced —
//!   the stream covers window counters, CUSUM samples, alarm/reset, and
//!   both re-fit solves.
//!
//! The instrumentation budget is <3% wall-clock overhead on either path
//! (`overhead_target_pct`); `overhead_ok` records whether this machine met
//! it, and CI gates on that field. Each repetition times an untraced and a
//! traced run back to back (order alternating) and the reported overhead
//! is the median of the per-pair ratios — robust to both frequency drift
//! and the several-percent allocator-layout noise a single 400 ms solve
//! shows; the `_ms` fields record the per-side minima.
//!
//! Usage: `cargo run --release -p burstcap-bench --bin bench_obs
//! [output.json]` (default `BENCH_obs.json`). `BURSTCAP_BENCH_FAST=1`
//! lowers the repetition count.
//!
//! Wall-clock numbers are a snapshot of one machine; the deterministic
//! fields (state counts, event counts) are diffed across runs in CI.

use burstcap_bench::json::{JsonObject, JsonValue};
use burstcap_bench::timing::Stopwatch;
use burstcap_map::fit::Map2Fitter;
use burstcap_obs::{Recorder, Trace};
use burstcap_online::detector::CusumOptions;
use burstcap_online::{MonitorWindow, OnlinePlanner, OnlinePlannerOptions, TierSample};
use burstcap_qn::mapqn::MapNetwork;

const OVERHEAD_TARGET_PCT: f64 = 3.0;
const SOLVE_POPULATION: usize = 100;
const INGEST_WINDOWS: usize = 900;
const SHIFT_WINDOW: usize = 400;
/// One ingest pass is ~2 ms — far below the timer's stable range — so each
/// timed measurement batches this many passes (~50 ms).
const INGEST_PASSES: usize = 25;

/// The paper's MAP(2)×MAP(2) two-tier network at the sparse-engine scale.
fn network() -> MapNetwork {
    let front = Map2Fitter::new(0.01, 8.0, 0.03)
        .fit()
        .expect("front fits")
        .map();
    let db = Map2Fitter::new(0.008, 12.0, 0.02)
        .fit()
        .expect("db fits")
        .map();
    MapNetwork::new(SOLVE_POPULATION, 0.45, front, db).expect("valid network")
}

fn window(front: (f64, u64), db: (f64, u64)) -> MonitorWindow {
    MonitorWindow {
        tiers: vec![
            TierSample {
                utilization: front.0,
                completions: front.1,
            },
            TierSample {
                utilization: db.0,
                completions: db.1,
            },
        ],
    }
}

fn planner_options() -> OnlinePlannerOptions {
    let mut options = OnlinePlannerOptions::new(20, 0.5);
    options.min_windows = 120;
    options.replan_every = 20;
    options.detector = CusumOptions {
        warmup_windows: 30,
        slack: 0.25,
        threshold: 6.0,
    };
    options
}

/// One full ingest pass (stable phase, shift, recovery) under `trace`.
fn ingest_pass(trace: &Trace) -> usize {
    let mut planner = OnlinePlanner::new(5.0, 2, planner_options())
        .expect("valid planner")
        .with_trace(trace.clone());
    let stable = window((0.5, 250), (0.25, 250));
    let shifted = window((0.5, 250), (0.75, 250));
    let mut reports = 0usize;
    for k in 0..INGEST_WINDOWS {
        let w = if k < SHIFT_WINDOW { &stable } else { &shifted };
        if planner.ingest(w).expect("window ingests").is_some() {
            reports += 1;
        }
    }
    reports
}

/// One workload's timing summary: minimum wall-clock per side and the
/// median of the per-repetition traced/untraced ratios.
struct Timing {
    untraced_ms: f64,
    traced_ms: f64,
    overhead_pct: f64,
    checksum: usize,
}

/// Time `reps` paired (untraced, traced) runs. Each repetition times both
/// sides back to back — so frequency drift hits the pair, not one side —
/// with the order alternating per repetition to cancel ordering bias, and
/// the overhead is the *median* of the per-pair ratios: single-measurement
/// noise (allocator layout shifts between solves) is several percent on
/// this workload, far above the real cost of a dozen recorded events.
fn paired_overhead(reps: usize, mut workload: impl FnMut(&Trace) -> usize) -> Timing {
    let mut untraced_ms = f64::INFINITY;
    let mut traced_ms = f64::INFINITY;
    let mut ratios = Vec::with_capacity(reps);
    let mut checksum = 0usize;
    let side = |traced: bool, workload: &mut dyn FnMut(&Trace) -> usize| -> (f64, usize) {
        if traced {
            let recorder = Recorder::new();
            let t = Stopwatch::start();
            let out = workload(&recorder.trace());
            (t.elapsed_ms(), out)
        } else {
            let t = Stopwatch::start();
            let out = workload(&Trace::noop());
            (t.elapsed_ms(), out)
        }
    };
    for rep in 0..reps {
        let first_traced = rep % 2 == 1;
        let (ms_a, out_a) = side(first_traced, &mut workload);
        let (ms_b, out_b) = side(!first_traced, &mut workload);
        let (u, t) = if first_traced {
            (ms_b, ms_a)
        } else {
            (ms_a, ms_b)
        };
        assert_eq!(out_a, out_b, "tracing changed the workload's result");
        checksum = out_a;
        untraced_ms = untraced_ms.min(u);
        traced_ms = traced_ms.min(t);
        ratios.push(t / u);
        if std::env::var_os("BURSTCAP_BENCH_DEBUG").is_some() {
            println!(
                "  pair {rep}: untraced {u:.2} ms, traced {t:.2} ms, ratio {:.4}",
                t / u
            );
        }
    }
    ratios.sort_by(f64::total_cmp);
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    Timing {
        untraced_ms,
        traced_ms,
        overhead_pct,
        checksum,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let fast = std::env::var_os("BURSTCAP_BENCH_FAST").is_some_and(|v| v != "0");
    let reps = if fast { 5 } else { 15 };

    println!(
        "{}",
        burstcap_bench::header(&format!(
            "bench_obs: instrumentation overhead, target <{OVERHEAD_TARGET_PCT}% \
             ({reps} paired reps, median ratio)"
        ))
    );

    // --- Workload 1: pop-100 sparse CSR solve ---------------------------
    let net = network();
    let states = net.state_count();
    let solve = paired_overhead(reps, |trace| {
        let (sol, _pi) = net
            .solve_sparse_with_initial_traced(None, trace)
            .expect("sparse solve");
        sol.diagnostics.iterations
    });
    // Deterministic trace volume of one solve.
    let recorder = Recorder::new();
    net.solve_sparse_with_initial_traced(None, &recorder.trace())
        .expect("sparse solve");
    let solve_events = recorder.events().iter().filter(|e| !e.volatile).count();
    println!(
        "sparse solve (pop {SOLVE_POPULATION}, {states} states): \
         untraced {:.2} ms, traced {:.2} ms, overhead {:+.2}% ({solve_events} events)",
        solve.untraced_ms, solve.traced_ms, solve.overhead_pct
    );

    // --- Workload 2: online ingest loop across a regime shift -----------
    let ingest = paired_overhead(reps, |trace| {
        (0..INGEST_PASSES).map(|_| ingest_pass(trace)).sum()
    });
    let recorder = Recorder::new();
    let ingest_reports = ingest_pass(&recorder.trace());
    let ingest_events = recorder.events().iter().filter(|e| !e.volatile).count();
    println!(
        "online ingest ({INGEST_WINDOWS} windows x {INGEST_PASSES} passes, shift at \
         {SHIFT_WINDOW}): untraced {:.2} ms, traced {:.2} ms, overhead {:+.2}% \
         ({ingest_events} events/pass)",
        ingest.untraced_ms, ingest.traced_ms, ingest.overhead_pct
    );

    let overhead_ok =
        solve.overhead_pct < OVERHEAD_TARGET_PCT && ingest.overhead_pct < OVERHEAD_TARGET_PCT;
    println!(
        "\noverhead budget {}",
        if overhead_ok { "met" } else { "EXCEEDED" }
    );

    let report = JsonObject::new()
        .field("bench", "bench_obs")
        .field("seed", burstcap_bench::BASE_SEED)
        .field("repetitions", reps)
        .field("overhead_target_pct", JsonValue::f(OVERHEAD_TARGET_PCT, 1))
        .field(
            "sparse_solve",
            JsonObject::new()
                .field("population", SOLVE_POPULATION)
                .field("states", states)
                .field("sweeps", solve.checksum)
                .field("trace_events", solve_events)
                .field("untraced_ms", JsonValue::f(solve.untraced_ms, 3))
                .field("traced_ms", JsonValue::f(solve.traced_ms, 3))
                .field("overhead_pct", JsonValue::f(solve.overhead_pct, 2)),
        )
        .field(
            "online_ingest",
            JsonObject::new()
                .field("windows", INGEST_WINDOWS)
                .field("shift_window", SHIFT_WINDOW)
                .field("passes_per_rep", INGEST_PASSES)
                .field("reports", ingest_reports)
                .field("trace_events", ingest_events)
                .field("untraced_ms", JsonValue::f(ingest.untraced_ms, 3))
                .field("traced_ms", JsonValue::f(ingest.traced_ms, 3))
                .field("overhead_pct", JsonValue::f(ingest.overhead_pct, 2)),
        )
        .field("overhead_ok", overhead_ok);
    burstcap_bench::json::write_report(&out_path, &report);
    println!("wrote {out_path}");
}
