//! Online-planning snapshot: streams a drifting TPC-W feed through the
//! continuous planner and times the two things that make it continuous —
//! ingestion throughput (windows/second) and the warm-started solve.
//!
//! Two measurements, one `BENCH_online.json` record:
//!
//! * **Streaming run** — a stable (contention-disabled) browsing phase
//!   followed by a heavy-contention phase replayed window by window into
//!   [`burstcap_online::OnlinePlanner`]. The deterministic outcome fields
//!   (window counts, refits, regime-change window, warm/cold solve split,
//!   final prediction) are diffed by CI across two runs; wall-clock fields
//!   (`*_ms`, `windows_per_sec`) are machine snapshots.
//! * **Warm vs cold solve** — the same drifted-descriptor re-solve the
//!   planner performs on unchanged-regime windows, timed head to head:
//!   sparse Gauss-Seidel cold from uniform vs warm-started from the
//!   previous model's stationary vector
//!   ([`burstcap_qn::mapqn::MapNetwork::solve_sparse_with_initial`]).
//!
//! Usage: `cargo run --release -p burstcap-bench --bin bench_online
//! [output.json]` (default `BENCH_online.json`). `BURSTCAP_BENCH_FAST=1`
//! shortens the simulated feed and drops to one timing repetition.

use burstcap_bench::timing::Stopwatch;

use burstcap_bench::json::{JsonObject, JsonValue};
use burstcap_bench::BASE_SEED;
use burstcap_map::fit::Map2Fitter;
use burstcap_online::detector::CusumOptions;
use burstcap_online::planner::{OnlinePlanner, OnlinePlannerOptions};
use burstcap_online::window::ReplaySource;
use burstcap_qn::mapqn::MapNetwork;
use burstcap_tpcw::contention::ContentionConfig;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_online.json".to_string());
    let fast = std::env::var_os("BURSTCAP_BENCH_FAST").is_some_and(|v| v != "0");
    let (phase_seconds, reps) = if fast { (1500.0, 1) } else { (2400.0, 5) };
    let ebs = 60;

    // --- Streaming run: stable phase, then an injected contention shift --
    let stable = Testbed::new(
        TestbedConfig::new(Mix::Browsing, ebs)
            .duration(phase_seconds)
            .seed(BASE_SEED)
            .contention(ContentionConfig::disabled()),
    )
    .expect("valid stable configuration")
    .run()
    .expect("stable phase runs");
    let contended = Testbed::new(
        TestbedConfig::new(Mix::Browsing, ebs)
            .duration(phase_seconds)
            .seed(BASE_SEED + 1)
            .contention(ContentionConfig {
                trigger_probability: 0.2,
                slowdown: 9.0,
                ..ContentionConfig::default()
            }),
    )
    .expect("valid contended configuration")
    .run()
    .expect("contended phase runs");

    let mut feed = ReplaySource::from_run(&stable).expect("stable feed");
    let shift_window = feed.remaining();
    feed.append_run(&contended).expect("same shape");
    let total_windows = feed.remaining();
    let resolution = stable.count_resolution;

    let mut options = OnlinePlannerOptions::new(ebs, 0.5);
    options.min_windows = 150;
    options.replan_every = 30;
    options.i_drift_threshold = 5.0;
    options.detector = CusumOptions {
        warmup_windows: 40,
        slack: 0.25,
        threshold: 8.0,
    };
    let mut planner = OnlinePlanner::new(resolution, 2, options).expect("valid planner");

    println!(
        "{}",
        burstcap_bench::header(&format!(
            "bench_online: {total_windows} windows ({shift_window} stable, then heavy contention)"
        ))
    );
    let t0 = Stopwatch::start();
    let reports = planner.drain(&mut feed).expect("stream ingests end to end");
    let ingest_ms = t0.elapsed_ms();
    let windows_per_sec = total_windows as f64 / (ingest_ms / 1e3);

    let stats = planner.stats();
    let first_alarm = reports
        .iter()
        .find(|r| r.regime_change)
        .map(|r| r.window)
        .unwrap_or(0);
    let refit_windows: Vec<usize> = reports
        .iter()
        .filter(|r| r.refitted)
        .map(|r| r.window)
        .collect();
    let final_prediction = planner.prediction().expect("fitted").clone();
    let final_db = planner
        .fitted_characterizations()
        .last()
        .expect("two tiers")
        .clone();
    println!(
        "{}",
        burstcap_bench::row(
            "stream",
            &[
                format!("{total_windows} windows"),
                format!("{:.0} w/s", windows_per_sec),
                format!("{} refits", stats.refits),
                format!("alarm @{first_alarm}"),
            ],
        )
    );
    println!(
        "{}",
        burstcap_bench::row(
            "solves",
            &[
                format!("{} warm", stats.warm_solves),
                format!("{} cold", stats.cold_solves),
                format!("X {:.1}", final_prediction.throughput),
            ],
        )
    );

    // --- Warm vs cold: the unchanged-regime re-solve, timed -------------
    // The same shapes bench_baseline uses; the drifted model perturbs the
    // db descriptors by a few percent — exactly what a rolling re-fit sees
    // between regime changes.
    let front = Map2Fitter::new(0.01, 8.0, 0.03)
        .fit()
        .expect("feasible")
        .map();
    let db = Map2Fitter::new(0.008, 12.0, 0.02)
        .fit()
        .expect("feasible")
        .map();
    let db_drifted = Map2Fitter::new(0.00824, 11.4, 0.0206)
        .fit()
        .expect("feasible")
        .map();
    let pop = 60;
    let base = MapNetwork::new(pop, 0.3, front, db).expect("valid network");
    let (_, pi_base) = base
        .solve_sparse_with_initial(None)
        .expect("base model solves");
    let drifted = MapNetwork::new(pop, 0.3, front, db_drifted).expect("valid network");

    let mut cold_times = Vec::with_capacity(reps);
    let mut warm_times = Vec::with_capacity(reps);
    let mut cold_x = 0.0;
    let mut warm_x = 0.0;
    for _ in 0..reps {
        let t0 = Stopwatch::start();
        let sol = drifted.solve_sparse().expect("cold solve");
        cold_times.push(t0.elapsed_ms());
        cold_x = sol.throughput;

        let t0 = Stopwatch::start();
        let (sol, _) = drifted
            .solve_sparse_with_initial(Some(pi_base.clone()))
            .expect("warm solve");
        warm_times.push(t0.elapsed_ms());
        warm_x = sol.throughput;
    }
    let median = |times: &mut Vec<f64>| {
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        times[times.len() / 2]
    };
    let cold_ms = median(&mut cold_times);
    let warm_ms = median(&mut warm_times);
    let agreement = (warm_x - cold_x).abs() / cold_x;
    assert!(
        agreement < 1e-8,
        "warm and cold solves must agree, gap {agreement:.3e}"
    );
    println!(
        "{}",
        burstcap_bench::row(
            &format!("warm vs cold (pop {pop}, {} states)", drifted.state_count()),
            &[
                format!("cold {cold_ms:.1} ms"),
                format!("warm {warm_ms:.1} ms"),
                format!("{:.1}x", cold_ms / warm_ms),
            ],
        )
    );

    let refit_list: Vec<JsonValue> = refit_windows.iter().map(|&w| JsonValue::from(w)).collect();
    let report = JsonObject::new()
        .field("bench", "bench_online")
        .field("seed", BASE_SEED)
        .field("mix", "browsing")
        .field("ebs", ebs)
        .field("phase_seconds", JsonValue::f(phase_seconds, 1))
        .field("resolution_seconds", JsonValue::f(resolution, 1))
        .field("repetitions", reps)
        .field(
            "stream",
            JsonObject::new()
                .field("windows_total", total_windows)
                .field("shift_window", shift_window)
                .field("reports", reports.len())
                .field("refits", stats.refits)
                .field("warm_solves", stats.warm_solves)
                .field("cold_solves", stats.cold_solves)
                .field("regime_changes", stats.regime_changes)
                .field("first_alarm_window", first_alarm)
                .field("refit_windows", refit_list)
                .field(
                    "final_throughput",
                    JsonValue::f(final_prediction.throughput, 9),
                )
                .field(
                    "final_db_mean_service_time",
                    JsonValue::f(final_db.mean_service_time, 9),
                )
                .field(
                    "final_db_index_of_dispersion",
                    JsonValue::f(final_db.index_of_dispersion, 9),
                )
                .field("ingest_ms", JsonValue::f(ingest_ms, 3))
                .field("windows_per_sec", JsonValue::f(windows_per_sec, 1)),
        )
        .field(
            "warm_vs_cold",
            JsonObject::new()
                .field("population", pop)
                .field("states", drifted.state_count())
                .field("throughput_rel_gap", JsonValue::sci(agreement, 3))
                .field("cold_ms", JsonValue::f(cold_ms, 3))
                .field("warm_ms", JsonValue::f(warm_ms, 3))
                .field("warm_speedup", JsonValue::f(cold_ms / warm_ms, 2)),
        );
    burstcap_bench::json::write_report(&out_path, &report);
    println!("wrote {out_path}");
}
