//! Regenerates every table and figure of the paper in one run, in paper
//! order. Output is the "measured" side of `EXPERIMENTS.md`.

use burstcap_bench::experiments::MEASURE_DURATION;
use burstcap_bench::figures;

fn main() {
    let banner = |s: &str| println!("\n{}\n{s}\n{}", "=".repeat(72), "=".repeat(72));
    banner("Figure 1 - burstiness profiles");
    print!("{}", figures::fig01());
    banner("Table 1 - M/Trace/1 response times");
    print!("{}", figures::table1());
    banner("Tables 2-3 - environment");
    print!("{}", figures::environment());
    banner("Figure 4 - saturation sweeps");
    print!("{}", figures::fig04(MEASURE_DURATION));
    banner("Figure 5 - bottleneck switch timelines");
    print!("{}", figures::fig05(360.0));
    banner("Figure 6 - DB queue bursts");
    print!("{}", figures::fig06(360.0));
    banner("Figures 7-8 - per-transaction attribution");
    print!("{}", figures::fig07_08(360.0));
    banner("Figure 10 - MVA vs measured");
    print!("{}", figures::fig10(MEASURE_DURATION));
    banner("Figure 11 - Z_estim granularity study");
    print!("{}", figures::fig11(MEASURE_DURATION));
    banner("Figure 12 - model vs MVA vs measured");
    print!("{}", figures::fig12(MEASURE_DURATION));
}
