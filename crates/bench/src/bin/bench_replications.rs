//! Replication-harness snapshot: runs the mix × population × contention
//! scenario grid through the multi-replication experiment harness twice —
//! once as a serial fold, once fanned across worker threads — verifies the
//! aggregates are **bit-identical**, and writes a `BENCH_replications.json`
//! record with the CI-bearing statistics and the serial/parallel
//! wall-clock.
//!
//! Usage: `cargo run --release -p burstcap-bench --bin bench_replications
//! [output.json]` (default output `BENCH_replications.json` in the current
//! directory).
//!
//! Environment knobs:
//!
//! * `BURSTCAP_BENCH_FAST=1` — smoke mode: fewer replications, shorter
//!   runs, a reduced grid (what CI uses);
//! * `BURSTCAP_REPLICATION_WORKERS=n` — parallel worker count (default 4).
//!
//! The scenario metadata and aggregate statistics in the JSON are fully
//! deterministic (CI diffs them across two runs); the `*_ms`, `speedup`
//! and `parallelism` fields are wall-clock snapshots of one machine and
//! are excluded from that diff.

use std::time::Instant;

use burstcap::experiment::Replications;
use burstcap_bench::BASE_SEED;
use burstcap_stats::ci::mean_ci;
use burstcap_tpcw::contention::ContentionConfig;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TestbedRun;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

struct Scenario {
    mix: Mix,
    ebs: usize,
    contention: &'static str,
}

struct Row {
    mix: &'static str,
    ebs: usize,
    contention: &'static str,
    replications: usize,
    throughput_mean: f64,
    throughput_half_width: f64,
    response_mean: f64,
    util_db_mean: f64,
    serial_ms: f64,
    parallel_ms: f64,
}

fn mix_name(mix: Mix) -> &'static str {
    match mix {
        Mix::Browsing => "browsing",
        Mix::Shopping => "shopping",
        Mix::Ordering => "ordering",
    }
}

fn contention_config(name: &str) -> ContentionConfig {
    match name {
        "none" => ContentionConfig::disabled(),
        "heavy" => ContentionConfig {
            trigger_probability: 0.2,
            slowdown: 9.0,
            ..ContentionConfig::default()
        },
        _ => ContentionConfig::default(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replications.json".to_string());
    let fast = std::env::var_os("BURSTCAP_BENCH_FAST").is_some_and(|v| v != "0");
    let workers: usize = std::env::var("BURSTCAP_REPLICATION_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(2);
    let (replications, duration) = if fast { (4, 120.0) } else { (8, 300.0) };

    let mixes: &[Mix] = if fast {
        &[Mix::Browsing, Mix::Ordering]
    } else {
        &[Mix::Browsing, Mix::Shopping, Mix::Ordering]
    };
    let populations: &[usize] = if fast { &[25] } else { &[25, 75] };
    let contentions: &[&'static str] = if fast {
        &["default"]
    } else {
        &["default", "heavy"]
    };

    let mut scenarios = Vec::new();
    for &mix in mixes {
        for &ebs in populations {
            for &contention in contentions {
                scenarios.push(Scenario {
                    mix,
                    ebs,
                    contention,
                });
            }
        }
    }

    burstcap_bench::header(&format!(
        "bench_replications: {} scenarios x {replications} replications, \
         serial fold vs {workers} workers",
        scenarios.len()
    ));

    let mut rows: Vec<Row> = Vec::new();
    let mut serial_total = 0.0;
    let mut parallel_total = 0.0;
    for sc in &scenarios {
        let testbed = Testbed::new(
            TestbedConfig::new(sc.mix, sc.ebs)
                .duration(duration)
                .seed(BASE_SEED)
                .contention(contention_config(sc.contention)),
        )
        .expect("valid scenario configuration");

        // Serial fold: the tpcw batch entry point.
        let t0 = Instant::now();
        let serial = testbed
            .replications(replications)
            .expect("serial replications run");
        let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Parallel fan over the identical replication list.
        let t0 = Instant::now();
        let parallel = Replications::new(replications)
            .expect("valid plan")
            .workers(workers)
            .run(|rep| testbed.replication(rep.index))
            .expect("parallel replications run");
        let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Hard correctness gate: the parallel aggregate must be
        // bit-identical to the serial one.
        let agg = |runs: &[TestbedRun], f: fn(&TestbedRun) -> f64| {
            let values: Vec<f64> = runs.iter().map(f).collect();
            mean_ci(&values, 0.95).expect("two or more replications")
        };
        let x_serial = agg(&serial, |r| r.throughput);
        let x_parallel = agg(&parallel, |r| r.throughput);
        assert_eq!(
            x_serial.mean.to_bits(),
            x_parallel.mean.to_bits(),
            "parallel aggregate diverged from serial"
        );
        assert_eq!(
            x_serial.half_width.to_bits(),
            x_parallel.half_width.to_bits()
        );

        let r_mean = agg(&serial, |r| r.response_mean).mean;
        let u_db = agg(&serial, |r| {
            r.db_util.iter().sum::<f64>() / r.db_util.len() as f64
        })
        .mean;

        println!(
            "{}",
            burstcap_bench::row(
                &format!("{} ebs {} {}", mix_name(sc.mix), sc.ebs, sc.contention),
                &[
                    format!("X {:.1}±{:.1}", x_serial.mean, x_serial.half_width),
                    format!("serial {serial_ms:.0} ms"),
                    format!("par {parallel_ms:.0} ms"),
                    format!("{:.2}x", serial_ms / parallel_ms),
                ],
            )
        );

        serial_total += serial_ms;
        parallel_total += parallel_ms;
        rows.push(Row {
            mix: mix_name(sc.mix),
            ebs: sc.ebs,
            contention: sc.contention,
            replications,
            throughput_mean: x_serial.mean,
            throughput_half_width: x_serial.half_width,
            response_mean: r_mean,
            util_db_mean: u_db,
            serial_ms,
            parallel_ms,
        });
    }

    let speedup = serial_total / parallel_total;
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nsweep wall-clock: serial {serial_total:.0} ms, parallel {parallel_total:.0} ms \
         ({speedup:.2}x at {workers} workers on {parallelism} hardware threads); \
         aggregates bit-identical"
    );

    // Hand-rolled JSON (the vendored serde shim has no serializer). The
    // deterministic scenario/aggregate fields and the wall-clock fields
    // live on separate lines so CI can diff the former across runs.
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        body.push_str(&format!(
            "    {{\"mix\": \"{}\", \"ebs\": {}, \"contention\": \"{}\", \
             \"replications\": {}, \"throughput_mean\": {:.9}, \
             \"throughput_half_width\": {:.9}, \"response_mean\": {:.9}, \
             \"util_db_mean\": {:.9},\n     \
             \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}}}{}\n",
            r.mix,
            r.ebs,
            r.contention,
            r.replications,
            r.throughput_mean,
            r.throughput_half_width,
            r.response_mean,
            r.util_db_mean,
            r.serial_ms,
            r.parallel_ms,
            sep
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"bench_replications\",\n  \"master_seed\": {BASE_SEED},\n  \
         \"duration_seconds\": {duration},\n  \"confidence_level\": 0.95,\n  \
         \"aggregates_bit_identical\": true,\n  \"workers\": {workers},\n  \
         \"parallelism\": {parallelism},\n  \
         \"serial_total_ms\": {serial_total:.3},\n  \
         \"parallel_total_ms\": {parallel_total:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"scenarios\": [\n{body}  ]\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write replication snapshot");
    println!("wrote {out_path}");
}
