//! Replication-harness snapshot: runs the mix × population × contention
//! scenario grid through the multi-replication experiment harness twice —
//! once as a serial fold, once fanned across worker threads — verifies the
//! aggregates are **bit-identical**, and writes a `BENCH_replications.json`
//! record with the CI-bearing statistics and the serial/parallel
//! wall-clock.
//!
//! Usage: `cargo run --release -p burstcap-bench --bin bench_replications
//! [output.json]` (default output `BENCH_replications.json` in the current
//! directory).
//!
//! Environment knobs:
//!
//! * `BURSTCAP_BENCH_FAST=1` — smoke mode: fewer replications, shorter
//!   runs, a reduced grid (what CI uses);
//! * `BURSTCAP_REPLICATION_WORKERS=n` — parallel worker count (default 4).
//!
//! The scenario metadata and aggregate statistics in the JSON are fully
//! deterministic (CI diffs them across two runs); the `*_ms`, `speedup`
//! and `parallelism` fields are wall-clock snapshots of one machine and
//! are excluded from that diff.

use burstcap_bench::timing::Stopwatch;

use burstcap::experiment::Replications;
use burstcap_bench::json::{JsonObject, JsonValue};
use burstcap_bench::BASE_SEED;
use burstcap_stats::ci::mean_ci;
use burstcap_tpcw::contention::ContentionConfig;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TestbedRun;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

struct Scenario {
    mix: Mix,
    ebs: usize,
    contention: &'static str,
}

struct Row {
    mix: &'static str,
    ebs: usize,
    contention: &'static str,
    replications: usize,
    throughput_mean: f64,
    throughput_half_width: f64,
    response_mean: f64,
    util_db_mean: f64,
    serial_ms: f64,
    parallel_ms: f64,
}

fn mix_name(mix: Mix) -> &'static str {
    match mix {
        Mix::Browsing => "browsing",
        Mix::Shopping => "shopping",
        Mix::Ordering => "ordering",
    }
}

fn contention_config(name: &str) -> ContentionConfig {
    match name {
        "none" => ContentionConfig::disabled(),
        "heavy" => ContentionConfig {
            trigger_probability: 0.2,
            slowdown: 9.0,
            ..ContentionConfig::default()
        },
        _ => ContentionConfig::default(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replications.json".to_string());
    let fast = std::env::var_os("BURSTCAP_BENCH_FAST").is_some_and(|v| v != "0");
    let workers: usize = std::env::var("BURSTCAP_REPLICATION_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(2);
    let (replications, duration) = if fast { (4, 120.0) } else { (8, 300.0) };

    let mixes: &[Mix] = if fast {
        &[Mix::Browsing, Mix::Ordering]
    } else {
        &[Mix::Browsing, Mix::Shopping, Mix::Ordering]
    };
    let populations: &[usize] = if fast { &[25] } else { &[25, 75] };
    let contentions: &[&'static str] = if fast {
        &["default"]
    } else {
        &["default", "heavy"]
    };

    let mut scenarios = Vec::new();
    for &mix in mixes {
        for &ebs in populations {
            for &contention in contentions {
                scenarios.push(Scenario {
                    mix,
                    ebs,
                    contention,
                });
            }
        }
    }

    println!(
        "{}",
        burstcap_bench::header(&format!(
            "bench_replications: {} scenarios x {replications} replications, \
         serial fold vs {workers} workers",
            scenarios.len()
        ))
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut serial_total = 0.0;
    let mut parallel_total = 0.0;
    for sc in &scenarios {
        let testbed = Testbed::new(
            TestbedConfig::new(sc.mix, sc.ebs)
                .duration(duration)
                .seed(BASE_SEED)
                .contention(contention_config(sc.contention)),
        )
        .expect("valid scenario configuration");

        // Serial fold: the tpcw batch entry point.
        let t0 = Stopwatch::start();
        let serial = testbed
            .replications(replications)
            .expect("serial replications run");
        let serial_ms = t0.elapsed_ms();

        // Parallel fan over the identical replication list.
        let t0 = Stopwatch::start();
        let parallel = Replications::new(replications)
            .expect("valid plan")
            .workers(workers)
            .run(|rep| testbed.replication(rep.index))
            .expect("parallel replications run");
        let parallel_ms = t0.elapsed_ms();

        // Hard correctness gate: the parallel aggregate must be
        // bit-identical to the serial one.
        let agg = |runs: &[TestbedRun], f: fn(&TestbedRun) -> f64| {
            let values: Vec<f64> = runs.iter().map(f).collect();
            mean_ci(&values, 0.95).expect("two or more replications")
        };
        let x_serial = agg(&serial, |r| r.throughput);
        let x_parallel = agg(&parallel, |r| r.throughput);
        assert_eq!(
            x_serial.mean.to_bits(),
            x_parallel.mean.to_bits(),
            "parallel aggregate diverged from serial"
        );
        assert_eq!(
            x_serial.half_width.to_bits(),
            x_parallel.half_width.to_bits()
        );

        let r_mean = agg(&serial, |r| r.response_mean).mean;
        let u_db = agg(&serial, |r| {
            r.db_util.iter().sum::<f64>() / r.db_util.len() as f64
        })
        .mean;

        println!(
            "{}",
            burstcap_bench::row(
                &format!("{} ebs {} {}", mix_name(sc.mix), sc.ebs, sc.contention),
                &[
                    format!("X {:.1}±{:.1}", x_serial.mean, x_serial.half_width),
                    format!("serial {serial_ms:.0} ms"),
                    format!("par {parallel_ms:.0} ms"),
                    format!("{:.2}x", serial_ms / parallel_ms),
                ],
            )
        );

        serial_total += serial_ms;
        parallel_total += parallel_ms;
        rows.push(Row {
            mix: mix_name(sc.mix),
            ebs: sc.ebs,
            contention: sc.contention,
            replications,
            throughput_mean: x_serial.mean,
            throughput_half_width: x_serial.half_width,
            response_mean: r_mean,
            util_db_mean: u_db,
            serial_ms,
            parallel_ms,
        });
    }

    let speedup = serial_total / parallel_total;
    // burstcap-lint: allow(unscoped-parallelism) — reads the core count for reporting; spawns nothing outside core::experiment
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nsweep wall-clock: serial {serial_total:.0} ms, parallel {parallel_total:.0} ms \
         ({speedup:.2}x at {workers} workers on {parallelism} hardware threads); \
         aggregates bit-identical"
    );

    // Shared deterministic JSON writer: one field per line, so CI's
    // second-run diff can filter the wall-clock fields (`_ms`, `speedup`,
    // `parallelism`) with grep and compare the rest byte for byte.
    let scenarios: Vec<JsonValue> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .field("mix", r.mix)
                .field("ebs", r.ebs)
                .field("contention", r.contention)
                .field("replications", r.replications)
                .field("throughput_mean", JsonValue::f(r.throughput_mean, 9))
                .field(
                    "throughput_half_width",
                    JsonValue::f(r.throughput_half_width, 9),
                )
                .field("response_mean", JsonValue::f(r.response_mean, 9))
                .field("util_db_mean", JsonValue::f(r.util_db_mean, 9))
                .field("serial_ms", JsonValue::f(r.serial_ms, 3))
                .field("parallel_ms", JsonValue::f(r.parallel_ms, 3))
                .into()
        })
        .collect();
    let report = JsonObject::new()
        .field("bench", "bench_replications")
        .field("master_seed", BASE_SEED)
        .field("duration_seconds", JsonValue::f(duration, 1))
        .field("confidence_level", JsonValue::f(0.95, 2))
        .field("aggregates_bit_identical", true)
        .field("workers", workers)
        .field("parallelism", parallelism)
        .field("serial_total_ms", JsonValue::f(serial_total, 3))
        .field("parallel_total_ms", JsonValue::f(parallel_total, 3))
        .field("speedup", JsonValue::f(speedup, 3))
        .field("scenarios", scenarios);
    burstcap_bench::json::write_report(&out_path, &report);
    println!("wrote {out_path}");
}
