//! Regenerates one table/figure of the paper; see `burstcap_bench::figures`.

fn main() {
    print!(
        "{}",
        burstcap_bench::figures::fig10(burstcap_bench::experiments::MEASURE_DURATION)
    );
}
