//! Regenerates one table/figure of the paper; see `burstcap_bench::figures`.

fn main() {
    print!("{}", burstcap_bench::figures::fig05(360.0));
}
