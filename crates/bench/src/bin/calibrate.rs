//! Calibration probe: per-mix saturation behaviour of the testbed.
//!
//! Not tied to a paper figure; prints the quantities used to check that the
//! simulated testbed reproduces the paper's qualitative symptoms before the
//! per-figure experiments run.

use burstcap_bench::{f1, f2, header, pct, row, run_testbed, BASE_SEED, EB_SWEEP};
use burstcap_stats::bottleneck::BottleneckDetector;
use burstcap_stats::dispersion::DispersionEstimator;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TierId;

fn main() {
    let duration = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(300.0);
    for mix in Mix::ALL {
        println!(
            "{}",
            header(&format!(
                "{mix} mix (D_fs = {:.2} ms, D_db = {:.2} ms uncontended)",
                mix.mean_front_demand() * 1e3,
                mix.mean_db_demand() * 1e3
            ))
        );
        println!(
            "{}",
            row(
                "EBs",
                &[
                    "TPUT".into(),
                    "U_fs".into(),
                    "U_db".into(),
                    "switch".into(),
                    "I_fs".into(),
                    "I_db".into(),
                    "cont_s".into()
                ],
            )
        );
        for (k, &ebs) in EB_SWEEP.iter().enumerate() {
            let run = run_testbed(mix, ebs, duration, BASE_SEED + k as u64).expect("testbed run");
            let report = BottleneckDetector::new()
                .analyze(&run.fs_util, &run.db_util)
                .expect("paired util series");
            let i_of = |tier| -> f64 {
                let m = run.monitoring(tier).expect("monitoring series");
                DispersionEstimator::new(m.resolution)
                    .estimate(&m.utilization, &m.completions)
                    .map(|e| e.index_of_dispersion())
                    .unwrap_or(f64::NAN)
            };
            println!(
                "{}",
                row(
                    &format!("{ebs}"),
                    &[
                        f1(run.throughput),
                        pct(run.mean_utilization(TierId::Front)),
                        pct(run.mean_utilization(TierId::Db)),
                        format!("{}", report.has_switch(0.1)),
                        f2(i_of(TierId::Front)),
                        f2(i_of(TierId::Db)),
                        f1(run.contended_seconds),
                    ],
                )
            );
        }
    }
}
