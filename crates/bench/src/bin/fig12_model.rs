//! Regenerates Figure 12 (model vs MVA vs measured for all mixes); see
//! `burstcap_bench::figures::fig12`.

fn main() {
    print!(
        "{}",
        burstcap_bench::figures::fig12(burstcap_bench::experiments::MEASURE_DURATION)
    );
}
