//! Performance-trajectory snapshot: times the CTMC solver stack on the
//! paper's MAP(2)×MAP(2) network and writes a `BENCH_*.json` record.
//!
//! Four sweeps:
//!
//! * **dense-feasible populations** — dense LU oracle vs the sparse CSR
//!   engine on identical instances, ending at the largest population the
//!   oracle can still solve in reasonable time; the summary records the
//!   sparse-over-dense speedup there;
//! * **sparse-only populations** — the sparse engine and the direct
//!   level-reduction out to population 100, where the dense path is long
//!   intractable;
//! * **station-count scaling** — the N-station generalization across
//!   `M x population` (tandems of 2, 3, and 4 MAP(2) stations) through
//!   `solve_auto`, with the `M = 3` point surfaced in the JSON summary;
//! * **matrix-free frontier** — states vs wall-clock and peak-memory for
//!   the matrix-free engine on an `M x population` grid pushing past the
//!   CSR engine's comfortable range (to 742k states at `M = 4`,
//!   population 30 in full mode), cross-checked against the CSR engine
//!   where both still run.
//!
//! Usage: `cargo run --release -p burstcap-bench --bin bench_baseline
//! [output.json]` (default output `BENCH_baseline.json` in the current
//! directory). `BURSTCAP_BENCH_FAST=1` drops to one timing repetition.
//!
//! Wall-clock numbers are a snapshot of one machine, not a deterministic
//! artifact; the JSON exists so the repo's perf trajectory is visible from
//! commit to commit.

use burstcap_bench::timing::Stopwatch;

use burstcap_bench::json::{JsonObject, JsonValue};
use burstcap_map::fit::Map2Fitter;
use burstcap_obs::Recorder;
use burstcap_qn::ctmc::SteadyStateMethod;
use burstcap_qn::mapqn::{MapNetwork, MapQnSolution};
use burstcap_qn::QnError;

/// Populations where dense LU is still tractable; the last one is the
/// "largest dense-feasible" point the summary reports.
const DENSE_FEASIBLE_POPS: [usize; 5] = [10, 15, 20, 25, 30];
/// Populations covered only by the sparse engine and the direct method.
const SPARSE_POPS: [usize; 3] = [50, 75, 100];
/// Station-count scaling grid: `(M, populations)` pairs solved via
/// `solve_auto` (populations shrink with M to keep the grid fast).
const STATION_GRID: [(usize, [usize; 2]); 3] = [(2, [30, 60]), (3, [20, 40]), (4, [10, 20])];
/// Matrix-free frontier grid (`(M, population)` points); the full grid ends
/// at 742k states, far past where assembling the CSR generator is sensible.
const FRONTIER_GRID: [(usize, usize); 4] = [(3, 40), (3, 60), (4, 20), (4, 30)];
/// Fast-mode frontier grid: the two points that still cross-check vs CSR.
const FRONTIER_GRID_FAST: [(usize, usize); 2] = [(3, 40), (4, 20)];
/// Largest state count where the CSR engine is also run as a cross-check;
/// above this only the matrix-free engine solves the point.
const CSR_CROSSCHECK_MAX_STATES: usize = 200_000;

struct Record {
    stations: usize,
    population: usize,
    states: usize,
    transitions: usize,
    method: &'static str,
    median_ms: f64,
    throughput: f64,
}

/// One point of the matrix-free states-vs-cost frontier. Memory figures are
/// analytic working-set sizes (not RSS): the matrix-free engine holds three
/// state-length `f64` vectors, the CSR engine additionally materializes the
/// generator (`nnz` value/column pairs plus a row-pointer array).
struct FrontierPoint {
    stations: usize,
    population: usize,
    states: usize,
    matfree_ms: f64,
    iterations: usize,
    sweeps_matrix_free: usize,
    final_residual: f64,
    trace_id: u64,
    trace_events: usize,
    throughput: f64,
    matfree_peak_bytes: usize,
    csr_ms: Option<f64>,
    csr_nnz: Option<usize>,
    csr_peak_bytes: usize,
    csr_bytes_estimated: bool,
    rel_gap: Option<f64>,
}

/// CSR working set: `nnz` (f64 value + usize column) entries, a row-pointer
/// array, and the same three iteration vectors the matrix-free engine uses.
fn csr_peak_bytes(states: usize, nnz: usize) -> usize {
    nnz * 16 + (states + 1) * 8 + states * 8 * 3
}

/// JSON summary of the frontier: its largest point, the worst cross-check
/// disagreement, and the worker count the timings were taken with (this
/// container exposes a single hardware thread, so wall-clock speedup from
/// partitioning is machine-bound; the memory ratio is not).
fn frontier_summary(frontier: &[FrontierPoint]) -> JsonObject {
    let largest = frontier.iter().max_by_key(|p| p.states).expect("non-empty");
    let worst_gap = frontier
        .iter()
        .filter_map(|p| p.rel_gap)
        .fold(0.0_f64, f64::max);
    JsonObject::new()
        .field("stations", largest.stations)
        .field("population", largest.population)
        .field("states", largest.states)
        .field("matfree_ms", JsonValue::f(largest.matfree_ms, 3))
        .field("iterations", largest.iterations)
        .field("matfree_peak_bytes", largest.matfree_peak_bytes)
        .field("csr_peak_bytes", largest.csr_peak_bytes)
        .field("csr_bytes_estimated", largest.csr_bytes_estimated)
        .field(
            "memory_ratio",
            JsonValue::f(
                largest.csr_peak_bytes as f64 / largest.matfree_peak_bytes as f64,
                2,
            ),
        )
        .field("worst_csr_rel_gap", JsonValue::sci(worst_gap, 3))
        .field("workers", burstcap_qn::matfree::default_workers())
}

fn median_ms(reps: usize, mut solve: impl FnMut() -> Result<MapQnSolution, QnError>) -> (f64, f64) {
    let mut times: Vec<f64> = Vec::with_capacity(reps);
    let mut throughput = 0.0;
    for _ in 0..reps {
        let t0 = Stopwatch::start();
        let sol = solve().expect("benchmark instance must solve");
        times.push(t0.elapsed_ms());
        throughput = sol.throughput;
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[times.len() / 2], throughput)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let fast = std::env::var_os("BURSTCAP_BENCH_FAST").is_some_and(|v| v != "0");
    let reps = if fast { 1 } else { 3 };

    // Moderately bursty MAP(2) fits (converging regime for the sparse
    // engine); the same shapes the ctmc_sparse bench uses.
    let front = Map2Fitter::new(0.01, 8.0, 0.03)
        .fit()
        .expect("feasible")
        .map();
    let db = Map2Fitter::new(0.008, 12.0, 0.02)
        .fit()
        .expect("feasible")
        .map();
    let think = 0.3;

    let mut records: Vec<Record> = Vec::new();
    let mut push = |net: &MapNetwork, method: &'static str, median: f64, x: f64| {
        records.push(Record {
            stations: net.station_count(),
            population: net.population(),
            states: net.state_count(),
            transitions: net.outgoing_csr().expect("assembles").nnz(),
            method,
            median_ms: median,
            throughput: x,
        });
    };

    println!(
        "{}",
        burstcap_bench::header("bench_baseline: dense LU vs sparse CSR engine")
    );
    let mut dense_at_largest = 0.0;
    let mut sparse_at_largest = 0.0;
    let mut agreement = 0.0;
    for &pop in &DENSE_FEASIBLE_POPS {
        let net = MapNetwork::new(pop, think, front, db).expect("valid network");
        let (lu_ms, lu_x) = median_ms(reps, || {
            net.solve_iterative(SteadyStateMethod::DenseLu { limit: 1_000_000 })
        });
        let (gs_ms, gs_x) = median_ms(reps, || net.solve_sparse());
        push(&net, "dense_lu", lu_ms, lu_x);
        push(&net, "sparse_gauss_seidel", gs_ms, gs_x);
        println!(
            "{}",
            burstcap_bench::row(
                &format!("pop {pop} ({} states)", net.state_count()),
                &[
                    format!("LU {lu_ms:.1} ms"),
                    format!("GS {gs_ms:.1} ms"),
                    format!("{:.1}x", lu_ms / gs_ms),
                ],
            )
        );
        if pop == *DENSE_FEASIBLE_POPS.last().expect("non-empty") {
            dense_at_largest = lu_ms;
            sparse_at_largest = gs_ms;
            agreement = (lu_x - gs_x).abs() / lu_x;
        }
    }

    println!(
        "{}",
        burstcap_bench::header("bench_baseline: sparse engine beyond dense reach")
    );
    for &pop in &SPARSE_POPS {
        let net = MapNetwork::new(pop, think, front, db).expect("valid network");
        let (gs_ms, gs_x) = median_ms(reps, || net.solve_sparse());
        let (direct_ms, direct_x) = median_ms(reps, || net.solve());
        push(&net, "sparse_gauss_seidel", gs_ms, gs_x);
        push(&net, "direct_level_reduction", direct_ms, direct_x);
        println!(
            "{}",
            burstcap_bench::row(
                &format!("pop {pop} ({} states)", net.state_count()),
                &[
                    format!("GS {gs_ms:.1} ms"),
                    format!("direct {direct_ms:.1} ms"),
                ],
            )
        );
    }

    println!(
        "{}",
        burstcap_bench::header("bench_baseline: station-count x population scaling (solve_auto)")
    );
    // A light extra tier reused for every station beyond the front/db pair,
    // so tandems of different length stay comparable.
    let extra = Map2Fitter::new(0.004, 4.0, 0.012)
        .fit()
        .expect("feasible")
        .map();
    let mut m3_states = 0usize;
    let mut m3_ms = 0.0;
    let mut m3_x = 0.0;
    for &(m, pops) in &STATION_GRID {
        for &pop in &pops {
            let mut stations = vec![front];
            stations.resize(m - 1, extra);
            stations.push(db);
            let net = MapNetwork::tandem(pop, think, stations).expect("valid network");
            let (auto_ms, auto_x) = median_ms(reps, || net.solve_auto(10_000));
            push(&net, "solve_auto", auto_ms, auto_x);
            println!(
                "{}",
                burstcap_bench::row(
                    &format!("M={m} pop {pop} ({} states)", net.state_count()),
                    &[format!("auto {auto_ms:.1} ms"), format!("X {auto_x:.1}")],
                )
            );
            if m == 3 && pop == pops[pops.len() - 1] {
                m3_states = net.state_count();
                m3_ms = auto_ms;
                m3_x = auto_x;
            }
        }
    }

    println!(
        "{}",
        burstcap_bench::header(
            "bench_baseline: matrix-free frontier (states vs wall-clock / memory)"
        )
    );
    // Single-shot timings: these are the longest solves in the suite, and the
    // point of the sweep is the states-vs-cost shape, not median stability.
    let frontier_grid: &[(usize, usize)] = if fast {
        &FRONTIER_GRID_FAST
    } else {
        &FRONTIER_GRID
    };
    let mut frontier: Vec<FrontierPoint> = Vec::new();
    // Transition density (nnz per state) measured at the assembled points and
    // reused to estimate CSR storage where assembly is deliberately skipped.
    let mut nnz_per_state = 0.0_f64;
    for &(m, pop) in frontier_grid {
        let mut stations = vec![front];
        stations.resize(m - 1, extra);
        stations.push(db);
        let net = MapNetwork::tandem(pop, think, stations).expect("valid network");
        let states = net.state_count();
        // Frontier solves run traced so the row mirrors the solver's own
        // diagnostics (residual, sweep split, span link) next to the
        // wall-clock figures; bench_obs pins the recorder's cost as <3%.
        let recorder = Recorder::new();
        let t0 = Stopwatch::start();
        let (sol, _pi) = net
            .solve_matrix_free_with_initial_traced(0, None, &recorder.trace())
            .expect("matrix-free solve");
        let matfree_ms = t0.elapsed_ms();
        let trace_events = recorder.events().iter().filter(|e| !e.volatile).count();
        let matfree_peak_bytes = states * 8 * 3;
        let (csr_ms, csr_nnz, rel_gap) = if states <= CSR_CROSSCHECK_MAX_STATES {
            let nnz = net.outgoing_csr().expect("assembles").nnz();
            nnz_per_state = nnz as f64 / states as f64;
            let t1 = Stopwatch::start();
            let csr = net.solve_sparse().expect("csr solve");
            let csr_ms = t1.elapsed_ms();
            let gap = (sol.throughput - csr.throughput).abs() / csr.throughput;
            assert!(
                gap < 1e-8,
                "matrix-free vs CSR disagree at M={m} pop {pop}: rel gap {gap:.3e}"
            );
            (Some(csr_ms), Some(nnz), Some(gap))
        } else {
            (None, None, None)
        };
        let (csr_bytes, estimated) = match csr_nnz {
            Some(nnz) => (csr_peak_bytes(states, nnz), false),
            // Density extrapolated from the last assembled point; marked as
            // an estimate in the JSON.
            None => (
                csr_peak_bytes(states, (nnz_per_state * states as f64) as usize),
                true,
            ),
        };
        let mb = |bytes: usize| bytes as f64 / (1024.0 * 1024.0);
        println!(
            "{}",
            burstcap_bench::row(
                &format!("M={m} pop {pop} ({states} states)"),
                &[
                    format!(
                        "matfree {matfree_ms:.1} ms / {} it",
                        sol.diagnostics.iterations
                    ),
                    match csr_ms {
                        Some(ms) => format!("CSR {ms:.1} ms"),
                        None => "CSR skipped".to_string(),
                    },
                    format!(
                        "mem {:.1} vs {:.1}{} MB",
                        mb(matfree_peak_bytes),
                        mb(csr_bytes),
                        if estimated { "~" } else { "" }
                    ),
                ],
            )
        );
        frontier.push(FrontierPoint {
            stations: m,
            population: pop,
            states,
            matfree_ms,
            iterations: sol.diagnostics.iterations,
            sweeps_matrix_free: sol.diagnostics.sweeps_per_engine.matrix_free,
            final_residual: sol.diagnostics.final_residual,
            trace_id: sol.diagnostics.trace_id,
            trace_events,
            throughput: sol.throughput,
            matfree_peak_bytes,
            csr_ms,
            csr_nnz,
            csr_peak_bytes: csr_bytes,
            csr_bytes_estimated: estimated,
            rel_gap,
        });
    }

    let speedup = dense_at_largest / sparse_at_largest;
    let largest = *DENSE_FEASIBLE_POPS.last().expect("non-empty");
    let largest_states = MapNetwork::new(largest, think, front, db)
        .expect("valid network")
        .state_count();
    println!(
        "\nsparse vs dense LU at the largest dense-feasible point \
         (pop {largest}, {largest_states} states): {speedup:.1}x, \
         throughput agreement {agreement:.2e}"
    );

    // Shared deterministic JSON writer (the vendored serde shim has no
    // serializer): every float carries an explicit precision, one field per
    // line.
    let map_obj = |mean: f64, i: f64, p95: f64| {
        JsonObject::new()
            .field("mean", JsonValue::f(mean, 3))
            .field("index_of_dispersion", JsonValue::f(i, 1))
            .field("p95", JsonValue::f(p95, 3))
    };
    let frontier_rows: Vec<JsonValue> = frontier
        .iter()
        .map(|p| {
            let mut obj = JsonObject::new()
                .field("stations", p.stations)
                .field("population", p.population)
                .field("states", p.states)
                .field("method", "matrix_free_jacobi")
                .field("matfree_ms", JsonValue::f(p.matfree_ms, 3))
                .field("iterations", p.iterations)
                .field("sweeps_matrix_free", p.sweeps_matrix_free)
                .field("final_residual", JsonValue::sci(p.final_residual, 3))
                .field("trace_id", p.trace_id)
                .field("trace_events", p.trace_events)
                .field("throughput", JsonValue::f(p.throughput, 6))
                .field("matfree_peak_bytes", p.matfree_peak_bytes)
                .field("csr_peak_bytes", p.csr_peak_bytes)
                .field("csr_bytes_estimated", p.csr_bytes_estimated);
            if let Some(ms) = p.csr_ms {
                obj = obj.field("csr_ms", JsonValue::f(ms, 3));
            }
            if let Some(nnz) = p.csr_nnz {
                obj = obj.field("csr_nnz", nnz);
            }
            if let Some(gap) = p.rel_gap {
                obj = obj.field("csr_rel_gap", JsonValue::sci(gap, 3));
            }
            obj.into()
        })
        .collect();
    let rows: Vec<JsonValue> = records
        .iter()
        .map(|r| {
            JsonObject::new()
                .field("stations", r.stations)
                .field("population", r.population)
                .field("states", r.states)
                .field("transitions", r.transitions)
                .field("method", r.method)
                .field("median_ms", JsonValue::f(r.median_ms, 3))
                .field("throughput", JsonValue::f(r.throughput, 6))
                .into()
        })
        .collect();
    let report = JsonObject::new()
        .field("bench", "bench_baseline")
        .field("seed", burstcap_bench::BASE_SEED)
        .field("front_map", map_obj(0.01, 8.0, 0.03))
        .field("db_map", map_obj(0.008, 12.0, 0.02))
        .field("extra_tier_map", map_obj(0.004, 4.0, 0.012))
        .field("think_time", JsonValue::f(think, 2))
        .field("repetitions", reps)
        .field(
            "largest_dense_feasible",
            JsonObject::new()
                .field("population", largest)
                .field("states", largest_states)
                .field("dense_lu_ms", JsonValue::f(dense_at_largest, 3))
                .field("sparse_ms", JsonValue::f(sparse_at_largest, 3))
                .field("speedup", JsonValue::f(speedup, 2))
                .field("throughput_rel_gap", JsonValue::sci(agreement, 3)),
        )
        .field(
            "three_station_point",
            JsonObject::new()
                .field("stations", 3_usize)
                .field("population", STATION_GRID[1].1[1])
                .field("states", m3_states)
                .field("solve_auto_ms", JsonValue::f(m3_ms, 3))
                .field("throughput", JsonValue::f(m3_x, 6)),
        )
        .field("matrix_free_frontier", frontier_summary(&frontier))
        .field("results", rows)
        .field("frontier_points", frontier_rows);
    burstcap_bench::json::write_report(&out_path, &report);
    println!("wrote {out_path}");
}
