//! Deterministic JSON rendering for the `BENCH_*.json` snapshots.
//!
//! The vendored serde shim has no serializer, and the bench binaries used to
//! hand-roll their JSON with `format!` — twice, divergently. This module is
//! the one shared writer: a tiny value tree with **explicit float precision**
//! (every float carries its decimal count, so output is deterministic and
//! diff-able across runs) rendered pretty with one field per line.
//!
//! One field per line is a CI contract, not just taste: the workflow re-runs
//! a bench and diffs the two files with volatile lines (`_ms`, `speedup`,
//! `windows_per_sec`, ...) filtered out by `grep`, which only works if every
//! field owns its line.

use std::fmt::Write as _;

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A float rendered with a fixed number of decimals (`{:.d$}`).
    Float {
        /// The value.
        value: f64,
        /// Decimal places.
        decimals: usize,
    },
    /// A float rendered in scientific notation (`{:.d$e}`).
    Scientific {
        /// The value.
        value: f64,
        /// Decimal places of the mantissa.
        decimals: usize,
    },
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered fields.
    Object(JsonObject),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<JsonObject> for JsonValue {
    fn from(v: JsonObject) -> Self {
        JsonValue::Object(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

impl JsonValue {
    /// A fixed-precision float field.
    pub fn f(value: f64, decimals: usize) -> Self {
        JsonValue::Float { value, decimals }
    }

    /// A scientific-notation float field.
    pub fn sci(value: f64, decimals: usize) -> Self {
        JsonValue::Scientific { value, decimals }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float { value, decimals } => {
                let _ = write!(out, "{value:.decimals$}");
            }
            JsonValue::Scientific { value, decimals } => {
                let _ = write!(out, "{value:.decimals$e}");
            }
            JsonValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(obj) => obj.render_into(out, indent),
        }
    }
}

/// An insertion-ordered JSON object built field by field.
///
/// # Example
/// ```
/// use burstcap_bench::json::{JsonObject, JsonValue};
///
/// let obj = JsonObject::new()
///     .field("bench", "demo")
///     .field("runs", 3_u64)
///     .field("speedup", JsonValue::f(1.5, 2));
/// let text = obj.render();
/// assert!(text.contains("\"speedup\": 1.50"));
/// // One field per line: the CI diff can grep volatile lines away.
/// assert_eq!(text.lines().count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JsonObject {
    fields: Vec<(&'static str, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Append a field (insertion order is rendering order).
    pub fn field(mut self, key: &'static str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Render the object pretty-printed (2-space indent, one field per
    /// line), with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        if self.fields.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push_str("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            push_indent(out, indent + 1);
            let _ = write!(out, "\"{}\": ", escape(key));
            value.render_into(out, indent + 1);
            out.push_str(if i + 1 == self.fields.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        push_indent(out, indent);
        out.push('}');
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Write a rendered snapshot to `path` — the shared tail of every bench
/// binary. Announcing the path on stdout is the caller's job (library code
/// keeps off stdout — see the `stray-print` rule).
///
/// # Panics
/// Panics if the file cannot be written (bench binaries treat an unwritable
/// snapshot as fatal).
pub fn write_report(path: &str, report: &JsonObject) {
    std::fs::write(path, report.render()).expect("write benchmark snapshot");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_one_field_per_line() {
        let obj = JsonObject::new()
            .field("name", "bench")
            .field("ok", true)
            .field("count", 3_usize)
            .field("ratio", JsonValue::f(0.123456, 3))
            .field("gap", JsonValue::sci(1.5e-9, 2))
            .field(
                "rows",
                vec![
                    JsonValue::Object(JsonObject::new().field("x", 1_u64)),
                    JsonValue::Object(JsonObject::new().field("x", 2_u64)),
                ],
            )
            .field("empty", Vec::<JsonValue>::new())
            .field("inner", JsonObject::new());
        let text = obj.render();
        assert!(text.contains("\"ratio\": 0.123"));
        assert!(text.contains("\"gap\": 1.50e-9"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"inner\": {}"));
        // Every scalar field sits on its own line.
        assert!(text.lines().any(|l| l.trim() == "\"ok\": true,"));
        assert!(text.lines().any(|l| l.trim() == "\"x\": 1"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            JsonObject::new()
                .field("a", JsonValue::f(1.0 / 3.0, 9))
                .field("b", 42_u64)
                .render()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn strings_are_escaped() {
        let obj = JsonObject::new().field("s", "a\"b\\c\nd");
        assert!(obj.render().contains("a\\\"b\\\\c\\nd"));
    }
}
