//! The workspace's single wall-clock seam.
//!
//! Wall-clock reads make runs non-reproducible, so burstcap-lint's
//! `wallclock` rule bans `Instant::now`/`SystemTime` everywhere in
//! non-test code — except here. Benchmark binaries that need to *measure*
//! solver or ingest latency (a legitimately non-deterministic quantity;
//! the measured numbers are reported, never fed back into any model) go
//! through [`Stopwatch`]. Keeping every read behind one seam means a
//! grep for `Stopwatch::start` enumerates every timing side channel in
//! the workspace.
//!
//! burstcap-lint: allow-file(wallclock) — this module IS the bench timing seam the rule confines wall-clock reads to

use std::time::Instant;

/// A started wall-clock timer for benchmark measurement.
///
/// ```
/// let sw = burstcap_bench::timing::Stopwatch::start();
/// let _ms = sw.elapsed_ms();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Time a closure, returning its result and the elapsed milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed_ms())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(b >= a && a >= 0.0);
        assert!((sw.elapsed_secs() * 1e3) >= b);
    }

    #[test]
    fn time_ms_returns_closure_result() {
        let (out, ms) = time_ms(|| 41 + 1);
        assert_eq!(out, 42);
        assert!(ms >= 0.0);
    }
}
