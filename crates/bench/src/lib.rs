//! Experiment harness shared by the per-figure/table regeneration binaries
//! and the Criterion benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the full index) and prints rows in a stable,
//! grep-friendly format. The helpers here keep run parameters consistent
//! across experiments: common seeds, run lengths, EB sweeps, and formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TestbedRun;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};
use burstcap_tpcw::TpcwError;

/// The EB sweep used by the paper's Figures 4, 10 and 12.
pub const EB_SWEEP: [usize; 6] = [25, 50, 75, 100, 125, 150];

/// Default simulated duration for sweep experiments (seconds). The paper
/// runs 3 hours per point; simulated time is cheap enough that 10 minutes
/// per point gives tight estimates, and every binary accepts an override.
pub const SWEEP_DURATION: f64 = 600.0;

/// The workspace-wide base seed: every experiment derives its streams from
/// this value so published tables regenerate identically.
pub const BASE_SEED: u64 = 20080901; // Middleware 2008 vintage.

/// Run the testbed for one `(mix, ebs)` point with harness defaults.
///
/// # Errors
/// Propagates testbed configuration/run errors.
pub fn run_testbed(
    mix: Mix,
    ebs: usize,
    duration: f64,
    seed: u64,
) -> Result<TestbedRun, TpcwError> {
    Testbed::new(TestbedConfig::new(mix, ebs).duration(duration).seed(seed))?.run()
}

/// Render a one-line table row: label column padded to 28 chars, then
/// values.
pub fn row(label: &str, values: &[String]) -> String {
    let mut out = format!("{label:<28}");
    for v in values {
        out.push_str(&format!("{v:>12}"));
    }
    out
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Render a section header for experiment output; the binary owns the
/// printing (library code keeps off stdout — see the `stray-print` rule).
#[must_use]
pub fn header(title: &str) -> String {
    format!("\n=== {title} ===")
}

pub mod figures;
pub mod json;
pub mod timing;

pub mod experiments {
    //! Shared experiment drivers for the Figure 10/11/12 reproduction
    //! binaries: measured sweeps, estimation runs, and planner assembly.

    use burstcap::measurements::TierMeasurements;
    use burstcap::planner::{CapacityPlanner, MvaBaseline, PlannerOptions};
    use burstcap::PlanError;
    use burstcap_tpcw::mix::Mix;
    use burstcap_tpcw::monitor::{TestbedRun, TierId};
    use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

    use crate::BASE_SEED;

    /// Duration of the estimation run the MAPs are fitted from (seconds of
    /// simulated time). The paper uses 3-hour runs; 1 hour of simulated
    /// time yields ~700 coarse windows, comfortably above the Figure 2
    /// algorithm's 100-window floor.
    pub const ESTIMATION_DURATION: f64 = 3600.0;

    /// Duration of each measured sweep point (seconds of simulated time).
    pub const MEASURE_DURATION: f64 = 900.0;

    /// Run the testbed once and adapt one tier's monitoring output to the
    /// planner's schema.
    pub fn tier_measurements(
        run: &TestbedRun,
        tier: TierId,
    ) -> Result<TierMeasurements, PlanError> {
        let m = run
            .monitoring(tier)
            .map_err(|e| PlanError::InvalidMeasurements {
                reason: e.to_string(),
            })?;
        TierMeasurements::new(m.resolution, m.utilization, m.completions)
    }

    /// Collect the estimation trace for a mix at the given `Z_estim` and EB
    /// count, and build both planners from it.
    ///
    /// # Errors
    /// Propagates testbed and planner failures.
    pub fn planners_from_estimation_run(
        mix: Mix,
        z_estim: f64,
        ebs_estim: usize,
        duration: f64,
        seed: u64,
    ) -> Result<(CapacityPlanner, MvaBaseline, TestbedRun), PlanError> {
        let run = Testbed::new(
            TestbedConfig::new(mix, ebs_estim)
                .think_time(z_estim)
                .duration(duration)
                .seed(seed),
        )
        .and_then(|t| t.run())
        .map_err(|e| PlanError::InvalidMeasurements {
            reason: e.to_string(),
        })?;
        let front = tier_measurements(&run, TierId::Front)?;
        let db = tier_measurements(&run, TierId::Db)?;
        let planner = CapacityPlanner::with_options(&front, &db, PlannerOptions::default())?;
        let mva = MvaBaseline::from_measurements(&front, &db)?;
        Ok((planner, mva, run))
    }

    /// Measure the real (simulated-testbed) throughput across an EB sweep.
    ///
    /// # Errors
    /// Propagates testbed failures.
    pub fn measured_sweep(
        mix: Mix,
        populations: &[usize],
        think_time: f64,
        duration: f64,
    ) -> Result<Vec<(usize, TestbedRun)>, PlanError> {
        populations
            .iter()
            .enumerate()
            .map(|(k, &ebs)| {
                let run = Testbed::new(
                    TestbedConfig::new(mix, ebs)
                        .think_time(think_time)
                        .duration(duration)
                        .seed(BASE_SEED + 100 + k as u64),
                )
                .and_then(|t| t.run())
                .map_err(|e| PlanError::InvalidMeasurements {
                    reason: e.to_string(),
                })?;
                Ok((ebs, run))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formats_padded_columns() {
        let r = row("label", &["1.0".into(), "2.0".into()]);
        assert!(r.starts_with("label"));
        assert!(r.len() >= 28 + 24);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    fn quick_testbed_run_works() {
        let run = run_testbed(Mix::Ordering, 5, 120.0, 1).unwrap();
        assert!(run.throughput > 0.0);
    }
}
