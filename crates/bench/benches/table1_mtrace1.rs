//! Criterion bench for Table 1: the M/Trace/1 Lindley-recursion simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use burstcap_map::trace::{hyperexp_trace, impose_burstiness, BurstProfile};
use burstcap_sim::queues::MTrace1;

fn bench(c: &mut Criterion) {
    let base = hyperexp_trace(20_000, 1.0, 3.0, 1).expect("valid marginal");
    let sorted = impose_burstiness(&base, BurstProfile::Sorted, 1).expect("valid");

    c.bench_function("table1/mtrace1_iid_rho05", |b| {
        b.iter(|| {
            MTrace1::new(0.5, black_box(base.clone()))
                .expect("valid")
                .run(7)
                .expect("runs")
        })
    });
    c.bench_function("table1/mtrace1_sorted_rho08", |b| {
        b.iter(|| {
            MTrace1::new(0.8, black_box(sorted.clone()))
                .expect("valid")
                .run(7)
                .expect("runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
