//! Criterion bench for the Figure 2 index-of-dispersion estimator (the
//! per-measurement cost of the methodology), its ablation over stopping
//! tolerances, and the window-aggregation kernel (sliding-window rewrite vs
//! the naive rescan it replaced).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap_stats::dispersion::{aggregate_counts, aggregate_counts_naive, DispersionEstimator};

fn synthetic_windows(n: usize) -> (Vec<f64>, Vec<u64>) {
    // Regime-switching counts resembling a bursty tier.
    let mut util = Vec::with_capacity(n);
    let mut counts = Vec::with_capacity(n);
    for k in 0..n {
        let bursty = (k / 40) % 2 == 0;
        util.push(if bursty { 0.95 } else { 0.55 });
        counts.push(if bursty { 60 } else { 260 });
    }
    (util, counts)
}

fn bench(c: &mut Criterion) {
    let (util, counts) = synthetic_windows(720);
    let mut group = c.benchmark_group("dispersion");
    for tol in [0.05, 0.2, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("estimate_720w_tol", format!("{tol}")),
            &tol,
            |b, &tol| {
                b.iter(|| {
                    DispersionEstimator::new(5.0)
                        .tolerance(tol)
                        .estimate(black_box(&util), black_box(&counts))
                        .expect("estimates")
                })
            },
        );
    }
    group.finish();
}

/// The aggregation kernel on a long trace at a deep aggregation level —
/// exactly the regime where the naive rescan went quadratic (every start
/// rescans ~`level` windows). The sliding-window rewrite is O(n) per level.
fn bench_aggregation(c: &mut Criterion) {
    let n = 20_000;
    let (util, counts) = synthetic_windows(n);
    let busy: Vec<f64> = util.iter().map(|u| u * 5.0).collect();
    let mut group = c.benchmark_group("aggregate_counts");
    for level in [8usize, 64] {
        let t = level as f64 * 5.0;
        group.bench_with_input(
            BenchmarkId::new("sliding_20k", format!("level{level}")),
            &t,
            |b, &t| b.iter(|| aggregate_counts(black_box(&busy), black_box(&counts), t)),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_20k", format!("level{level}")),
            &t,
            |b, &t| b.iter(|| aggregate_counts_naive(black_box(&busy), black_box(&counts), t)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench, bench_aggregation
}
criterion_main!(benches);
