//! Criterion bench for the Figure 2 index-of-dispersion estimator (the
//! per-measurement cost of the methodology) and its ablation over stopping
//! tolerances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap_stats::dispersion::DispersionEstimator;

fn synthetic_windows(n: usize) -> (Vec<f64>, Vec<u64>) {
    // Regime-switching counts resembling a bursty tier.
    let mut util = Vec::with_capacity(n);
    let mut counts = Vec::with_capacity(n);
    for k in 0..n {
        let bursty = (k / 40) % 2 == 0;
        util.push(if bursty { 0.95 } else { 0.55 });
        counts.push(if bursty { 60 } else { 260 });
    }
    (util, counts)
}

fn bench(c: &mut Criterion) {
    let (util, counts) = synthetic_windows(720);
    let mut group = c.benchmark_group("dispersion");
    for tol in [0.05, 0.2, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("estimate_720w_tol", format!("{tol}")),
            &tol,
            |b, &tol| {
                b.iter(|| {
                    DispersionEstimator::new(5.0)
                        .tolerance(tol)
                        .estimate(black_box(&util), black_box(&counts))
                        .expect("estimates")
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
