//! Criterion bench comparing the steady-state solvers on the MAP queueing
//! network (the DESIGN.md solver ablation): exact block level-reduction
//! versus dense LU versus Gauss-Seidel on a well-conditioned instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap_map::fit::Map2Fitter;
use burstcap_qn::ctmc::{Ctmc, SteadyStateMethod};
use burstcap_qn::mapqn::MapNetwork;

fn bench(c: &mut Criterion) {
    let front = Map2Fitter::new(0.005, 40.0, 0.015)
        .fit()
        .expect("feasible")
        .map();
    let db = Map2Fitter::new(0.004, 120.0, 0.012)
        .fit()
        .expect("feasible")
        .map();

    let mut group = c.benchmark_group("mapqn_solver");
    for &pop in &[25usize, 50, 100] {
        group.bench_with_input(BenchmarkId::new("block_direct", pop), &pop, |b, &pop| {
            let net = MapNetwork::new(pop, 0.5, front, db).expect("valid");
            b.iter(|| black_box(&net).solve().expect("solves"))
        });
    }
    // Dense LU only fits small populations; Gauss-Seidel needs a
    // well-conditioned (exponential) instance to converge.
    let small = MapNetwork::new(10, 0.5, front, db).expect("valid");
    group.bench_function("dense_lu_pop10", |b| {
        b.iter(|| {
            black_box(&small)
                .solve_iterative(SteadyStateMethod::DenseLu { limit: 100_000 })
                .expect("solves")
        })
    });
    group.finish();

    // Iterative-vs-direct comparison on a well-conditioned common instance
    // (an M/M/1/400 birth-death chain) where both converge reliably.
    let mut tr = Vec::new();
    for i in 0..400 {
        tr.push((i, i + 1, 3.0));
        tr.push((i + 1, i, 4.0));
    }
    let chain = Ctmc::from_transitions(401, tr).expect("valid chain");
    let mut iterative = c.benchmark_group("ctmc_solver");
    iterative.bench_function("gauss_seidel_birth_death_401", |b| {
        b.iter(|| {
            black_box(&chain)
                .steady_state(SteadyStateMethod::default())
                .expect("converges")
        })
    });
    iterative.bench_function("dense_lu_birth_death_401", |b| {
        b.iter(|| {
            black_box(&chain)
                .steady_state(SteadyStateMethod::DenseLu { limit: 1000 })
                .expect("solves")
        })
    });
    iterative.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
