//! Criterion bench for the sparse CTMC engine: CSR assembly, transpose, and
//! the sparse Gauss-Seidel solve versus the dense LU oracle on the MAP
//! queueing network (the scaling story of the ARCHITECTURE.md "sparse
//! engine" section).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap_map::fit::Map2Fitter;
use burstcap_qn::ctmc::{Ctmc, SteadyStateMethod};
use burstcap_qn::mapqn::MapNetwork;

fn bench(c: &mut Criterion) {
    // Moderately bursty fits: stiff enough to be representative, mild
    // enough that the iterative engine converges.
    let front = Map2Fitter::new(0.01, 8.0, 0.03)
        .fit()
        .expect("feasible")
        .map();
    let db = Map2Fitter::new(0.008, 12.0, 0.02)
        .fit()
        .expect("feasible")
        .map();

    let mut group = c.benchmark_group("ctmc_sparse");
    // Streaming CSR assembly of the generator (no triplet list).
    for &pop in &[25usize, 50] {
        group.bench_with_input(BenchmarkId::new("csr_assembly", pop), &pop, |b, &pop| {
            let net = MapNetwork::new(pop, 0.3, front, db).expect("valid");
            b.iter(|| black_box(&net).outgoing_csr().expect("assembles"))
        });
    }
    // O(nnz) transpose, the cost of turning outgoing into incoming adjacency.
    {
        let net = MapNetwork::new(50, 0.3, front, db).expect("valid");
        let csr = net.outgoing_csr().expect("assembles");
        group.bench_function("transpose_pop50", |b| {
            b.iter(|| black_box(&csr).transpose())
        });
    }
    // The sparse production solve at populations dense LU cannot touch.
    for &pop in &[25usize, 50] {
        group.bench_with_input(BenchmarkId::new("sparse_gs", pop), &pop, |b, &pop| {
            let net = MapNetwork::new(pop, 0.3, front, db).expect("valid");
            b.iter(|| black_box(&net).solve_sparse().expect("converges"))
        });
    }
    // The dense oracle at a size it still handles, for the crossover story.
    group.bench_function("dense_lu_pop15", |b| {
        let net = MapNetwork::new(15, 0.3, front, db).expect("valid");
        b.iter(|| {
            black_box(&net)
                .solve_iterative(SteadyStateMethod::DenseLu { limit: 100_000 })
                .expect("solves")
        })
    });
    // Uniformized power iteration on a well-conditioned mid-size chain.
    group.bench_function("power_birth_death_401", |b| {
        let mut tr = Vec::new();
        for i in 0..400 {
            tr.push((i, i + 1, 3.0));
            tr.push((i + 1, i, 4.0));
        }
        let chain = Ctmc::from_transitions(401, tr).expect("valid chain");
        b.iter(|| {
            black_box(&chain)
                .steady_state(SteadyStateMethod::power(1e-10, 2_000_000))
                .expect("converges")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
