//! Criterion bench for the discrete-event substrate: raw event-calendar
//! throughput and full testbed simulation speed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use burstcap_sim::engine::EventQueue;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn bench(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut t = 1.0_f64;
            for k in 0..100_000u64 {
                // Pseudo-random but deterministic times.
                t = (t * 1103515245.0 + k as f64) % 1000.0;
                q.schedule(t, k);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    c.bench_function("testbed/browsing_100ebs_150s", |b| {
        b.iter(|| {
            Testbed::new(
                TestbedConfig::new(Mix::Browsing, 100)
                    .duration(150.0)
                    .seed(1),
            )
            .expect("valid")
            .run()
            .expect("runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
