//! Criterion bench for the Section 4.1 MAP(2) fitting search, including a
//! denser-grid ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap_map::fit::Map2Fitter;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_fitting");
    for &i in &[3.0, 40.0, 308.0] {
        group.bench_with_input(BenchmarkId::new("fit_target_i", i as u64), &i, |b, &i| {
            b.iter(|| {
                Map2Fitter::new(black_box(0.005), black_box(i), black_box(0.015))
                    .fit()
                    .expect("feasible")
            })
        });
    }
    // Ablation: a denser candidate grid (finer p95 selection) vs the default.
    group.bench_function("fit_dense_grid", |b| {
        b.iter(|| {
            Map2Fitter::new(0.005, 100.0, 0.015)
                .scv_grid_size(32)
                .p_grid_size(24)
                .fit()
                .expect("feasible")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
