//! Criterion bench for the Figure 12 prediction step: one exact MAP-QN
//! solve per sweep population with realistic fitted processes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap_map::fit::Map2Fitter;
use burstcap_qn::mapqn::MapNetwork;

fn bench(c: &mut Criterion) {
    // Descriptors in the range the browsing-mix estimation produces.
    let front = Map2Fitter::new(0.0051, 2.0, 0.0125)
        .fit()
        .expect("feasible")
        .map();
    let db = Map2Fitter::new(0.0042, 59.0, 0.0115)
        .fit()
        .expect("feasible")
        .map();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for &pop in &[25usize, 75, 150] {
        group.bench_with_input(BenchmarkId::new("mapqn_solve", pop), &pop, |b, &pop| {
            let net = MapNetwork::new(pop, 0.5, front, db).expect("valid");
            b.iter(|| black_box(&net).solve().expect("solves"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
