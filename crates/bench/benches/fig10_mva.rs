//! Criterion bench for the Figure 10 baseline: exact MVA solution cost
//! across the EB sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap_qn::mva::ClosedMva;

fn bench(c: &mut Criterion) {
    let mva = ClosedMva::new(vec![0.0052, 0.0042], 0.5).expect("valid");
    let mut group = c.benchmark_group("fig10");
    for &pop in &[25usize, 150, 1000] {
        group.bench_with_input(BenchmarkId::new("mva_exact", pop), &pop, |b, &pop| {
            b.iter(|| black_box(&mva).solve(pop).expect("solves"))
        });
    }
    group.bench_function("mva_schweitzer_pop1000", |b| {
        b.iter(|| black_box(&mva).solve_schweitzer(1000).expect("converges"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);
