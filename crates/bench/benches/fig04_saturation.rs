//! Criterion bench for the Figure 4 experiment: one testbed sweep point per
//! mix (reduced duration so the bench stays fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap_bench::run_testbed;
use burstcap_tpcw::mix::Mix;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04");
    for mix in Mix::ALL {
        group.bench_with_input(
            BenchmarkId::new("testbed_100ebs_120s", mix.name()),
            &mix,
            |b, &mix| b.iter(|| run_testbed(black_box(mix), 100, 120.0, 1).expect("runs")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
