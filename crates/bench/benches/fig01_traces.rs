//! Criterion bench for the Figure 1 pipeline: trace generation, burstiness
//! imposition, and index-of-dispersion measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use burstcap_map::trace::{balanced_p_small, hyperexp_trace, impose_burstiness, BurstProfile};
use burstcap_stats::dispersion::index_of_dispersion_counting;

fn bench(c: &mut Criterion) {
    let base = hyperexp_trace(20_000, 1.0, 3.0, 1).expect("valid marginal");
    let p_small = balanced_p_small(3.0).expect("valid scv");

    c.bench_function("fig01/generate_20k_trace", |b| {
        b.iter(|| hyperexp_trace(black_box(20_000), 1.0, 3.0, 1).expect("valid"))
    });
    c.bench_function("fig01/impose_modulated_burstiness", |b| {
        b.iter(|| {
            impose_burstiness(
                black_box(&base),
                BurstProfile::Modulated {
                    p_small,
                    gamma: 0.995,
                },
                1,
            )
            .expect("valid")
        })
    });
    c.bench_function("fig01/measure_dispersion", |b| {
        b.iter(|| index_of_dispersion_counting(black_box(&base), 30.0, 0.2).expect("converges"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
