//! Criterion bench for the Figure 11 pipeline: full characterize + fit from
//! a monitoring trace at each estimation granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use burstcap::measurements::TierMeasurements;
use burstcap::planner::CapacityPlanner;
use burstcap_bench::experiments::tier_measurements;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TierId;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn collect(z_estim: f64) -> (TierMeasurements, TierMeasurements) {
    let run = Testbed::new(
        TestbedConfig::new(Mix::Browsing, 50)
            .think_time(z_estim)
            .duration(900.0)
            .seed(5),
    )
    .expect("valid")
    .run()
    .expect("runs");
    (
        tier_measurements(&run, TierId::Front).expect("front"),
        tier_measurements(&run, TierId::Db).expect("db"),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    for &z in &[0.5, 7.0] {
        let (front, db) = collect(z);
        group.bench_with_input(
            BenchmarkId::new("characterize_and_fit_zestim", format!("{z}")),
            &z,
            |b, _| {
                b.iter(|| {
                    CapacityPlanner::from_measurements(black_box(&front), black_box(&db))
                        .expect("plans")
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
