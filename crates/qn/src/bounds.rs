//! Asymptotic and balanced-job bounds for closed networks.
//!
//! The paper notes (Section 4.2) that very large populations push exact
//! solvers past their limits and recommends bounding techniques. This module
//! provides the classical operational bounds that need only mean demands —
//! useful sanity envelopes around both the MVA and the MAP-model predictions.

use serde::{Deserialize, Serialize};

use crate::QnError;

/// Throughput bounds for one population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputBounds {
    /// Optimistic bound: `min(N / (Z + sum D), 1 / D_max)`.
    pub upper: f64,
    /// Pessimistic bound: `N / (Z + sum D + (N - 1) * D_max)` — every extra
    /// customer queues behind all others at the bottleneck.
    pub lower: f64,
    /// Balanced-job upper bound (tighter than asymptotic when demands are
    /// close to balanced).
    pub balanced_upper: f64,
}

/// Compute classical asymptotic + balanced-job throughput bounds.
///
/// # Errors
/// Rejects empty or non-positive demands, negative think time, and zero
/// population.
///
/// # Example
/// ```
/// let b = burstcap_qn::bounds::throughput_bounds(&[0.01, 0.004], 0.5, 100)?;
/// assert!(b.lower <= b.upper);
/// assert!(b.upper <= 100.0 + 1e-9); // bottleneck limits to 1/0.01
/// # Ok::<(), burstcap_qn::QnError>(())
/// ```
///
/// # Panics
///
/// Only if a justified internal invariant is violated (2 reachable
/// panic sites, e.g. `crates/qn/src/bounds.rs:74`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn throughput_bounds(
    demands: &[f64],
    think_time: f64,
    population: usize,
) -> Result<ThroughputBounds, QnError> {
    if demands.is_empty() || demands.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
        return Err(QnError::InvalidParameter {
            name: "demands",
            reason: "demands must be non-empty, positive, finite".into(),
        });
    }
    if think_time < 0.0 || !think_time.is_finite() {
        return Err(QnError::InvalidParameter {
            name: "think_time",
            reason: format!("must be non-negative, got {think_time}"),
        });
    }
    if population == 0 {
        return Err(QnError::InvalidParameter {
            name: "population",
            reason: "population must be at least 1".into(),
        });
    }
    let n = population as f64;
    let total: f64 = demands.iter().sum();
    let d_max = demands.iter().cloned().fold(0.0, f64::max);
    let d_avg = total / demands.len() as f64;

    let upper = (n / (think_time + total)).min(1.0 / d_max);
    let lower = n / (think_time + total + (n - 1.0) * d_max);
    // Balanced-job upper bound: throughput is Schur-concave in the demand
    // vector, so the balanced network (every station at D_avg, same total
    // demand) attains the maximum throughput — its exact MVA solution is a
    // valid upper bound, tightened by the bottleneck asymptote.
    let balanced = crate::mva::ClosedMva::new(vec![d_avg; demands.len()], think_time)
        // burstcap-lint: allow(panic-in-lib) — equal positive demands and a validated think time cannot be rejected
        .expect("balanced demands are valid by construction")
        .solve(population)
        // burstcap-lint: allow(panic-in-lib) — the population was validated at function entry
        .expect("population validated above");
    let balanced_upper = balanced.throughput.min(upper);

    Ok(ThroughputBounds {
        upper,
        lower,
        balanced_upper,
    })
}

/// The population `N*` beyond which the bottleneck saturates:
/// `N* = (Z + sum D) / D_max`.
///
/// # Errors
/// Same domain as [`throughput_bounds`].
///
/// # Panics
///
/// Only if a justified internal invariant is violated (2 reachable
/// panic sites, e.g. `crates/qn/src/bounds.rs:74`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn saturation_population(demands: &[f64], think_time: f64) -> Result<f64, QnError> {
    let b = throughput_bounds(demands, think_time, 1)?;
    let _ = b;
    let total: f64 = demands.iter().sum();
    let d_max = demands.iter().cloned().fold(0.0, f64::max);
    Ok((think_time + total) / d_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::ClosedMva;

    #[test]
    fn bounds_bracket_exact_mva() {
        let demands = vec![0.012, 0.005];
        let z = 0.5;
        let mva = ClosedMva::new(demands.clone(), z).unwrap();
        for n in [1, 10, 40, 100, 300] {
            let x = mva.solve(n).unwrap().throughput;
            let b = throughput_bounds(&demands, z, n).unwrap();
            assert!(x <= b.upper + 1e-9, "N={n}: X={x} above upper {}", b.upper);
            assert!(x >= b.lower - 1e-9, "N={n}: X={x} below lower {}", b.lower);
            assert!(
                x <= b.balanced_upper + 1e-6,
                "N={n}: X={x} above bjb {}",
                b.balanced_upper
            );
        }
    }

    #[test]
    fn light_load_bounds_coincide() {
        let b = throughput_bounds(&[0.01, 0.01], 1.0, 1).unwrap();
        assert!((b.upper - b.lower).abs() < 1e-12);
    }

    #[test]
    fn heavy_load_upper_is_bottleneck() {
        let b = throughput_bounds(&[0.02, 0.01], 0.1, 10_000).unwrap();
        assert!((b.upper - 50.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_population_formula() {
        let n_star = saturation_population(&[0.01, 0.004], 0.5).unwrap();
        assert!((n_star - 51.4).abs() < 0.01, "N* = {n_star}");
    }

    #[test]
    fn validation() {
        assert!(throughput_bounds(&[], 0.5, 1).is_err());
        assert!(throughput_bounds(&[0.0], 0.5, 1).is_err());
        assert!(throughput_bounds(&[0.1], -0.5, 1).is_err());
        assert!(throughput_bounds(&[0.1], 0.5, 0).is_err());
    }
}
