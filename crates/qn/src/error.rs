use std::error::Error;
use std::fmt;

/// Errors produced by the analytic solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QnError {
    /// A model parameter is outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NoConvergence {
        /// Which solver failed.
        solver: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual at the final iteration.
        residual: f64,
    },
    /// The state space exceeds the configured limit.
    StateSpaceTooLarge {
        /// Number of states the model would need.
        states: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for QnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QnError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            QnError::NoConvergence {
                solver,
                iterations,
                residual,
            } => write!(
                f,
                "{solver} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            QnError::StateSpaceTooLarge { states, limit } => {
                write!(f, "state space of {states} states exceeds limit {limit}")
            }
        }
    }
}

impl Error for QnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QnError::NoConvergence {
            solver: "gauss-seidel",
            iterations: 10,
            residual: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("gauss-seidel") && s.contains("10"));
    }

    #[test]
    fn error_traits() {
        fn check<T: Error + Send + Sync>() {}
        check::<QnError>();
    }
}
