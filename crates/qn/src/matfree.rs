//! Matrix-free parallel steady-state engine.
//!
//! The CSR engine in [`crate::ctmc`] materializes the generator: `O(nnz)`
//! memory, with `nnz ≈ (2 + 3M) · states` for an `M`-station tandem. Past
//! ~10⁵ states those arrays dominate the footprint and the single-threaded
//! sweep dominates the wall clock. This module removes both limits:
//!
//! * the iterative solvers consume an **operator** — the [`ApplyQ`] trait —
//!   instead of a concrete [`CsrMatrix`](crate::csr::CsrMatrix), so the
//!   generator never has to exist as data;
//! * [`MatrixFreeGenerator`] implements that trait for the closed tandem MAP
//!   network by regenerating each state's *incoming* transitions on the fly
//!   from the per-station `Map2` factors and the combinatorial ranking of
//!   [`crate::mapqn`] — `O(states · M)` work per sweep and `O(states)`
//!   memory total (one exit-rate vector plus the two iterate vectors);
//! * [`steady_state`] runs a damped **Jacobi** sweep (or uniformized power
//!   iteration) with the row range partitioned across scoped threads. Jacobi
//!   — unlike Gauss-Seidel — reads only the previous iterate, so row ranges
//!   are embarrassingly parallel and every row is written by exactly one
//!   worker.
//!
//! # Determinism across worker counts
//!
//! Each row's inflow is accumulated in a fixed order (think arrival, then
//! stations in tandem order) that does not depend on how the rows are
//! partitioned, and normalization and the residual run as serial passes.
//! The iterates are therefore **bit-identical** for any worker count,
//! including the 1-thread degenerate case — asserted by the property tests
//! and what makes a forced multi-worker CI run meaningful on a single-core
//! container.
//!
//! # Convergence
//!
//! The damped Jacobi fixed-point operator shares the structure of the
//! Gauss-Seidel sweep in [`crate::ctmc`]: the undamped operator has its
//! Perron eigenvalue at 1 with non-principal modes that can sit *on* the
//! unit circle for the quasi-birth-death chains MAP networks generate;
//! damping (`omega < 1`) pulls those modes strictly inside, restoring
//! convergence at a negligible cost elsewhere. Stalls on extremely stiff
//! chains are still possible and surface as [`QnError::NoConvergence`] —
//! [`crate::mapqn::MapNetwork::solve_auto`] handles the fallback.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use burstcap_map::Map2;
use burstcap_obs::{metrics, Trace};

use crate::ctmc::Ctmc;
use crate::mapqn::{next_occupancy, phase_of, with_phase, StateIndexer};
use crate::QnError;

/// A CTMC generator presented as an operator: everything the iterative
/// solvers need, with no commitment to how transitions are stored (or
/// whether they are stored at all).
///
/// Implementations must be [`Sync`]: [`steady_state`] shares the operator
/// across scoped worker threads.
pub trait ApplyQ: Sync {
    /// Number of states of the chain.
    fn n_states(&self) -> usize;

    /// Per-state total exit rates (the negated generator diagonal).
    fn exit_rates(&self) -> &[f64];

    /// Compute the inflow `(Q^T x)_i = Σ_j x_j · q_ji` for every row `i` in
    /// `rows`, writing row `i` to `out[i - rows.start]`. `out.len()` must
    /// equal `rows.len()`. Implementations must accumulate each row in an
    /// order independent of `rows` so partitioned applies are bit-identical
    /// to a full-range apply.
    fn inflow_into(&self, x: &[f64], rows: Range<usize>, out: &mut [f64]);
}

/// The CSR-backed chain is itself a valid operator (used by the property
/// tests to pin the matrix-free implementation against explicit assembly,
/// and handy when the generator is already materialized anyway).
impl ApplyQ for Ctmc {
    fn n_states(&self) -> usize {
        self.len()
    }

    fn exit_rates(&self) -> &[f64] {
        self.out_rates()
    }

    fn inflow_into(&self, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), rows.len());
        for (slot, i) in out.iter_mut().zip(rows) {
            let (cols, vals) = self.incoming_csr().row_slices(i);
            let mut inflow = 0.0;
            for (&j, &q) in cols.iter().zip(vals) {
                inflow += x[j] * q;
            }
            *slot = inflow;
        }
    }
}

/// Matrix-free generator of a closed tandem MAP network: applies `Q^T`
/// directly from the per-station [`Map2`] factors and the combinatorial
/// state ranking, without assembling CSR arrays.
///
/// Built by [`crate::mapqn::MapNetwork::matrix_free`]. Memory: one `f64`
/// per state (the exit rates) plus the `O(N·M)` ranking table.
#[derive(Debug, Clone)]
pub struct MatrixFreeGenerator {
    population: usize,
    think_rate: f64,
    stations: Vec<Map2>,
    idx: StateIndexer,
    n_states: usize,
    out_rate: Vec<f64>,
}

impl MatrixFreeGenerator {
    /// Assemble the operator: the only per-state precomputation is the exit
    /// rate (`(N - total) / Z` plus `-d0[p][p]` of every busy station).
    pub(crate) fn build(
        population: usize,
        think_time: f64,
        stations: Vec<Map2>,
        idx: StateIndexer,
    ) -> Self {
        let m = stations.len();
        let phases = idx.phases;
        let n_states = idx.state_count();
        let think_rate = 1.0 / think_time;
        let mut out_rate = vec![0.0; n_states];
        let mut occ = vec![0usize; m];
        let mut base = 0usize;
        loop {
            let total: usize = occ.iter().sum();
            let think_exit = (population - total) as f64 * think_rate;
            for q in 0..phases {
                let mut exit = think_exit;
                for (i, st) in stations.iter().enumerate() {
                    if occ[i] > 0 {
                        let p = phase_of(q, i, m);
                        exit += -st.d0()[p][p];
                    }
                }
                out_rate[base + q] = exit;
            }
            base += phases;
            if !next_occupancy(&mut occ, total, population) {
                break;
            }
        }
        MatrixFreeGenerator {
            population,
            think_rate,
            stations,
            idx,
            n_states,
            out_rate,
        }
    }
}

impl ApplyQ for MatrixFreeGenerator {
    fn n_states(&self) -> usize {
        self.n_states
    }

    fn exit_rates(&self) -> &[f64] {
        &self.out_rate
    }

    /// Gather form of the generator apply: for each destination state the
    /// incoming transitions are (a) a think arrival from `occ - e_0`, (b) a
    /// hidden phase flip at each busy station (same occupancy), (c) a
    /// completion hand-off from `occ + e_i - e_{i+1}` for every interior
    /// station with `occ[i+1] > 0`, and (d) a last-station completion from
    /// `occ + e_last` when the network is not full. Each row is written by
    /// exactly one caller, so partitioned applies never race.
    fn inflow_into(&self, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), rows.len());
        if rows.is_empty() {
            return;
        }
        let m = self.stations.len();
        let phases = self.idx.phases;
        let n = self.population;
        // Seed the occupancy walk at the first phase block the range
        // touches; `unrank` is O(N·M) and runs once per call.
        let mut occ = self.idx.unrank(rows.start / phases);
        let mut block = (rows.start / phases) * phases;
        let mut scratch = vec![0usize; m];
        let mut comp_src = vec![usize::MAX; m];
        while block < rows.end {
            let total: usize = occ.iter().sum();
            // Phase-independent source bases, computed once per occupancy.
            let think_src = if occ[0] > 0 {
                scratch.copy_from_slice(&occ);
                scratch[0] -= 1;
                // The source has total - 1 jobs queued, so n - total + 1
                // thinking customers feed the arrival.
                let rate = (n - total + 1) as f64 * self.think_rate;
                Some((self.idx.occ_rank(&scratch) * phases, rate))
            } else {
                None
            };
            for i in 0..m - 1 {
                comp_src[i] = if occ[i + 1] > 0 {
                    scratch.copy_from_slice(&occ);
                    scratch[i] += 1;
                    scratch[i + 1] -= 1;
                    self.idx.occ_rank(&scratch) * phases
                } else {
                    usize::MAX
                };
            }
            let last_src = if total < n {
                scratch.copy_from_slice(&occ);
                scratch[m - 1] += 1;
                self.idx.occ_rank(&scratch) * phases
            } else {
                usize::MAX
            };
            // Clip the phase block to the requested row range (a partition
            // boundary may fall inside a block).
            let q_lo = rows.start.saturating_sub(block).min(phases);
            let q_hi = (rows.end - block).min(phases);
            for q in q_lo..q_hi {
                let mut inflow = 0.0;
                if let Some((base, rate)) = think_src {
                    inflow += rate * x[base + q];
                }
                for (i, st) in self.stations.iter().enumerate() {
                    let p = phase_of(q, i, m);
                    if occ[i] > 0 {
                        let hidden = st.d0()[1 - p][p];
                        if hidden > 0.0 {
                            inflow += hidden * x[block + with_phase(q, i, 1 - p, m)];
                        }
                    }
                    let src_base = if i + 1 < m { comp_src[i] } else { last_src };
                    if src_base != usize::MAX {
                        let d1 = st.d1();
                        for p_src in 0..2 {
                            let rate = d1[p_src][p];
                            if rate > 0.0 {
                                inflow += rate * x[src_base + with_phase(q, i, p_src, m)];
                            }
                        }
                    }
                }
                out[block + q - rows.start] = inflow;
            }
            block += phases;
            if !next_occupancy(&mut occ, total, n) {
                break;
            }
        }
    }
}

/// Iterative method selection for the matrix-free engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatFreeMethod {
    /// Damped Jacobi sweeps on the global balance equations — the parallel
    /// analogue of the CSR engine's Gauss-Seidel (Jacobi reads only the
    /// previous iterate, so rows partition freely across threads).
    /// `omega < 1` is required for convergence on the stiff quasi-birth-
    /// death chains of this workspace (see the module docs).
    Jacobi {
        /// Damping factor in `(0, 2)`; prefer `< 1`.
        omega: f64,
        /// Convergence tolerance on the scale-free L1 balance residual.
        tol: f64,
        /// Sweep budget.
        max_iter: usize,
    },
    /// Power iteration on the uniformized chain `P = I + Q / lambda`
    /// (`lambda` slightly above the largest exit rate).
    Power {
        /// Convergence tolerance on the scale-free L1 balance residual.
        tol: f64,
        /// Iteration budget.
        max_iter: usize,
    },
}

impl Default for MatFreeMethod {
    fn default() -> Self {
        // Same damping and residual target as the production CSR
        // Gauss-Seidel engine (solve_sparse_with_initial): 1e-12 on the
        // scale-free balance residual keeps throughput within 1e-8 of the
        // direct solver. Jacobi needs roughly 2x the sweeps of Gauss-Seidel,
        // but each sweep parallelizes.
        MatFreeMethod::Jacobi {
            omega: 0.95,
            tol: 1e-12,
            max_iter: 400_000,
        }
    }
}

/// Outcome of a matrix-free solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MatFreeRun {
    /// The stationary distribution.
    pub pi: Vec<f64>,
    /// Sweeps performed.
    pub iterations: usize,
    /// Scale-free residual at the accepting sweep; `0.0` for the trivial
    /// single-state chain.
    pub final_residual: f64,
}

/// Worker count used when the caller passes `workers = 0`: the
/// `BURSTCAP_SOLVER_WORKERS` environment variable if set to a positive
/// integer, else the machine's available parallelism (1 if unknown).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("BURSTCAP_SOLVER_WORKERS") {
        if let Ok(k) = v.trim().parse::<usize>() {
            if k >= 1 {
                return k;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Contiguous near-equal row ranges for `workers` threads.
fn partition(n: usize, workers: usize) -> Vec<Range<usize>> {
    let w = workers.clamp(1, n.max(1));
    let base = n / w;
    let extra = n % w;
    let mut ranges = Vec::with_capacity(w);
    let mut start = 0usize;
    for k in 0..w {
        let len = base + usize::from(k < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// One parallel operator apply: `out = Q^T x`, row ranges fanned out across
/// scoped threads (serial when only one range). Each worker writes a
/// disjoint `out` chunk, so no synchronization beyond the join is needed.
fn apply(op: &impl ApplyQ, x: &[f64], ranges: &[Range<usize>], out: &mut [f64]) {
    if ranges.len() == 1 {
        op.inflow_into(x, ranges[0].clone(), out);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = &mut out[..];
        for r in ranges {
            let slice = std::mem::take(&mut rest);
            let (chunk, tail) = slice.split_at_mut(r.len());
            rest = tail;
            let r = r.clone();
            scope.spawn(move || op.inflow_into(x, r, chunk));
        }
    });
}

/// Solve for the stationary distribution of the chain behind `op` with the
/// given method and worker count (`0` = [`default_workers`]), optionally
/// warm-started from `guess` (floored and normalized like the CSR engine).
///
/// The iterates are bit-identical across worker counts — see the module
/// docs.
///
/// # Errors
/// Rejects wrong-length guesses and out-of-range damping factors; returns
/// [`QnError::NoConvergence`] when the sweep budget is exhausted.
///
/// # Example
/// ```
/// use burstcap_qn::ctmc::Ctmc;
/// use burstcap_qn::matfree::{steady_state, MatFreeMethod};
///
/// // M/M/1/2 with lambda = 1, mu = 2: pi = (4, 2, 1) / 7. The CSR-backed
/// // chain doubles as an ApplyQ operator.
/// let chain = Ctmc::from_transitions(
///     3,
///     [(0, 1, 1.0), (1, 2, 1.0), (1, 0, 2.0), (2, 1, 2.0)],
/// )?;
/// let run = steady_state(&chain, MatFreeMethod::default(), 1, None)?;
/// assert!((run.pi[0] - 4.0 / 7.0).abs() < 1e-8);
/// assert!(run.iterations > 0);
/// # Ok::<(), burstcap_qn::QnError>(())
/// ```
pub fn steady_state(
    op: &impl ApplyQ,
    method: MatFreeMethod,
    workers: usize,
    guess: Option<Vec<f64>>,
) -> Result<MatFreeRun, QnError> {
    steady_state_traced(op, method, workers, guess, &Trace::noop())
}

/// [`steady_state`] with observability: opens a `matfree.solve` span on
/// `trace`, emits decimated `matfree.sweep` events (one per power-of-two
/// sweep plus the accepting one) and `matfree.final_residual` /
/// `matfree.sweeps` histograms, all from the **serial** residual pass — the
/// parallel workers emit nothing, which is what keeps the deterministic
/// export byte-identical across worker counts (property-tested alongside
/// the iterate equality). The worker count and row partition, which
/// legitimately vary, go out as **volatile** `matfree.partition` events:
/// visible in the full export, absent from the deterministic one.
///
/// # Errors
/// As [`steady_state`].
pub fn steady_state_traced(
    op: &impl ApplyQ,
    method: MatFreeMethod,
    workers: usize,
    guess: Option<Vec<f64>>,
    trace: &Trace,
) -> Result<MatFreeRun, QnError> {
    let n = op.n_states();
    let mut pi = match guess {
        Some(g) => {
            if g.len() != n {
                return Err(QnError::InvalidParameter {
                    name: "guess",
                    reason: format!("expected {} entries, got {}", n, g.len()),
                });
            }
            g
        }
        None => vec![1.0 / n as f64; n],
    };
    if n == 1 {
        return Ok(MatFreeRun {
            pi: vec![1.0],
            iterations: 0,
            final_residual: 0.0,
        });
    }
    let floor = 1e-12 / n as f64;
    for x in pi.iter_mut() {
        if !x.is_finite() || *x < floor {
            *x = floor;
        }
    }
    normalize(&mut pi);
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    let ranges = partition(n, workers);
    let out_rate = op.exit_rates();
    // Scale-free residual target, matching the CSR engine's convention.
    let scale: f64 = out_rate.iter().sum::<f64>() / n as f64;
    let solver = match method {
        MatFreeMethod::Jacobi { .. } => "jacobi",
        MatFreeMethod::Power { .. } => "power",
    };
    // The span carries nothing worker-count-dependent: the deterministic
    // trace must be byte-identical at any worker count. The partition is
    // reported as volatile events, which the deterministic export drops.
    let _span = trace.span_with(
        "matfree.solve",
        vec![("states", n.into()), ("solver", solver.into())],
    );
    if trace.is_enabled() {
        trace.volatile_event("matfree.workers", vec![("workers", workers.into())]);
        for (w, r) in ranges.iter().enumerate() {
            trace.volatile_event(
                "matfree.partition",
                vec![
                    ("worker", w.into()),
                    ("start", r.start.into()),
                    ("len", r.len().into()),
                ],
            );
        }
    }
    let run = match method {
        MatFreeMethod::Jacobi {
            omega,
            tol,
            max_iter,
        } => {
            if !(0.0 < omega && omega < 2.0) {
                return Err(QnError::InvalidParameter {
                    name: "omega",
                    reason: format!("damping factor must lie in (0, 2), got {omega}"),
                });
            }
            let mut next = vec![0.0; n];
            let mut last_residual = f64::INFINITY;
            let mut done = None;
            for iter in 0..max_iter {
                apply(op, &pi, &ranges, &mut next);
                // Serial pass: the balance residual of the current iterate
                // falls out of the inflows for free, then damp + normalize.
                let mut residual = 0.0;
                let mut sum = 0.0;
                for i in 0..n {
                    let inflow = next[i];
                    residual += (inflow - pi[i] * out_rate[i]).abs();
                    let v = (1.0 - omega) * pi[i] + omega * inflow / out_rate[i];
                    next[i] = v;
                    sum += v;
                }
                for v in next.iter_mut() {
                    *v /= sum;
                }
                std::mem::swap(&mut pi, &mut next);
                last_residual = residual / scale;
                // Decimated trajectory from the serial pass: one event per
                // power-of-two sweep plus the accepting one.
                if (iter + 1).is_power_of_two() || last_residual < tol {
                    trace.event(
                        "matfree.sweep",
                        vec![
                            ("iter", (iter + 1).into()),
                            ("residual", last_residual.into()),
                        ],
                    );
                }
                if last_residual < tol {
                    done = Some(iter + 1);
                    break;
                }
            }
            match done {
                Some(iterations) => Ok(MatFreeRun {
                    pi,
                    iterations,
                    final_residual: last_residual,
                }),
                None => Err(QnError::NoConvergence {
                    solver: "matfree-jacobi",
                    iterations: max_iter,
                    residual: last_residual,
                }),
            }
        }
        MatFreeMethod::Power { tol, max_iter } => {
            let lambda = out_rate.iter().cloned().fold(0.0, f64::max) * 1.02;
            let mut next = vec![0.0; n];
            let mut last_residual = f64::INFINITY;
            let mut done = None;
            for iter in 0..max_iter {
                apply(op, &pi, &ranges, &mut next);
                let mut residual = 0.0;
                let mut sum = 0.0;
                for i in 0..n {
                    let flux = next[i] - pi[i] * out_rate[i];
                    residual += flux.abs();
                    let v = pi[i] + flux / lambda;
                    next[i] = v;
                    sum += v;
                }
                for v in next.iter_mut() {
                    *v /= sum;
                }
                std::mem::swap(&mut pi, &mut next);
                last_residual = residual / scale;
                if (iter + 1).is_power_of_two() || last_residual < tol {
                    trace.event(
                        "matfree.sweep",
                        vec![
                            ("iter", (iter + 1).into()),
                            ("residual", last_residual.into()),
                        ],
                    );
                }
                if last_residual < tol {
                    done = Some(iter + 1);
                    break;
                }
            }
            match done {
                Some(iterations) => Ok(MatFreeRun {
                    pi,
                    iterations,
                    final_residual: last_residual,
                }),
                None => Err(QnError::NoConvergence {
                    solver: "matfree-power",
                    iterations: max_iter,
                    residual: last_residual,
                }),
            }
        }
    };
    match run {
        Ok(run) => {
            trace.observe(
                "matfree.final_residual",
                metrics::RESIDUAL_DECADES,
                run.final_residual,
            );
            trace.observe(
                "matfree.sweeps",
                metrics::SWEEP_POWERS,
                run.iterations as f64,
            );
            Ok(run)
        }
        Err(e) => {
            if let QnError::NoConvergence {
                solver,
                iterations,
                residual,
            } = &e
            {
                trace.event(
                    "matfree.stall",
                    vec![
                        ("solver", (*solver).into()),
                        ("iterations", (*iterations).into()),
                        ("residual", (*residual).into()),
                    ],
                );
            }
            Err(e)
        }
    }
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burstcap_map::fit::Map2Fitter;

    use crate::mapqn::MapNetwork;

    fn two_state_chain() -> Ctmc {
        Ctmc::from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap()
    }

    #[test]
    fn partition_covers_rows_exactly() {
        for (n, w) in [(10usize, 3usize), (7, 7), (5, 16), (1, 1), (100, 4)] {
            let ranges = partition(n, w);
            assert_eq!(ranges.len(), w.min(n));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
                assert!(!pair[1].is_empty());
            }
        }
    }

    #[test]
    fn ctmc_operator_solves_birth_death() {
        // pi = (0.6, 0.4) for rates 2 / 3; both methods, several worker
        // counts (partitioning must not change the answer at all).
        let chain = two_state_chain();
        let mut reference: Option<Vec<f64>> = None;
        for workers in [1usize, 2, 3] {
            let run = steady_state(&chain, MatFreeMethod::default(), workers, None).unwrap();
            assert!((run.pi[0] - 0.6).abs() < 1e-9, "pi = {:?}", run.pi);
            assert!(run.iterations > 0);
            match &reference {
                Some(r) => assert_eq!(r, &run.pi, "workers = {workers}"),
                None => reference = Some(run.pi),
            }
        }
        let power = steady_state(
            &chain,
            MatFreeMethod::Power {
                tol: 1e-10,
                max_iter: 100_000,
            },
            1,
            None,
        )
        .unwrap();
        assert!((power.pi[1] - 0.4).abs() < 1e-8);
    }

    #[test]
    fn guess_and_omega_are_validated() {
        let chain = two_state_chain();
        assert!(matches!(
            steady_state(&chain, MatFreeMethod::default(), 1, Some(vec![1.0])),
            Err(QnError::InvalidParameter { name: "guess", .. })
        ));
        let bad = MatFreeMethod::Jacobi {
            omega: 2.5,
            tol: 1e-10,
            max_iter: 10,
        };
        assert!(matches!(
            steady_state(&chain, bad, 1, None),
            Err(QnError::InvalidParameter { name: "omega", .. })
        ));
    }

    #[test]
    fn exhausted_budget_is_no_convergence() {
        let chain = two_state_chain();
        let starved = MatFreeMethod::Jacobi {
            omega: 0.95,
            tol: 1e-14,
            max_iter: 1,
        };
        assert!(matches!(
            steady_state(&chain, starved, 1, None),
            Err(QnError::NoConvergence {
                solver: "matfree-jacobi",
                ..
            })
        ));
    }

    #[test]
    fn matrix_free_generator_matches_csr_chain() {
        // The gather-form operator against the assembled chain: exit rates
        // and a full-range apply must agree to roundoff on a bursty
        // three-station tandem.
        let web = Map2Fitter::new(0.004, 6.0, 0.012).fit().unwrap().map();
        let app = Map2Fitter::new(0.01, 20.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 40.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::tandem(5, 0.3, vec![web, app, db]).unwrap();
        let op = net.matrix_free().unwrap();
        let chain = Ctmc::from_outgoing_csr(net.outgoing_csr().unwrap()).unwrap();
        let n = net.state_count();
        assert_eq!(op.n_states(), n);
        for (a, b) in op.exit_rates().iter().zip(chain.exit_rates()) {
            assert!((a - b).abs() <= 1e-12 * b.abs());
        }
        // A deterministic, well-spread probe vector.
        let x: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 37) % 101) as f64).collect();
        let mut from_op = vec![0.0; n];
        op.inflow_into(&x, 0..n, &mut from_op);
        let mut from_chain = vec![0.0; n];
        chain.inflow_into(&x, 0..n, &mut from_chain);
        for (i, (a, b)) in from_op.iter().zip(&from_chain).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "row {i}: {a} vs {b}"
            );
        }
        // Range-partitioned applies agree bit-for-bit with the full apply,
        // including ranges that split a phase block.
        let mut pieces = vec![0.0; n];
        let cuts = [0, 3, n / 3 + 1, n / 2, n - 5, n];
        for pair in cuts.windows(2) {
            op.inflow_into(&x, pair[0]..pair[1], &mut pieces[pair[0]..pair[1]]);
        }
        assert_eq!(pieces, from_op);
    }

    #[test]
    fn matrix_free_solve_matches_direct() {
        let front = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(12, 0.3, front, db).unwrap();
        let direct = net.solve().unwrap();
        for workers in [1usize, 2, 4] {
            let sol = net.solve_matrix_free(workers).unwrap();
            assert!(
                (sol.throughput - direct.throughput).abs() / direct.throughput < 1e-8,
                "workers {workers}: {} vs {}",
                sol.throughput,
                direct.throughput
            );
            assert_eq!(
                sol.diagnostics.engine,
                crate::mapqn::SolveEngine::MatrixFree
            );
            assert!(sol.diagnostics.iterations > 0);
            assert!(!sol.diagnostics.fell_back);
        }
    }

    #[test]
    fn matrix_free_warm_start_converges_faster() {
        let front = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(10, 0.3, front, db).unwrap();
        let (cold, pi) = net.solve_matrix_free_with_initial(1, None).unwrap();
        assert_eq!(pi.len(), net.state_count());
        let (warm, pi2) = net.solve_matrix_free_with_initial(1, Some(pi)).unwrap();
        assert!(warm.diagnostics.iterations <= cold.diagnostics.iterations);
        assert!((pi2.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((warm.throughput - cold.throughput).abs() / cold.throughput < 1e-8);
    }
}
