//! Analytic queueing-network solvers for the `burstcap` workspace.
//!
//! Two model families cover the paper's needs:
//!
//! * [`mva`] — classical **Mean Value Analysis** of closed product-form
//!   networks (the paper's Section 3.4 baseline, whose failure under
//!   bottleneck switch motivates the whole methodology), plus the Schweitzer
//!   approximation and asymptotic [`bounds`];
//! * [`mapqn`] — the paper's model (Section 4): a closed network of two
//!   queues with **MAP(2) service processes** and an exponential think stage,
//!   solved *exactly* by building the underlying CTMC and computing its
//!   stationary distribution with the sparse solvers in [`ctmc`], which run
//!   on the compressed-sparse-row substrate in [`csr`] — or, past the CSR
//!   memory wall, with the matrix-free parallel engine in [`matfree`], which
//!   applies the generator straight from the MAP(2) factors without ever
//!   assembling it.
//!
//! # Example: MVA vs the MAP-aware model
//!
//! ```
//! use burstcap_qn::mva::ClosedMva;
//! use burstcap_qn::mapqn::MapNetwork;
//! use burstcap_map::Map2;
//!
//! // Two exponential servers: the MAP model must agree with MVA.
//! let mva = ClosedMva::new(vec![0.01, 0.02], 0.5)?.solve(20)?;
//! let net = MapNetwork::new(
//!     20,
//!     0.5,
//!     Map2::poisson(100.0)?, // 10 ms front
//!     Map2::poisson(50.0)?,  // 20 ms database
//! )?;
//! let exact = net.solve()?;
//! assert!((mva.throughput - exact.throughput).abs() / mva.throughput < 0.01);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bare `.unwrap()` is banned in library targets; burstcap-lint's
// `panic-in-lib` is the lexical twin (it also covers expect/panic!, with
// justification markers), clippy the type-aware backstop. The test target
// compiles with the allow, so unit tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bounds;
pub mod csr;
pub mod ctmc;
mod error;
pub mod mapqn;
pub mod matfree;
pub mod mva;

pub use error::QnError;
