//! Compressed sparse row (CSR) matrices — the storage substrate of the
//! sparse CTMC engine.
//!
//! CTMC generators of MAP queueing networks are overwhelmingly sparse: a
//! state of the paper's MAP(2)×MAP(2) network (Section 4.2) has at most six
//! outgoing transitions regardless of population, so a population-100 chain
//! with ~20k states carries ~120k rates where a dense matrix would need
//! 4×10⁸ entries. [`CsrMatrix`] stores exactly the non-zeros in three flat
//! arrays (`row_ptr`/`col_idx`/`values`), giving the iterative solvers in
//! [`crate::ctmc`] contiguous, cache-friendly row access with no per-row
//! allocations.
//!
//! Two construction paths are provided:
//!
//! * [`CsrMatrix::from_triplets`] — order-insensitive, accumulates duplicate
//!   coordinates; the general-purpose entry point;
//! * [`CsrBuilder`] — streaming, for generators whose transitions are
//!   emitted grouped by source state (as
//!   [`crate::mapqn::MapNetwork`] does); assembles the CSR arrays directly
//!   with no intermediate triplet list.
//!
//! # Example
//!
//! ```
//! use burstcap_qn::csr::CsrMatrix;
//!
//! // The off-diagonal rate matrix of a two-state chain: 0 -> 1 at rate 2,
//! // 1 -> 0 at rate 3.
//! let q = CsrMatrix::from_triplets(2, [(0, 1, 2.0), (1, 0, 3.0)])?;
//! assert_eq!(q.nnz(), 2);
//! assert_eq!(q.row(0).collect::<Vec<_>>(), vec![(1, 2.0)]);
//!
//! // Transpose swaps incoming and outgoing adjacency.
//! let qt = q.transpose();
//! assert_eq!(qt.row(0).collect::<Vec<_>>(), vec![(1, 3.0)]);
//!
//! // Uniformization turns the rate matrix into a DTMC: P = I + Q/lambda.
//! let p = q.uniformized(4.0)?;
//! assert_eq!(p.row(0).collect::<Vec<_>>(), vec![(0, 0.5), (1, 0.5)]);
//! # Ok::<(), burstcap_qn::QnError>(())
//! ```

use crate::QnError;

/// A square sparse matrix in compressed sparse row format.
///
/// Rows are stored back to back: the entries of row `i` live at positions
/// `row_ptr[i]..row_ptr[i + 1]` of the parallel `col_idx`/`values` arrays.
/// Duplicate coordinates are permitted and act additively — every consumer
/// (row iteration, products, transpose, uniformization) treats the matrix as
/// the sum of its stored entries, which is exactly the semantics CTMC
/// transition lists need.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build an `n × n` matrix from `(row, col, value)` triplets in any
    /// order. Duplicate coordinates accumulate; exact zeros are dropped.
    ///
    /// # Errors
    /// Rejects `n == 0`, out-of-range indices, and non-finite values.
    ///
    /// # Example
    /// ```
    /// use burstcap_qn::csr::CsrMatrix;
    /// let m = CsrMatrix::from_triplets(3, [(2, 0, 1.0), (0, 1, 2.0), (2, 0, 0.5)])?;
    /// assert_eq!(m.nnz(), 2); // the two (2, 0) entries merged
    /// assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 1.5)]);
    /// # Ok::<(), burstcap_qn::QnError>(())
    /// ```
    pub fn from_triplets(
        n: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, QnError> {
        if n == 0 {
            return Err(QnError::InvalidParameter {
                name: "n",
                reason: "matrix must have at least one row".into(),
            });
        }
        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        for (row, col, value) in triplets {
            if row >= n || col >= n {
                return Err(QnError::InvalidParameter {
                    name: "triplets",
                    reason: format!("index out of range: ({row}, {col}) in {n}x{n}"),
                });
            }
            if !value.is_finite() {
                return Err(QnError::InvalidParameter {
                    name: "triplets",
                    reason: format!("value at ({row}, {col}) must be finite, got {value}"),
                });
            }
            if value != 0.0 {
                entries.push((row, col, value));
            }
        }
        // Counting sort by row, then order and merge within each row.
        let mut counts = vec![0usize; n + 1];
        for &(row, _, _) in &entries {
            counts[row + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut slots = counts.clone();
        let nnz_upper = entries.len();
        let mut col_idx = vec![0usize; nnz_upper];
        let mut values = vec![0.0f64; nnz_upper];
        for &(row, col, value) in &entries {
            let at = slots[row];
            col_idx[at] = col;
            values[at] = value;
            slots[row] += 1;
        }
        // Merge duplicates row by row, compacting in place.
        let mut row_ptr = vec![0usize; n + 1];
        let mut write = 0usize;
        for row in 0..n {
            let (start, end) = (counts[row], counts[row + 1]);
            let mut pairs: Vec<(usize, f64)> = col_idx[start..end]
                .iter()
                .copied()
                .zip(values[start..end].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(c, _)| c);
            row_ptr[row] = write;
            for (col, value) in pairs {
                if write > row_ptr[row] && col_idx[write - 1] == col {
                    values[write - 1] += value;
                } else {
                    col_idx[write] = col;
                    values[write] = value;
                    write += 1;
                }
            }
        }
        row_ptr[n] = write;
        col_idx.truncate(write);
        values.truncate(write);
        Ok(CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Start a streaming row-grouped builder (see [`CsrBuilder`]).
    pub fn builder(n: usize) -> CsrBuilder {
        CsrBuilder {
            n,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Matrix dimension (the matrix is `n × n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate the stored `(col, value)` pairs of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.n()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, vals) = self.row_slices(i);
        cols.iter().copied().zip(vals.iter().copied())
    }

    /// The column-index and value slices of row `i` (parallel arrays).
    ///
    /// # Panics
    /// Panics if `i >= self.n()`.
    pub fn row_slices(&self, i: usize) -> (&[usize], &[f64]) {
        let (start, end) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Iterate every stored entry as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| self.row(i).map(move |(j, v)| (i, j, v)))
    }

    /// The transpose, computed in `O(n + nnz)` by counting sort. Within each
    /// output row, entries appear in increasing column order (and duplicates
    /// are preserved, not merged).
    pub fn transpose(&self) -> CsrMatrix {
        let n = self.n;
        let mut row_ptr = vec![0usize; n + 1];
        for &col in &self.col_idx {
            row_ptr[col + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut slots = row_ptr.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for row in 0..n {
            let (cols, vals) = self.row_slices(row);
            for (&col, &value) in cols.iter().zip(vals) {
                let at = slots[col];
                col_idx[at] = row;
                values[at] = value;
                slots[col] += 1;
            }
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Merge runs of entries sharing a column within each row (summing
    /// their values). Complete deduplication when every row's columns are
    /// sorted — as [`CsrMatrix::transpose`] guarantees — which is how the
    /// CTMC constructors keep duplicate transitions additive *and* counted
    /// once regardless of assembly path.
    pub(crate) fn merge_adjacent_duplicates(mut self) -> CsrMatrix {
        let mut write = 0usize;
        let mut row_start = vec![0usize; self.n + 1];
        for row in 0..self.n {
            let (start, end) = (self.row_ptr[row], self.row_ptr[row + 1]);
            row_start[row] = write;
            for read in start..end {
                if write > row_start[row] && self.col_idx[write - 1] == self.col_idx[read] {
                    self.values[write - 1] += self.values[read];
                } else {
                    self.col_idx[write] = self.col_idx[read];
                    self.values[write] = self.values[read];
                    write += 1;
                }
            }
        }
        row_start[self.n] = write;
        self.row_ptr = row_start;
        self.col_idx.truncate(write);
        self.values.truncate(write);
        self
    }

    /// Per-row sums — the state exit rates when `self` is the off-diagonal
    /// rate matrix of a CTMC.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| self.row_slices(i).1.iter().sum())
            .collect()
    }

    /// Uniformize an off-diagonal rate matrix into the DTMC of the embedded
    /// uniformized chain: `P = I + Q / lambda` with
    /// `q_ii = -` (row sum of `self`), so `p_ij = q_ij / lambda` off the
    /// diagonal and `p_ii = 1 - out_rate_i / lambda`. Sub-rate diagonal
    /// entries that underflow to exact zero are stored anyway so every row of
    /// the result is explicitly stochastic.
    ///
    /// Rows with sorted columns (the [`CsrMatrix::from_triplets`] invariant)
    /// produce canonical sorted output; unsorted or duplicated input still
    /// yields a semantically correct stochastic matrix, but the diagonal
    /// mass may be split across entries (duplicates act additively
    /// everywhere in this module).
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `lambda` and `lambda` below the
    /// largest row sum (the result would have negative diagonal mass).
    ///
    /// # Example
    /// ```
    /// use burstcap_qn::csr::CsrMatrix;
    /// let q = CsrMatrix::from_triplets(2, [(0, 1, 1.0), (1, 0, 3.0)])?;
    /// let p = q.uniformized(4.0)?;
    /// // Row 0: stays with probability 0.75, jumps with 0.25.
    /// assert_eq!(p.row(0).collect::<Vec<_>>(), vec![(0, 0.75), (1, 0.25)]);
    /// let sums = p.row_sums();
    /// assert!(sums.iter().all(|&s| (s - 1.0).abs() < 1e-12));
    /// # Ok::<(), burstcap_qn::QnError>(())
    /// ```
    pub fn uniformized(&self, lambda: f64) -> Result<CsrMatrix, QnError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(QnError::InvalidParameter {
                name: "lambda",
                reason: format!("uniformization rate must be positive and finite, got {lambda}"),
            });
        }
        let out = self.row_sums();
        if let Some(max) = out.iter().cloned().reduce(f64::max) {
            if max > lambda {
                return Err(QnError::InvalidParameter {
                    name: "lambda",
                    reason: format!(
                        "uniformization rate {lambda} is below the largest exit rate {max}"
                    ),
                });
            }
        }
        let n = self.n;
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(self.nnz() + n);
        let mut values = Vec::with_capacity(self.nnz() + n);
        for i in 0..n {
            let (cols, vals) = self.row_slices(i);
            let mut wrote_diag = false;
            for (&col, &value) in cols.iter().zip(vals) {
                if !wrote_diag && col >= i {
                    // Insert the diagonal in column order (merging if the
                    // input carried an explicit (i, i) entry).
                    if col == i {
                        col_idx.push(i);
                        values.push(1.0 - out[i] / lambda + value / lambda);
                    } else {
                        col_idx.push(i);
                        values.push(1.0 - out[i] / lambda);
                        col_idx.push(col);
                        values.push(value / lambda);
                    }
                    wrote_diag = true;
                } else {
                    col_idx.push(col);
                    values.push(value / lambda);
                }
            }
            if !wrote_diag {
                col_idx.push(i);
                values.push(1.0 - out[i] / lambda);
            }
            row_ptr[i + 1] = col_idx.len();
        }
        Ok(CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Matrix–vector product `y = A x` (row-major gather).
    ///
    /// # Panics
    /// Panics if `x.len() != self.n()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch in mul_vec");
        (0..self.n)
            .map(|i| self.row(i).map(|(j, v)| v * x[j]).sum())
            .collect()
    }

    /// Vector–matrix product `y = x A` (row-major scatter) — the update
    /// direction of power iteration on a stochastic matrix stored row-wise.
    ///
    /// # Panics
    /// Panics if `x.len() != self.n()`.
    pub fn left_mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch in left_mul_vec");
        let mut y = vec![0.0; self.n];
        for (i, &w) in x.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let (cols, vals) = self.row_slices(i);
            for (&col, &value) in cols.iter().zip(vals) {
                y[col] += w * value;
            }
        }
        y
    }
}

/// Streaming CSR assembly for entries grouped by row.
///
/// [`push`](CsrBuilder::push) accepts entries whose row indices never
/// decrease; the CSR arrays are written directly with no intermediate
/// triplet list or sort — the fast path used by
/// [`crate::mapqn::MapNetwork`], whose state enumeration emits transitions
/// in flat-index order. Duplicate `(row, col)` pairs are kept as separate
/// entries (which all consumers treat additively).
///
/// # Example
/// ```
/// use burstcap_qn::csr::CsrMatrix;
/// let mut b = CsrMatrix::builder(3);
/// b.push(0, 1, 2.0)?;
/// b.push(0, 2, 1.0)?;
/// b.push(2, 0, 4.0)?; // row 1 is empty; rows may only move forward
/// let m = b.finish();
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.row(1).count(), 0);
/// # Ok::<(), burstcap_qn::QnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Append an entry. Rows must arrive in non-decreasing order; exact
    /// zeros are dropped.
    ///
    /// # Errors
    /// Rejects out-of-range indices, non-finite values, and a `row` smaller
    /// than the last pushed row.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), QnError> {
        if row >= self.n || col >= self.n {
            return Err(QnError::InvalidParameter {
                name: "entry",
                reason: format!("index out of range: ({row}, {col}) in {n}x{n}", n = self.n),
            });
        }
        if !value.is_finite() {
            return Err(QnError::InvalidParameter {
                name: "entry",
                reason: format!("value at ({row}, {col}) must be finite, got {value}"),
            });
        }
        let current = self.row_ptr.len() - 1;
        if row < current {
            return Err(QnError::InvalidParameter {
                name: "entry",
                reason: format!("row {row} pushed after row {current}: rows must not decrease"),
            });
        }
        while self.row_ptr.len() <= row {
            self.row_ptr.push(self.col_idx.len());
        }
        if value != 0.0 {
            self.col_idx.push(col);
            self.values.push(value);
        }
        Ok(())
    }

    /// Reserve capacity for `additional` further entries.
    pub fn reserve(&mut self, additional: usize) {
        self.col_idx.reserve(additional);
        self.values.reserve(additional);
    }

    /// Number of entries pushed so far.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Close any trailing empty rows and return the finished matrix.
    pub fn finish(mut self) -> CsrMatrix {
        while self.row_ptr.len() <= self.n {
            self.row_ptr.push(self.col_idx.len());
        }
        CsrMatrix {
            n: self.n,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(m: &CsrMatrix) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; m.n()]; m.n()];
        for (i, j, v) in m.iter() {
            d[i][j] += v;
        }
        d
    }

    #[test]
    fn triplets_sort_and_merge() {
        let m = CsrMatrix::from_triplets(
            3,
            [
                (2, 1, 1.0),
                (0, 2, 3.0),
                (0, 1, 2.0),
                (2, 1, 0.5),
                (1, 0, 4.0),
            ],
        )
        .unwrap();
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(1, 2.0), (2, 3.0)]);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(1, 1.5)]);
    }

    #[test]
    fn triplets_drop_zeros() {
        let m = CsrMatrix::from_triplets(2, [(0, 1, 0.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn triplets_validation() {
        assert!(CsrMatrix::from_triplets(0, []).is_err());
        assert!(CsrMatrix::from_triplets(2, [(0, 2, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, [(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, [(0, 1, f64::NAN)]).is_err());
        assert!(CsrMatrix::from_triplets(2, [(0, 1, f64::INFINITY)]).is_err());
    }

    #[test]
    fn builder_matches_triplets() {
        let triplets = [(0, 1, 2.0), (0, 2, 3.0), (1, 0, 4.0), (2, 1, 1.0)];
        let a = CsrMatrix::from_triplets(3, triplets).unwrap();
        let mut b = CsrMatrix::builder(3);
        for (i, j, v) in triplets {
            b.push(i, j, v).unwrap();
        }
        assert_eq!(b.nnz(), 4);
        assert_eq!(a, b.finish());
    }

    #[test]
    fn builder_skips_rows_and_rejects_backwards() {
        let mut b = CsrMatrix::builder(4);
        b.push(1, 0, 1.0).unwrap();
        b.push(3, 2, 2.0).unwrap();
        assert!(b.push(2, 0, 1.0).is_err(), "row went backwards");
        assert!(b.push(1, 4, 1.0).is_err(), "column out of range");
        assert!(b.push(4, 0, 1.0).is_err(), "row out of range");
        assert!(b.push(3, 0, f64::NAN).is_err(), "non-finite value");
        let m = b.finish();
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(0, 1.0)]);
        assert_eq!(m.row(2).count(), 0);
        assert_eq!(m.row(3).collect::<Vec<_>>(), vec![(2, 2.0)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(
            4,
            [
                (0, 1, 2.0),
                (1, 3, 3.0),
                (2, 0, 4.0),
                (3, 2, 5.0),
                (3, 0, 6.0),
            ],
        )
        .unwrap();
        let t = m.transpose();
        assert_eq!(t.nnz(), m.nnz());
        let (d, dt) = (dense(&m), dense(&t));
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(d[i][j], dt[j][i]);
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn merge_adjacent_duplicates_compacts_sorted_rows() {
        let mut b = CsrMatrix::builder(3);
        b.push(0, 1, 1.0).unwrap();
        b.push(0, 1, 2.0).unwrap();
        b.push(0, 2, 3.0).unwrap();
        b.push(2, 0, 4.0).unwrap();
        b.push(2, 0, 0.5).unwrap();
        let m = b.finish().merge_adjacent_duplicates();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(1, 3.0), (2, 3.0)]);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 4.5)]);
    }

    #[test]
    fn row_sums_and_products() {
        let m = CsrMatrix::from_triplets(3, [(0, 1, 2.0), (0, 2, 1.0), (1, 0, 3.0)]).unwrap();
        assert_eq!(m.row_sums(), vec![3.0, 3.0, 0.0]);
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0 * 2.0 + 3.0, 3.0, 0.0]);
        let z = m.left_mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(z, vec![6.0, 2.0, 1.0]);
    }

    #[test]
    fn uniformized_is_stochastic() {
        let q = CsrMatrix::from_triplets(3, [(0, 1, 2.0), (1, 0, 1.0), (1, 2, 1.5), (2, 1, 4.0)])
            .unwrap();
        let p = q.uniformized(5.0).unwrap();
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-12, "row sum {s}");
        }
        // Diagonal entries sit in column order within their rows.
        assert_eq!(
            p.row(1).collect::<Vec<_>>(),
            vec![(0, 0.2), (1, 0.5), (2, 0.3)]
        );
        // lambda below the fastest exit rate is rejected, as are bad lambdas.
        assert!(q.uniformized(2.0).is_err());
        assert!(q.uniformized(0.0).is_err());
        assert!(q.uniformized(f64::NAN).is_err());
    }

    #[test]
    fn uniformized_merges_explicit_diagonal() {
        // An input that already carries an (i, i) entry folds it into the
        // uniformized diagonal.
        let q = CsrMatrix::from_triplets(2, [(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let p = q.uniformized(4.0).unwrap();
        // out[0] = 2.0 (row sum includes the diagonal), so
        // p_00 = 1 - 2/4 + 1/4 = 0.75.
        assert_eq!(p.row(0).collect::<Vec<_>>(), vec![(0, 0.75), (1, 0.25)]);
    }

    #[test]
    fn empty_rows_everywhere() {
        let m = CsrMatrix::from_triplets(3, []).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.transpose().nnz(), 0);
        assert_eq!(m.row_sums(), vec![0.0; 3]);
        let p = m.uniformized(1.0).unwrap();
        // Uniformizing the zero generator yields the identity.
        for i in 0..3 {
            assert_eq!(p.row(i).collect::<Vec<_>>(), vec![(i, 1.0)]);
        }
    }
}
